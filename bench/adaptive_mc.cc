// Ablation: fixed-budget Monte-Carlo (the paper's Phase 3) vs the
// sequential-sampling decider. The engine only needs p >= θ, and candidates
// far from the boundary separate after a few hundred samples — the adaptive
// decider achieves the same answers at a fraction of the samples.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mc/adaptive_monte_carlo.h"
#include "mc/monte_carlo.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const uint64_t budget = bench::EnvOr("GPRQ_MC_SAMPLES", 100000);
  const double delta = 25.0;
  const double theta = 0.01;
  const double gamma = 10.0;

  std::printf("Ablation: fixed-budget vs adaptive Monte-Carlo Phase 3 "
              "(gamma=%.0f, delta=%.0f, theta=%.2f, budget=%llu)\n\n",
              gamma, delta, theta, static_cast<unsigned long long>(budget));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);

  std::printf("%-22s%14s%18s%14s%12s\n", "phase-3 backend", "phase3 (ms)",
              "samples/object", "fallbacks", "answers");
  bench::Rule(80);

  // Fixed budget.
  {
    double phase3 = 0.0, answers = 0.0, objects = 0.0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*g), delta, theta};
      mc::MonteCarloEvaluator evaluator({.samples = budget, .seed = 7});
      core::PrqStats stats;
      auto result =
          engine.Execute(query, core::PrqOptions(), &evaluator, &stats);
      if (!result.ok()) std::abort();
      phase3 += stats.phase3_seconds * 1e3;
      answers += static_cast<double>(stats.result_size);
      objects += static_cast<double>(stats.integration_candidates);
    }
    std::printf("%-22s%14.1f%18.0f%14s%12.0f\n", "fixed budget",
                phase3 / trials, static_cast<double>(budget), "n/a",
                answers / trials);
    (void)objects;
  }

  // Adaptive.
  {
    double phase3 = 0.0, answers = 0.0, objects = 0.0;
    uint64_t samples = 0, fallbacks = 0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*g), delta, theta};
      mc::AdaptiveMonteCarloEvaluator evaluator(
          {.max_samples = budget, .seed = 7});
      core::PrqStats stats;
      auto result =
          engine.Execute(query, core::PrqOptions(), &evaluator, &stats);
      if (!result.ok()) std::abort();
      phase3 += stats.phase3_seconds * 1e3;
      answers += static_cast<double>(stats.result_size);
      objects += static_cast<double>(stats.integration_candidates);
      samples += evaluator.total_samples();
      fallbacks += evaluator.undecided_fallbacks();
    }
    std::printf("%-22s%14.1f%18.0f%14llu%12.0f\n", "adaptive (z=4)",
                phase3 / trials,
                static_cast<double>(samples) / std::max(objects, 1.0),
                static_cast<unsigned long long>(fallbacks),
                answers / trials);
  }

  std::printf("\nexpected shape: nearly identical answer counts, with the "
              "adaptive decider using 10-100x fewer samples per object.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
