#ifndef GPRQ_BENCH_BENCH_UTIL_H_
#define GPRQ_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction benches: dataset/engine
// setup, the six strategy combinations of Section V-A, and environment
// overrides so the harnesses can be scaled down for quick runs:
//
//   GPRQ_MC_SAMPLES  Monte-Carlo samples per integration (default 20000;
//                    the paper used 100000 on 2006 hardware)
//   GPRQ_TRIALS      query repetitions to average (default: per-bench)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/prq.h"
#include "index/str_bulk_load.h"
#include "workload/generators.h"

namespace gprq::bench {

/// Machine-readable bench output: a flat list of named records, each a set
/// of string→double metrics, serialized as a JSON array. This is the
/// cross-PR perf-trajectory format — benches append records and write one
/// `BENCH_<name>.json` next to their table output so runs can be diffed by
/// tooling instead of eyeballs.
class JsonReport {
 public:
  using Metrics = std::vector<std::pair<std::string, double>>;

  void Add(std::string name, Metrics metrics) {
    records_.emplace_back(std::move(name), std::move(metrics));
  }

  std::string ToJson() const {
    std::string out = "[\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out += "  {\"name\": \"" + records_[r].first + "\"";
      for (const auto& [key, value] : records_[r].second) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.17g", value);
        out += ", \"" + key + "\": " + buffer;
      }
      out += r + 1 < records_.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
  }

  /// Writes the report; returns false (with a note on stderr) on I/O error.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
  }

 private:
  std::vector<std::pair<std::string, Metrics>> records_;
};

/// The six combinations evaluated in the paper (Section V-A).
inline const std::vector<core::StrategyMask>& PaperCombos() {
  static const std::vector<core::StrategyMask> kCombos = {
      core::kStrategyRR,
      core::kStrategyBF,
      core::kStrategyRR | core::kStrategyBF,
      core::kStrategyRR | core::kStrategyOR,
      core::kStrategyBF | core::kStrategyOR,
      core::kStrategyAll,
  };
  return kCombos;
}

inline uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Builds the R*-tree for a dataset, or aborts (benches have no caller to
/// propagate errors to).
inline index::RStarTree BuildTree(const workload::Dataset& dataset) {
  auto tree = index::StrBulkLoader::Load(dataset.dim, dataset.points);
  if (!tree.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 tree.status().ToString().c_str());
    std::abort();
  }
  return std::move(*tree);
}

/// Prints a horizontal rule sized to the table width.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace gprq::bench

#endif  // GPRQ_BENCH_BENCH_UTIL_H_
