#ifndef GPRQ_BENCH_BENCH_UTIL_H_
#define GPRQ_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction benches: dataset/engine
// setup, the six strategy combinations of Section V-A, and environment
// overrides so the harnesses can be scaled down for quick runs:
//
//   GPRQ_MC_SAMPLES  Monte-Carlo samples per integration (default 20000;
//                    the paper used 100000 on 2006 hardware)
//   GPRQ_TRIALS      query repetitions to average (default: per-bench)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/prq.h"
#include "exec/batch_executor.h"
#include "index/str_bulk_load.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace gprq::bench {

/// A JSON value for bench reports: number, string, raw pre-serialized JSON,
/// object, or array. Objects and arrays preserve insertion order so reports
/// diff cleanly across runs. Rendering is compact (single line) — records
/// in a JsonReport stay one per line regardless of nesting depth.
class JsonValue {
 public:
  JsonValue() : kind_(kNumber) {}
  JsonValue(double number) : kind_(kNumber), number_(number) {}
  JsonValue(std::string string) : kind_(kString), text_(std::move(string)) {}
  JsonValue(const char* string) : kind_(kString), text_(string) {}

  /// Wraps already-serialized JSON (e.g. obs::TextExporter::Json output);
  /// the text is embedded verbatim, whitespace and all.
  static JsonValue Raw(std::string json) {
    JsonValue v;
    v.kind_ = kRaw;
    v.text_ = std::move(json);
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = kArray;
    return v;
  }

  /// Appends a member to an object; chainable.
  JsonValue& Set(std::string key, JsonValue value) {
    keys_.push_back(std::move(key));
    children_.push_back(std::move(value));
    return *this;
  }
  /// Prepends a member to an object (JsonReport puts "name" first so the
  /// records grep well); chainable.
  JsonValue& SetFront(std::string key, JsonValue value) {
    keys_.insert(keys_.begin(), std::move(key));
    children_.insert(children_.begin(), std::move(value));
    return *this;
  }
  /// Appends an element to an array; chainable.
  JsonValue& Append(JsonValue value) {
    children_.push_back(std::move(value));
    return *this;
  }

  std::string ToJson() const {
    std::string out;
    Render(&out);
    return out;
  }

  void Render(std::string* out) const {
    switch (kind_) {
      case kNumber: {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.17g", number_);
        *out += buffer;
        break;
      }
      case kString:
        *out += '"';
        *out += text_;
        *out += '"';
        break;
      case kRaw:
        *out += text_;
        break;
      case kObject:
        *out += '{';
        for (size_t i = 0; i < children_.size(); ++i) {
          if (i > 0) *out += ", ";
          *out += '"' + keys_[i] + "\": ";
          children_[i].Render(out);
        }
        *out += '}';
        break;
      case kArray:
        *out += '[';
        for (size_t i = 0; i < children_.size(); ++i) {
          if (i > 0) *out += ", ";
          children_[i].Render(out);
        }
        *out += ']';
        break;
    }
  }

 private:
  enum Kind { kNumber, kString, kRaw, kObject, kArray };

  Kind kind_;
  double number_ = 0.0;
  std::string text_;
  std::vector<std::string> keys_;     // object member names, in order
  std::vector<JsonValue> children_;   // object values or array elements
};

/// Machine-readable bench output: a flat list of named records serialized as
/// a JSON array, one record per line. This is the cross-PR perf-trajectory
/// format — benches append records and write one `BENCH_<name>.json` next
/// to their table output so runs can be diffed by tooling instead of
/// eyeballs. Records are flat string→double metric sets, optionally carrying
/// nested JsonValue members (e.g. a metric-registry snapshot).
class JsonReport {
 public:
  using Metrics = std::vector<std::pair<std::string, double>>;

  void Add(std::string name, Metrics metrics) {
    JsonValue record = JsonValue::Object();
    record.Set("name", JsonValue(std::move(name)));
    for (auto& [key, value] : metrics) {
      record.Set(std::move(key), JsonValue(value));
    }
    records_.push_back(std::move(record));
  }

  /// Adds a record with arbitrary nested structure. `record` should be a
  /// JsonValue::Object; a leading "name" member is prepended.
  void Add(std::string name, JsonValue record) {
    record.SetFront("name", JsonValue(std::move(name)));
    records_.push_back(std::move(record));
  }

  std::string ToJson() const {
    std::string out = "[\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out += "  ";
      records_[r].Render(&out);
      out += r + 1 < records_.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
  }

  /// Writes the report; returns false (with a note on stderr) on I/O error.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
  }

 private:
  std::vector<JsonValue> records_;
};

/// The serving-telemetry record the serving benches emit into
/// `BENCH_serving.json`: the executor's own ExecStats view plus the full
/// metric-registry snapshot (obs::TextExporter::Json) under "registry", so
/// the artifact carries phase histograms, prune breakdowns, queue-wait
/// quantiles, and per-worker integration counts alongside the headline
/// throughput numbers.
inline JsonValue ServingRecord(const exec::ExecStats& stats) {
  JsonValue record = JsonValue::Object();
  record.Set("queries", JsonValue(static_cast<double>(stats.queries)))
      .Set("integrations", JsonValue(static_cast<double>(stats.integrations)))
      .Set("accepted_without_integration",
           JsonValue(static_cast<double>(stats.accepted_without_integration)))
      .Set("results", JsonValue(static_cast<double>(stats.results)))
      .Set("uptime_seconds", JsonValue(stats.uptime_seconds))
      .Set("queries_per_second", JsonValue(stats.queries_per_second()))
      .Set("integrations_per_second",
           JsonValue(stats.integrations_per_second()))
      .Set("num_workers", JsonValue(static_cast<double>(stats.num_workers)))
      .Set("registry",
           JsonValue::Raw(obs::TextExporter::Json(
               obs::MetricRegistry::Global().Snapshot())));
  return record;
}

/// The six combinations evaluated in the paper (Section V-A).
inline const std::vector<core::StrategyMask>& PaperCombos() {
  static const std::vector<core::StrategyMask> kCombos = {
      core::kStrategyRR,
      core::kStrategyBF,
      core::kStrategyRR | core::kStrategyBF,
      core::kStrategyRR | core::kStrategyOR,
      core::kStrategyBF | core::kStrategyOR,
      core::kStrategyAll,
  };
  return kCombos;
}

inline uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Builds the R*-tree for a dataset, or aborts (benches have no caller to
/// propagate errors to).
inline index::RStarTree BuildTree(const workload::Dataset& dataset) {
  auto tree = index::StrBulkLoader::Load(dataset.dim, dataset.points);
  if (!tree.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 tree.status().ToString().c_str());
    std::abort();
  }
  return std::move(*tree);
}

/// Prints a horizontal rule sized to the table width.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace gprq::bench

#endif  // GPRQ_BENCH_BENCH_UTIL_H_
