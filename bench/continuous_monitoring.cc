// Extension bench: continuous PRQ monitoring along a trajectory (the
// paper's moving-object motivation). Compares per-tick index work for
// fresh queries vs the buffered monitor at several buffer margins.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/continuous.h"
#include "mc/slice_evaluator.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const int ticks = 200;
  const double step = 8.0;  // trajectory step per tick (data units)

  std::printf("Extension: continuous monitoring (TIGER 50,747 pts, "
              "%d ticks of %.0f units, gamma=10, delta=25, theta=0.01)\n\n",
              ticks, step);

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  mc::Slice2DEvaluator evaluator;
  const la::Matrix cov = workload::PaperCovariance2D(10.0);

  std::printf("%-16s%12s%14s%16s%14s\n", "buffer margin", "refetches",
              "node reads", "avg phase1 us", "avg total ms");
  bench::Rule(72);
  for (double margin : {0.0, 50.0, 150.0, 400.0}) {
    core::ContinuousPrqMonitor::Options options;
    options.buffer_margin = margin;
    core::ContinuousPrqMonitor monitor(&tree, options);

    double phase1_us = 0.0, total_ms = 0.0;
    for (int tick = 0; tick < ticks; ++tick) {
      const double angle = 0.05 * tick;
      const double x = 500.0 + step * tick * std::cos(angle) * 0.5;
      const double y = 500.0 + step * tick * std::sin(angle) * 0.5;
      auto g = core::GaussianDistribution::Create(la::Vector{x, y}, cov);
      const core::PrqQuery query{std::move(*g), 25.0, 0.01};
      core::ContinuousPrqMonitor::TickStats stats;
      auto result = monitor.Update(query, &evaluator, &stats);
      if (!result.ok()) std::abort();
      phase1_us += (stats.prep_seconds + stats.phase1_seconds) * 1e6;
      total_ms += stats.total_seconds() * 1e3;
    }
    std::printf("%-16.0f%12zu%14llu%16.1f%14.2f\n", margin,
                monitor.monitor_stats().refetches,
                static_cast<unsigned long long>(
                    monitor.monitor_stats().node_reads),
                phase1_us / ticks, total_ms / ticks);
  }
  std::printf("\nexpected shape: larger margins slash refetches and index "
              "reads; total time is dominated by Phase 3 either way, so "
              "the win matters most for disk-resident or remote indexes.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
