// Ablation: accuracy and speed of the histogram-based candidate estimator
// against the engine's measured counts — can Phase-3 work be predicted
// before running the query (and hence budgeted / strategy-planned)?

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/histogram.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t queries = bench::EnvOr("GPRQ_TRIALS", 20);
  const double delta = 25.0;
  const double theta = 0.01;

  std::printf("Ablation: candidate-count estimator accuracy "
              "(TIGER, gamma=10, delta=%.0f, theta=%.2f, %llu queries)\n\n",
              delta, theta, static_cast<unsigned long long>(queries));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  mc::ImhofEvaluator exact;

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < queries; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(10.0);

  std::printf("%-12s%14s%16s%16s%16s\n", "cells/dim", "build (ms)",
              "estimate (us)", "mean rel err", "p90 rel err");
  bench::Rule(74);
  for (size_t cells : {16u, 32u, 64u, 128u, 256u}) {
    Stopwatch build_timer;
    auto histogram = core::GridHistogram::Build(dataset.points, cells);
    if (!histogram.ok()) std::abort();
    const double build_ms = build_timer.ElapsedMillis();

    std::vector<double> errors;
    double estimate_us = 0.0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      Stopwatch timer;
      auto estimate = core::EstimatePrqCandidates(*histogram, *g, delta,
                                                  theta, core::kStrategyAll);
      estimate_us += timer.ElapsedSeconds() * 1e6;
      if (!estimate.ok()) std::abort();

      auto gq = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*gq), delta, theta};
      core::PrqOptions options;
      options.use_catalogs = false;
      core::PrqStats stats;
      auto result = engine.Execute(query, options, &exact, &stats);
      if (!result.ok()) std::abort();
      const double actual =
          static_cast<double>(stats.integration_candidates);
      if (actual >= 5.0) {
        errors.push_back(
            std::abs(estimate->integration_candidates - actual) / actual);
      }
    }
    std::sort(errors.begin(), errors.end());
    double mean = 0.0;
    for (double e : errors) mean += e;
    mean /= std::max<size_t>(errors.size(), 1);
    const double p90 =
        errors.empty() ? 0.0 : errors[errors.size() * 9 / 10];
    std::printf("%-12zu%14.1f%16.1f%15.1f%%%15.1f%%\n", cells, build_ms,
                estimate_us / static_cast<double>(queries), mean * 100.0,
                p90 * 100.0);
  }
  std::printf("\nexpected shape: error shrinks with resolution and the "
              "estimate costs microseconds vs milliseconds-to-seconds for "
              "the query itself.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
