// Ablation: Phase-3 backend comparison on the full Table-I workload — the
// paper's Monte-Carlo importance sampling vs our exact Imhof evaluator.
// Shows that (a) with MC, filtering dominates total cost exactly as the
// paper argues, and (b) an exact evaluator shifts the trade-off: Phase 3
// gets so cheap that the filtering strategies matter less for wall-clock
// time (but still bound the work).

#include <cstdio>

#include "bench/bench_util.h"
#include "mc/exact_evaluator.h"
#include "mc/monte_carlo.h"
#include "mc/slice_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 20000);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double delta = 25.0;
  const double theta = 0.01;
  const double gamma = 10.0;

  std::printf("Ablation: Phase-3 evaluator comparison "
              "(gamma=%.0f, delta=%.0f, theta=%.2f, MC samples=%llu)\n\n",
              gamma, delta, theta,
              static_cast<unsigned long long>(samples));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);

  std::printf("%-14s%12s%14s%14s%12s\n", "evaluator", "strategy",
              "total (ms)", "phase3 (ms)", "phase3 %");
  bench::Rule(66);

  for (int backend = 0; backend < 3; ++backend) {
    for (auto mask : {core::kStrategyRR, core::kStrategyAll}) {
      double total = 0.0, phase3 = 0.0;
      size_t result_check = 0;
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        core::PrqStats stats;
        mc::MonteCarloEvaluator monte({.samples = samples, .seed = 7});
        mc::ImhofEvaluator imhof;
        mc::Slice2DEvaluator slice;
        mc::ProbabilityEvaluator* evaluator =
            (backend == 0)
                ? static_cast<mc::ProbabilityEvaluator*>(&monte)
                : (backend == 1)
                      ? static_cast<mc::ProbabilityEvaluator*>(&imhof)
                      : &slice;
        auto result = engine.Execute(query, options, evaluator, &stats);
        if (!result.ok()) std::abort();
        total += stats.total_seconds() * 1e3;
        phase3 += stats.phase3_seconds * 1e3;
        result_check += result->size();
      }
      const char* names[] = {"monte-carlo", "imhof", "slice-2d"};
      std::printf("%-14s%12s%14.2f%14.2f%11.0f%%\n", names[backend],
                  core::StrategyName(mask).c_str(),
                  total / static_cast<double>(trials),
                  phase3 / static_cast<double>(trials),
                  100.0 * phase3 / std::max(total, 1e-9));
      (void)result_check;
    }
  }
  std::printf("\nexpected shape: with Monte-Carlo Phase 3 takes >90%% of "
              "the time (the paper reports >=97%% at 100k samples), so ALL "
              "beats RR roughly in proportion to its candidate reduction; "
              "with the exact evaluator Phase 3 shrinks dramatically.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
