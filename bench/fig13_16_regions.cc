// Reproduces paper Figs. 13-16: the integration regions of the three
// strategies for the default query (δ = 25, θ = 0.01) at γ = 10 (Fig. 13),
// the intersection region of ALL (Fig. 14), and the γ = 1 / γ = 100
// variants (Figs. 15-16). The figures annotate the region dimensions; we
// print the same quantities — RR box half-widths, OR oblique half-widths,
// BF radii — plus Monte-Carlo area estimates of each region and of their
// intersection, which quantify the papers' visual argument: at γ = 1 the
// regions nearly coincide (combining adds little), at γ = 100 the
// intersection is much smaller than each region (combining pays off).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/filters.h"
#include "core/radius_catalog.h"
#include "rng/random.h"

namespace gprq {
namespace {

void Run() {
  const double delta = 25.0;
  const double theta = 0.01;
  const double r_theta = core::RadiusCatalog::ExactRadius(2, theta);
  std::printf("Figs. 13-16 reproduction: integration-region geometry "
              "(delta=%.0f, theta=%.2f, r_theta=%.3f)\n\n",
              delta, theta, r_theta);
  std::printf("paper annotations for comparison:\n"
              "  Fig.13 (gamma=10): 46.9, 15.3, 25.0, 23.4, 15.6\n"
              "  Fig.15 (gamma=1) : 10.7, 32.0, 4.8, 25.0, 7.4\n"
              "  Fig.16 (gamma=100): 92.8, 48.5, 25.0, 30.9, 74.1\n\n");

  for (double gamma : {1.0, 10.0, 100.0}) {
    const la::Matrix cov = workload::PaperCovariance2D(gamma);
    auto g = core::GaussianDistribution::Create(la::Vector{0.0, 0.0}, cov);
    if (!g.ok()) std::abort();

    const core::RrRegion rr = core::RrRegion::Compute(*g, delta, r_theta);
    const core::OrRegion oreg = core::OrRegion::Compute(*g, delta, r_theta);
    const core::BfBounds bf =
        core::BfBounds::Compute(*g, delta, theta, /*catalog=*/nullptr);

    std::printf("gamma = %.0f\n", gamma);
    std::printf("  RR  core box half-widths (sigma_i * r_theta): "
                "x=%.1f y=%.1f;  search box: x=%.1f y=%.1f\n",
                rr.core_box.hi()[0], rr.core_box.hi()[1],
                rr.search_box.hi()[0], rr.search_box.hi()[1]);
    std::printf("  OR  oblique half-widths (s_i*r_theta + delta): "
                "minor=%.1f major=%.1f\n",
                oreg.half_widths[0], oreg.half_widths[1]);
    if (bf.nothing_qualifies) {
      std::printf("  BF  proves result empty\n");
    } else {
      std::printf("  BF  outer radius alpha_par=%.1f", bf.alpha_outer);
      if (bf.has_inner) {
        std::printf(", inner radius alpha_perp=%.1f", bf.alpha_inner);
      } else {
        std::printf(", no inner hole");
      }
      std::printf("\n");
    }

    // Monte-Carlo area of each strategy's integration region and of every
    // combination (Fig. 14 is the ALL intersection). Sample the BF annulus
    // bounding box, the largest region.
    rng::Random random(31);
    const double extent = bf.alpha_outer + 1.0;
    const int n = 400000;
    int in_rr = 0, in_or = 0, in_bf = 0, in_rr_bf = 0, in_rr_or = 0,
        in_bf_or = 0, in_all = 0;
    for (int i = 0; i < n; ++i) {
      la::Vector p{random.NextDouble(-extent, extent),
                   random.NextDouble(-extent, extent)};
      const bool rr_in = rr.PassesFringe(p, delta);
      const bool or_in = oreg.Contains(*g, p);
      const double dist_sq = la::SquaredNorm(p);
      const bool bf_in =
          dist_sq <= bf.alpha_outer * bf.alpha_outer &&
          !(bf.has_inner && dist_sq <= bf.alpha_inner * bf.alpha_inner);
      in_rr += rr_in;
      in_or += or_in;
      in_bf += bf_in;
      in_rr_bf += rr_in && bf_in;
      in_rr_or += rr_in && or_in;
      in_bf_or += bf_in && or_in;
      in_all += rr_in && or_in && bf_in;
    }
    const double cell = (2.0 * extent) * (2.0 * extent) / n;
    std::printf("  integration-region areas (x1000 units^2): "
                "RR=%.1f OR=%.1f BF=%.1f RR+BF=%.1f RR+OR=%.1f "
                "BF+OR=%.1f ALL=%.1f\n",
                in_rr * cell / 1e3, in_or * cell / 1e3, in_bf * cell / 1e3,
                in_rr_bf * cell / 1e3, in_rr_or * cell / 1e3,
                in_bf_or * cell / 1e3, in_all * cell / 1e3);
    std::printf("  ALL / min(single region) = %.2f\n\n",
                static_cast<double>(in_all) /
                    std::min({in_rr, in_or, in_bf}));
  }
  std::printf("expected shape: at gamma=1 ALL is close to the best single "
              "region; at gamma=100 ALL is a small fraction of it "
              "(combining strategies pays off for vague locations).\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
