// Reproduces paper Fig. 17: the probability that a point drawn from the
// d-dimensional normalized Gaussian lies within radius r of the origin
// ("probability of existence"), for d ∈ {2, 3, 5, 9, 15} — the curse-of-
// dimensionality picture driving the Section VI discussion. Also prints
// the paper's quoted check values.

#include <cstdio>

#include "stats/chi_squared.h"

namespace gprq {
namespace {

void Run() {
  std::printf("Fig. 17 reproduction: probability of existence vs radius\n\n");
  const size_t dims[] = {2, 3, 5, 9, 15};
  std::printf("%-8s", "radius");
  for (size_t d : dims) std::printf("%10zuD", d);
  std::printf("\n");
  for (int i = 0; i < 8 + 11 * 5; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
  for (double r = 0.0; r <= 6.0 + 1e-9; r += 0.25) {
    std::printf("%-8.2f", r);
    for (size_t d : dims) {
      std::printf("%11.4f", stats::GaussianBallMass(d, r));
    }
    std::printf("\n");
  }

  std::printf("\npaper check values:\n");
  std::printf("  2-D, r=1: %.0f%% (paper: 39%%)\n",
              100.0 * stats::GaussianBallMass(2, 1.0));
  std::printf("  9-D, r=2: %.0f%% (paper: 9%%)\n",
              100.0 * stats::GaussianBallMass(9, 2.0));
  std::printf("  r_theta(2-D, theta=0.01) = %.2f (paper: 2.79)\n",
              stats::ThetaRegionRadius(2, 0.01));
  std::printf("  r_theta(9-D, theta=0.01) = %.2f (paper: 4.44)\n",
              stats::ThetaRegionRadius(9, 0.01));
  std::printf("  r_theta(9-D, theta=0.4)  = %.2f (paper: 2.32)\n",
              stats::ThetaRegionRadius(9, 0.4));
  std::printf("\nexpected shape: for fixed probability the radius grows "
              "with dimension; a 9-D query object is within distance 2 of "
              "its own mean only ~9%% of the time.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
