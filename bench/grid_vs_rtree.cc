// Ablation: Phase-1 index choice — the paper's R*-tree vs a uniform grid.
// On the clustered TIGER data the grid wastes work in dense cells and empty
// regions; the R*-tree adapts its partitioning to the data. Quantifies why
// the paper "uses the R-tree index family".

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/filters.h"
#include "core/radius_catalog.h"
#include "index/grid_index.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const int queries = 200;
  std::printf("Ablation: Phase-1 search — R*-tree vs uniform grid "
              "(TIGER 50,747 pts, RR search box at gamma=10, delta=25, "
              "theta=0.01, %d queries)\n\n",
              queries);

  const auto dataset = workload::GenerateTigerSynthetic();
  auto tree = bench::BuildTree(dataset);

  const double r_theta = core::RadiusCatalog::ExactRadius(2, 0.01);
  const la::Matrix cov = workload::PaperCovariance2D(10.0);
  rng::Random random(42);
  std::vector<geom::Rect> boxes;
  for (int i = 0; i < queries; ++i) {
    const la::Vector& center =
        dataset.points[random.NextUint64(dataset.size())];
    auto g = core::GaussianDistribution::Create(center, cov);
    boxes.push_back(core::RrRegion::Compute(*g, 25.0, r_theta).search_box);
  }

  // R*-tree.
  {
    tree.ResetStats();
    std::vector<index::ObjectId> out;
    Stopwatch timer;
    size_t hits = 0;
    for (const auto& box : boxes) {
      out.clear();
      tree.RangeQuery(box, &out);
      hits += out.size();
    }
    std::printf("%-22s%14.1f us/query%14.1f node-reads/query  "
                "(%zu hits/query)\n",
                "R*-tree",
                timer.ElapsedSeconds() * 1e6 / queries,
                static_cast<double>(tree.stats().node_reads) / queries,
                hits / queries);
  }

  // Uniform grids at several resolutions.
  for (size_t cells : {32u, 128u, 512u}) {
    auto grid = index::UniformGridIndex::Build(dataset.points, cells);
    if (!grid.ok()) std::abort();
    grid->ResetStats();
    std::vector<index::ObjectId> out;
    Stopwatch timer;
    size_t hits = 0;
    for (const auto& box : boxes) {
      out.clear();
      grid->RangeQuery(box, &out);
      hits += out.size();
    }
    std::printf("grid %4zux%-4zu        %14.1f us/query%14.1f cells/query"
                "       (%zu hits/query)\n",
                cells, cells, timer.ElapsedSeconds() * 1e6 / queries,
                static_cast<double>(grid->cells_touched()) / queries,
                hits / queries);
  }
  std::printf("\nexpected shape: identical hit counts; the tree touches "
              "few dozen nodes regardless of skew, the grid's cost swings "
              "with resolution (too coarse: scans crowded cells; too "
              "fine: touches thousands of cells).\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
