// Extension bench: the exact per-axis marginal filter on the paper's 9-D
// pseudo-feedback workload (the setting where Section VI concludes "for
// efficient processing of medium- or high-dimensional cases, we need
// further development by considering the nature of Gaussian
// distributions"). Reports integration candidates for each strategy combo
// with and without the marginal filter.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "la/eigen_sym.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/corel_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 10);
  const double delta = 0.7;
  const double theta = 0.4;

  std::printf("Extension: marginal filter on the Table III workload "
              "(9-D pseudo-feedback, delta=%.1f theta=%.1f, %llu trials)\n\n",
              delta, theta, static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateCorelSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();
  mc::ImhofEvaluator exact;

  rng::Random random(2024);
  double base_counts[6] = {0.0}, mf_counts[6] = {0.0};
  double answers = 0.0;

  for (uint64_t trial = 0; trial < trials; ++trial) {
    const la::Vector& center =
        dataset.points[random.NextUint64(dataset.size())];
    std::vector<std::pair<double, index::ObjectId>> knn;
    tree.KnnQuery(center, 20, &knn);
    la::Vector mean(9);
    for (const auto& [dist, id] : knn) mean += dataset.points[id];
    mean *= 1.0 / static_cast<double>(knn.size());
    la::Matrix sigma(9, 9);
    for (const auto& [dist, id] : knn) {
      const la::Vector diff = dataset.points[id] - mean;
      for (size_t a = 0; a < 9; ++a) {
        for (size_t b = 0; b < 9; ++b) sigma(a, b) += diff[a] * diff[b];
      }
    }
    sigma *= 1.0 / static_cast<double>(knn.size());
    auto eigen = la::DecomposeSymmetric(sigma);
    double log_det = 0.0;
    for (size_t i = 0; i < 9; ++i) {
      log_det += std::log(std::max(eigen->eigenvalues[i], 1e-12));
    }
    const la::Matrix cov =
        sigma + la::Matrix::Identity(9) * std::exp(log_det / 9.0);

    int idx = 0;
    for (auto mask : bench::PaperCombos()) {
      for (int use_mf = 0; use_mf < 2; ++use_mf) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        options.use_marginal_filter = (use_mf == 1);
        core::PrqStats stats;
        auto result = engine.Execute(query, options, &exact, &stats);
        if (!result.ok()) std::abort();
        (use_mf ? mf_counts : base_counts)[idx] +=
            static_cast<double>(stats.integration_candidates);
        if (use_mf && mask == core::kStrategyAll) {
          answers += static_cast<double>(stats.result_size);
        }
      }
      ++idx;
    }
  }

  std::printf("%-12s", "");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("\n");
  bench::Rule(12 + 8 * 6);
  std::printf("%-12s", "paper combo");
  for (int c = 0; c < 6; ++c) {
    std::printf("%8.0f", base_counts[c] / static_cast<double>(trials));
  }
  std::printf("\n%-12s", "+marginal");
  for (int c = 0; c < 6; ++c) {
    std::printf("%8.0f", mf_counts[c] / static_cast<double>(trials));
  }
  std::printf("\n%-12s", "reduction");
  for (int c = 0; c < 6; ++c) {
    std::printf("%7.0f%%", 100.0 * (1.0 - mf_counts[c] /
                                              std::max(base_counts[c], 1.0)));
  }
  std::printf("\n\navg ANS (unchanged by the filter): %.1f\n",
              answers / static_cast<double>(trials));
  std::printf("expected shape: the exact per-axis bound removes a large "
              "share of the integration candidates the paper's filters "
              "keep in 9-D, at the cost of 2d Phi evaluations per "
              "candidate.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
