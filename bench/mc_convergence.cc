// Ablation: Monte-Carlo sample budget vs accuracy and cost, against the
// exact Imhof evaluator as ground truth. Replicates the paper's setup note
// ("for each numerical integration, 100,000 random numbers were generated
// and it took about 0.05 seconds ... per object") and quantifies the
// error/time trade-off that motivates the filtering strategies.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "mc/exact_evaluator.h"
#include "mc/monte_carlo.h"
#include "mc/qmc_evaluator.h"
#include "workload/generators.h"

namespace gprq {
namespace {

core::GaussianDistribution Gaussian2D() {
  auto g = core::GaussianDistribution::Create(
      la::Vector{0.0, 0.0}, workload::PaperCovariance2D(10.0));
  return std::move(*g);
}

core::GaussianDistribution Gaussian9D() {
  auto g = core::GaussianDistribution::Create(
      la::Vector(9), workload::RandomRotatedCovariance(
                         la::Vector{0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.8,
                                    1.0, 1.3},
                         5));
  return std::move(*g);
}

void BM_MonteCarloIntegration2D(benchmark::State& state) {
  const auto g = Gaussian2D();
  mc::MonteCarloEvaluator mc(
      {.samples = static_cast<uint64_t>(state.range(0)), .seed = 3});
  mc::ImhofEvaluator exact;
  const la::Vector object{20.0, 5.0};
  const double truth = exact.QualificationProbability(g, object, 25.0);
  double worst_error = 0.0;
  for (auto _ : state) {
    const double p = mc.QualificationProbability(g, object, 25.0);
    worst_error = std::max(worst_error, std::abs(p - truth));
    benchmark::DoNotOptimize(p);
  }
  state.counters["max_abs_err"] = worst_error;
}
BENCHMARK(BM_MonteCarloIntegration2D)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_MonteCarloIntegration9D(benchmark::State& state) {
  const auto g = Gaussian9D();
  mc::MonteCarloEvaluator mc(
      {.samples = static_cast<uint64_t>(state.range(0)), .seed = 4});
  mc::ImhofEvaluator exact;
  la::Vector object(9);
  object[0] = 0.5;
  object[3] = -0.7;
  const double truth = exact.QualificationProbability(g, object, 2.0);
  double worst_error = 0.0;
  for (auto _ : state) {
    const double p = mc.QualificationProbability(g, object, 2.0);
    worst_error = std::max(worst_error, std::abs(p - truth));
    benchmark::DoNotOptimize(p);
  }
  state.counters["max_abs_err"] = worst_error;
}
BENCHMARK(BM_MonteCarloIntegration9D)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_QuasiMonteCarlo2D(benchmark::State& state) {
  const auto g = Gaussian2D();
  mc::QuasiMonteCarloEvaluator qmc(
      {.samples = static_cast<uint64_t>(state.range(0)), .seed = 3});
  mc::ImhofEvaluator exact;
  const la::Vector object{20.0, 5.0};
  const double truth = exact.QualificationProbability(g, object, 25.0);
  double worst_error = 0.0;
  for (auto _ : state) {
    const double p = qmc.QualificationProbability(g, object, 25.0);
    worst_error = std::max(worst_error, std::abs(p - truth));
    benchmark::DoNotOptimize(p);
  }
  state.counters["max_abs_err"] = worst_error;
}
BENCHMARK(BM_QuasiMonteCarlo2D)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_ImhofIntegration2D(benchmark::State& state) {
  const auto g = Gaussian2D();
  mc::ImhofEvaluator exact;
  // Sweep over objects at different distances: the integrand decays faster
  // for distant objects, so cost varies.
  const double dist = static_cast<double>(state.range(0));
  const la::Vector object{dist, dist * 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact.QualificationProbability(g, object, 25.0));
  }
}
BENCHMARK(BM_ImhofIntegration2D)->Arg(0)->Arg(20)->Arg(60)
    ->Unit(benchmark::kMicrosecond);

void BM_ImhofIntegration9D(benchmark::State& state) {
  const auto g = Gaussian9D();
  mc::ImhofEvaluator exact;
  la::Vector object(9);
  object[0] = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact.QualificationProbability(g, object, 2.0));
  }
}
BENCHMARK(BM_ImhofIntegration9D)->Arg(0)->Arg(10)->Arg(30)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gprq

BENCHMARK_MAIN();
