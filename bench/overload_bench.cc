// Overload bench: an open-loop Poisson load generator against the governed
// BatchExecutor. A closed-loop warmup measures the executor's capacity
// (queries/second at saturation, no queuing), then each load multiplier
// (default 0.5x / 1x / 2x capacity) drives open-loop arrivals — the
// arrival clock does not wait for responses, which is what makes overload
// real: at 2x capacity an unprotected server's queue and latency grow
// without bound, while admission control converts the excess into fast
// ResourceExhausted rejections and brownout keeps the admitted queries'
// tail latency bounded.
//
// The query mix is deliberately heterogeneous (the paper's cost model:
// Phase-3 work swings 20-87x with the query Σ): half the queries use a
// tight gamma=10 covariance, half a vague gamma=100 one.
//
// Per multiplier the bench reports offered load, goodput (complete
// answers), brownout rate (admitted but degraded), shed rate (rejected at
// admission), and p50/p99 latency of admitted queries. Records land in
// BENCH_overload.json (GPRQ_BENCH_JSON overrides the path).
//
// Environment knobs:
//   GPRQ_OVERLOAD_SECONDS  seconds of open-loop load per multiplier (3)
//   GPRQ_OVERLOAD_MULTS    comma-separated load multipliers ("0.5,1,2")
//   GPRQ_OVERLOAD_CLIENTS  open-loop client threads (4)
//   GPRQ_OVERLOAD_ASSERT   when set: exit 1 unless the >=2x run shed a
//                          nonzero fraction and no query errored — the CI
//                          smoke contract
//   GPRQ_MC_SAMPLES        Monte-Carlo samples per integration (20000)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/batch_executor.h"
#include "exec/overload.h"
#include "mc/adaptive_monte_carlo.h"
#include "rng/random.h"
#include "workload/generators.h"

namespace gprq {
namespace {

struct LoadResult {
  double offered_qps = 0.0;
  double seconds = 0.0;
  uint64_t arrivals = 0;
  uint64_t completed = 0;  // complete answers (goodput)
  uint64_t browned = 0;    // admitted, degraded (ResourceExhausted/deadline
                           // with partial content)
  uint64_t shed = 0;       // rejected at admission, no work done
  uint64_t errors = 0;     // anything outside the overload contract
  double p50_ms = 0.0;     // latency of admitted queries
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

std::vector<double> ParseMults(const char* env) {
  std::vector<double> mults;
  if (env != nullptr && *env != '\0') {
    std::string spec(env);
    size_t pos = 0;
    while (pos <= spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string part = spec.substr(pos, comma - pos);
      pos = comma + 1;
      if (!part.empty()) mults.push_back(std::strtod(part.c_str(), nullptr));
    }
  }
  if (mults.empty()) mults = {0.5, 1.0, 2.0};
  return mults;
}

class QueryMix {
 public:
  QueryMix(const workload::Dataset& dataset, uint64_t seed)
      : dataset_(dataset),
        tight_(workload::PaperCovariance2D(10.0)),
        vague_(workload::PaperCovariance2D(100.0)),
        random_(seed) {}

  /// Alternates cheap/expensive Σ over random centers; every other call is
  /// an order of magnitude more Phase-3 work than its neighbor.
  core::PrqQuery Next() {
    const la::Vector& center =
        dataset_.points[random_.NextUint64(dataset_.size())];
    const bool expensive = (++draws_ % 2) == 0;
    auto g = core::GaussianDistribution::Create(
        center, expensive ? vague_ : tight_);
    if (!g.ok()) std::abort();
    return core::PrqQuery{std::move(*g), 25.0, 0.01};
  }

  /// Exponential inter-arrival gap for a Poisson process of `rate` qps.
  double NextGapSeconds(double rate) {
    const double u = random_.NextDouble();
    return -std::log(1.0 - u) / rate;
  }

  int NextPriority() {
    const uint64_t draw = random_.NextUint64(10);
    if (draw == 0) return core::kPriorityBackground;
    if (draw == 1) return core::kPriorityCritical;
    return core::kPriorityNormal;
  }

 private:
  const workload::Dataset& dataset_;
  la::Matrix tight_;
  la::Matrix vague_;
  rng::Random random_;
  uint64_t draws_ = 0;
};

core::PrqEngine::EvaluatorFactory AdaptiveFactory(uint64_t samples) {
  return [samples](size_t worker) {
    return std::make_unique<mc::AdaptiveMonteCarloEvaluator>(
        mc::AdaptiveMonteCarloOptions{.max_samples = samples,
                                      .seed = 100 + worker});
  };
}

/// Closed-loop capacity: one client, back-to-back queries, no admission
/// pressure. Offered load for the open-loop phases is a multiple of this.
double MeasureCapacityQps(exec::BatchExecutor* executor, QueryMix* mix) {
  // Warm the catalogs and evaluator streams first.
  for (int i = 0; i < 4; ++i) {
    auto r = executor->SubmitBounded(mix->Next(), core::PrqOptions());
    if (!r.ok()) std::abort();
  }
  Stopwatch watch;
  uint64_t completed = 0;
  while (watch.ElapsedSeconds() < 1.0) {
    auto r = executor->SubmitBounded(mix->Next(), core::PrqOptions());
    if (!r.ok()) std::abort();
    // Only finished answers are capacity; rejections return in ~1us and
    // would inflate the closed-loop rate by orders of magnitude.
    if (r->status.code() == StatusCode::kOk) ++completed;
  }
  return static_cast<double>(completed) / watch.ElapsedSeconds();
}

LoadResult RunOpenLoop(exec::BatchExecutor* executor,
                       const workload::Dataset& dataset, double offered_qps,
                       double seconds, size_t clients) {
  LoadResult result;
  result.offered_qps = offered_qps;

  std::atomic<uint64_t> arrivals{0}, completed{0}, browned{0}, shed{0},
      errors{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      QueryMix mix(dataset, 1000 + 17 * c);
      const double rate = offered_qps / static_cast<double>(clients);
      Stopwatch clock;
      double next_arrival = mix.NextGapSeconds(rate);
      while (clock.ElapsedSeconds() < seconds) {
        const double now = clock.ElapsedSeconds();
        if (now < next_arrival) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(next_arrival - now, seconds - now)));
          continue;
        }
        next_arrival += mix.NextGapSeconds(rate);
        ++arrivals;
        core::PrqOptions options;
        options.priority = mix.NextPriority();
        obs::QueryTrace trace;
        Stopwatch latency;
        auto answer = executor->SubmitBounded(mix.Next(), options, nullptr,
                                              &trace);
        const double ms = latency.ElapsedSeconds() * 1e3;
        if (!answer.ok()) {
          ++errors;
          continue;
        }
        switch (answer->status.code()) {
          case StatusCode::kOk:
            ++completed;
            latencies[c].push_back(ms);
            break;
          case StatusCode::kResourceExhausted:
            if (trace.shed) {
              ++shed;
            } else {
              ++browned;
              latencies[c].push_back(ms);
            }
            break;
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kCancelled:
            ++browned;
            latencies[c].push_back(ms);
            break;
          default:
            ++errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  result.seconds = wall.ElapsedSeconds();
  result.arrivals = arrivals;
  result.completed = completed;
  result.browned = browned;
  result.shed = shed;
  result.errors = errors;
  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.p50_ms = Percentile(&all, 0.50);
  result.p99_ms = Percentile(&all, 0.99);
  return result;
}

int Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 20000);
  const uint64_t seconds = bench::EnvOr("GPRQ_OVERLOAD_SECONDS", 3);
  const uint64_t clients = bench::EnvOr("GPRQ_OVERLOAD_CLIENTS", 4);
  const std::vector<double> mults =
      ParseMults(std::getenv("GPRQ_OVERLOAD_MULTS"));
  const bool assert_mode = std::getenv("GPRQ_OVERLOAD_ASSERT") != nullptr;

  const geom::Rect extent(la::Vector{0.0, 0.0}, la::Vector{1000.0, 1000.0});
  const auto dataset = workload::GenerateClustered(20000, extent, 24, 30.0,
                                                   2009);
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();

  exec::OverloadPolicy policy;
  policy.max_inflight_cost = 400.0;
  policy.max_queue_depth = 2 * clients;
  policy.max_queue_wait_seconds = 0.25;
  policy.brownout_watermark_seconds = 0.005;
  policy.shed_watermark_seconds = 0.050;
  policy.brownout_deadline_seconds = 0.050;
  policy.brownout_sample_budget = 4096;
  auto executor = exec::BatchExecutor::Create(
      &engine, AdaptiveFactory(samples), 2, policy);
  if (!executor.ok()) {
    std::fprintf(stderr, "executor: %s\n",
                 executor.status().ToString().c_str());
    return 1;
  }

  QueryMix warmup_mix(dataset, 7);
  const double capacity = MeasureCapacityQps(executor->get(), &warmup_mix);
  std::printf("Overload bench: governed BatchExecutor, %llu-point dataset, "
              "%llu clients, %llu s per load level\n"
              "closed-loop capacity: %.1f qps\n\n",
              static_cast<unsigned long long>(dataset.size()),
              static_cast<unsigned long long>(clients),
              static_cast<unsigned long long>(seconds), capacity);

  std::printf("%-8s%12s%12s%12s%10s%10s%12s%12s\n", "load", "offered",
              "goodput", "arrivals", "shed%", "brown%", "p50 (ms)",
              "p99 (ms)");
  bench::Rule(88);

  bench::JsonReport report;
  bool assert_failed = false;
  bool saw_overload_shed = false;
  uint64_t total_errors = 0;
  for (const double mult : mults) {
    const LoadResult r =
        RunOpenLoop(executor->get(), dataset, mult * capacity,
                    static_cast<double>(seconds), clients);
    const double denom =
        std::max<double>(1.0, static_cast<double>(r.arrivals));
    const double goodput =
        static_cast<double>(r.completed) / std::max(r.seconds, 1e-9);
    const double shed_rate = static_cast<double>(r.shed) / denom;
    const double brown_rate = static_cast<double>(r.browned) / denom;
    std::printf("%-8.2g%12.1f%12.1f%12llu%9.1f%%%9.1f%%%12.2f%12.2f\n",
                mult, r.offered_qps, goodput,
                static_cast<unsigned long long>(r.arrivals),
                100.0 * shed_rate, 100.0 * brown_rate, r.p50_ms, r.p99_ms);
    total_errors += r.errors;
    if (mult >= 2.0 && r.shed > 0) saw_overload_shed = true;

    char name[64];
    std::snprintf(name, sizeof(name), "overload_%gx", mult);
    report.Add(name,
               bench::JsonReport::Metrics{
                   {"multiplier", mult},
                   {"capacity_qps", capacity},
                   {"offered_qps", r.offered_qps},
                   {"goodput_qps", goodput},
                   {"arrivals", static_cast<double>(r.arrivals)},
                   {"completed", static_cast<double>(r.completed)},
                   {"browned_out", static_cast<double>(r.browned)},
                   {"shed", static_cast<double>(r.shed)},
                   {"errors", static_cast<double>(r.errors)},
                   {"shed_rate", shed_rate},
                   {"brownout_rate", brown_rate},
                   {"p50_ms", r.p50_ms},
                   {"p99_ms", r.p99_ms},
               });
  }
  std::printf("\nshed responses carry ResourceExhausted with a "
              "retry_after_ms hint; browned-out answers keep ids exact and "
              "list the remainder as undecided.\n");

  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path =
      (json_env != nullptr && *json_env != '\0') ? json_env
                                                 : "BENCH_overload.json";
  if (report.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (assert_mode) {
    bool overloaded_level_ran = false;
    for (const double mult : mults) overloaded_level_ran |= mult >= 2.0;
    if (total_errors > 0) {
      std::fprintf(stderr, "ASSERT: %llu queries returned an unexpected "
                   "error\n",
                   static_cast<unsigned long long>(total_errors));
      assert_failed = true;
    }
    if (overloaded_level_ran && !saw_overload_shed) {
      std::fprintf(stderr, "ASSERT: the >=2x load level shed nothing — "
                   "admission control did not engage\n");
      assert_failed = true;
    }
    if (!assert_failed) std::printf("overload assertions passed\n");
  }
  return assert_failed ? 1 : 0;
}

}  // namespace
}  // namespace gprq

int main() { return gprq::Run(); }
