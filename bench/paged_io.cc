// Ablation: disk-resident query processing. Serializes the TIGER tree into
// the paper's 1 KB pages and runs the PRQ pipeline through a buffer pool,
// reporting logical node accesses vs physical page reads for cold and warm
// caches and across pool sizes. The paper treats Phase-1 I/O as negligible
// next to Phase 3; this bench puts numbers on that claim for an actual
// disk layout.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/paged_prq.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const double delta = 25.0;
  const double theta = 0.01;
  const double gamma = 10.0;
  const size_t page_size = 1024;  // the paper's node page size

  std::printf("Ablation: paged PRQ I/O (1 KB pages, gamma=%.0f, "
              "delta=%.0f, theta=%.2f)\n\n",
              gamma, delta, theta);

  const auto dataset = workload::GenerateTigerSynthetic();
  index::RStarTreeOptions tree_options;
  tree_options.max_entries =
      index::TreeSnapshot::MaxEntriesPerPage(page_size, 2);
  auto tree = index::StrBulkLoader::Load(2, dataset.points, tree_options);
  if (!tree.ok()) std::abort();

  const std::string path = "/tmp/gprq_paged_io.pages";
  if (!index::TreeSnapshot::Write(*tree, path, page_size).ok()) std::abort();
  std::printf("snapshot: %zu nodes -> %zu pages of %zu bytes\n\n",
              tree->node_count(), tree->node_count() + 1, page_size);

  mc::ImhofEvaluator exact;
  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (int t = 0; t < 5; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);
  core::PrqOptions options;
  options.use_catalogs = false;

  std::printf("%-14s%12s%14s%16s%14s\n", "pool pages", "cache", "node reads",
              "physical reads", "phase1 (us)");
  bench::Rule(70);
  for (size_t pool_pages : {8u, 64u, 512u, 4096u}) {
    index::PagedRStarTree::OpenOptions open_options;
    open_options.page_size = page_size;
    open_options.buffer_pages = pool_pages;
    auto paged = index::PagedRStarTree::Open(path, open_options);
    if (!paged.ok()) std::abort();

    for (int warm = 0; warm < 2; ++warm) {
      if (warm == 0) paged->DropCache();
      paged->ResetPoolStats();
      uint64_t node_reads = 0;
      const uint64_t physical_before = paged->physical_reads();
      double phase1 = 0.0;
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqStats stats;
        auto result = core::ExecutePagedPrq(*paged, query, options, &exact,
                                            nullptr, nullptr, &stats);
        if (!result.ok()) std::abort();
        node_reads += stats.node_reads;
        phase1 += stats.phase1_seconds * 1e6;
      }
      std::printf("%-14zu%12s%14llu%16llu%14.0f\n", pool_pages,
                  warm ? "warm" : "cold",
                  static_cast<unsigned long long>(node_reads),
                  static_cast<unsigned long long>(paged->physical_reads() -
                                                  physical_before),
                  phase1 / 5.0);
    }
  }
  std::remove(path.c_str());
  std::printf("\nexpected shape: warm runs with a big enough pool do zero "
              "physical reads; even cold Phase 1 costs far less than one "
              "Monte-Carlo integration (~ms), confirming the paper's "
              "'retrieval cost is negligible' premise.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
