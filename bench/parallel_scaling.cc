// Ablation: Phase-3 thread scaling. Numerical integrations are independent
// per candidate, and Phase 3 dominates query time with Monte-Carlo
// integration (paper: >= 97%), so parallel Phase 3 should scale close to
// linearly in the worker count.

#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "mc/monte_carlo.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 20000);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 3);
  const double delta = 25.0;
  const double theta = 0.01;
  const double gamma = 100.0;  // vaguest setting = most integrations

  std::printf("Ablation: Phase-3 thread scaling "
              "(gamma=%.0f, delta=%.0f, theta=%.2f, %llu MC samples; "
              "machine has %u hardware threads)\n\n",
              gamma, delta, theta,
              static_cast<unsigned long long>(samples),
              std::thread::hardware_concurrency());

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);

  std::printf("%-10s%14s%14s%10s\n", "threads", "phase3 (ms)", "total (ms)",
              "speedup");
  bench::Rule(48);
  double baseline = 0.0;
  for (size_t threads : {1u, 2u, 4u}) {
    double phase3 = 0.0, total = 0.0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*g), delta, theta};
      core::PrqStats stats;
      auto result = engine.ExecuteParallel(
          query, core::PrqOptions(),
          [samples](size_t worker) {
            return std::make_unique<mc::MonteCarloEvaluator>(
                mc::MonteCarloOptions{.samples = samples,
                                      .seed = 100 + worker});
          },
          threads, &stats);
      if (!result.ok()) std::abort();
      phase3 += stats.phase3_seconds * 1e3;
      total += stats.total_seconds() * 1e3;
    }
    if (threads == 1) baseline = phase3;
    std::printf("%-10zu%14.1f%14.1f%9.2fx\n", threads, phase3 / trials,
                total / trials, baseline / std::max(phase3, 1e-9));
  }
  std::printf("\nexpected shape: near-linear speedup up to the physical "
              "core count.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
