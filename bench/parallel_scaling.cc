// Ablation: Phase-3 thread scaling. Numerical integrations are independent
// per candidate, and Phase 3 dominates query time with Monte-Carlo
// integration (paper: >= 97%), so parallel Phase 3 should scale close to
// linearly in the worker count.
//
// Two execution paths are compared:
//  - per-query ExecuteParallel, which builds a worker pool and fresh
//    evaluators for every query (the one-shot convenience path);
//  - a persistent exec::BatchExecutor, which keeps threads and evaluators
//    alive across the whole stream and interleaves the Phase-3 chunks of a
//    batch — the serving configuration for sustained query traffic.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/batch_executor.h"
#include "mc/monte_carlo.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

core::PrqEngine::EvaluatorFactory McFactory(uint64_t samples) {
  return [samples](size_t worker) {
    return std::make_unique<mc::MonteCarloEvaluator>(
        mc::MonteCarloOptions{.samples = samples, .seed = 100 + worker});
  };
}

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 20000);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 3);
  const double delta = 25.0;
  const double theta = 0.01;
  const double gamma = 100.0;  // vaguest setting = most integrations

  std::printf("Ablation: Phase-3 thread scaling "
              "(gamma=%.0f, delta=%.0f, theta=%.2f, %llu MC samples; "
              "machine has %u hardware threads)\n\n",
              gamma, delta, theta,
              static_cast<unsigned long long>(samples),
              std::thread::hardware_concurrency());

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);

  std::printf("%-10s%14s%14s%10s\n", "threads", "phase3 (ms)", "total (ms)",
              "speedup");
  bench::Rule(48);
  double baseline = 0.0;
  for (size_t threads : {1u, 2u, 4u}) {
    double phase3 = 0.0, total = 0.0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*g), delta, theta};
      core::PrqStats stats;
      auto result = engine.ExecuteParallel(query, core::PrqOptions(),
                                           McFactory(samples), threads,
                                           &stats);
      if (!result.ok()) std::abort();
      phase3 += stats.phase3_seconds * 1e3;
      total += stats.total_seconds() * 1e3;
    }
    if (threads == 1) baseline = phase3;
    std::printf("%-10zu%14.1f%14.1f%9.2fx\n", threads, phase3 / trials,
                total / trials, baseline / std::max(phase3, 1e-9));
  }
  std::printf("\nexpected shape: near-linear speedup up to the physical "
              "core count.\n\n");

  // ---- Batch executor vs per-query ExecuteParallel throughput. -----------
  // The same query stream (each center repeated) through both paths.
  std::vector<core::PrqQuery> stream;
  constexpr size_t kRounds = 4;
  for (size_t r = 0; r < kRounds; ++r) {
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      stream.push_back(core::PrqQuery{std::move(*g), delta, theta});
    }
  }

  std::printf("Throughput: persistent BatchExecutor vs per-query "
              "ExecuteParallel (%zu-query stream)\n", stream.size());
  std::printf("%-10s%18s%16s%12s%18s\n", "threads", "per-query (q/s)",
              "batch (q/s)", "batch/pq", "integr./s (batch)");
  bench::Rule(74);
  bench::JsonReport report;
  for (size_t threads : {1u, 2u, 4u}) {
    Stopwatch per_query_timer;
    for (const auto& query : stream) {
      auto result = engine.ExecuteParallel(query, core::PrqOptions(),
                                           McFactory(samples), threads);
      if (!result.ok()) std::abort();
    }
    const double per_query_qps =
        stream.size() / std::max(per_query_timer.ElapsedSeconds(), 1e-9);

    auto executor =
        exec::BatchExecutor::Create(&engine, McFactory(samples), threads);
    if (!executor.ok()) std::abort();
    Stopwatch batch_timer;
    auto batch = (*executor)->SubmitBatch(stream, core::PrqOptions());
    if (!batch.ok()) std::abort();
    const double batch_qps =
        stream.size() / std::max(batch_timer.ElapsedSeconds(), 1e-9);
    const exec::ExecStats stats = (*executor)->Snapshot();

    std::printf("%-10zu%18.2f%16.2f%11.2fx%18.0f\n", threads, per_query_qps,
                batch_qps, batch_qps / std::max(per_query_qps, 1e-9),
                stats.integrations_per_second());

    bench::JsonValue record = bench::ServingRecord(stats);
    record.SetFront("batch_qps", bench::JsonValue(batch_qps));
    record.SetFront("per_query_qps", bench::JsonValue(per_query_qps));
    record.SetFront("threads",
                    bench::JsonValue(static_cast<double>(threads)));
    report.Add("parallel_scaling_serving", std::move(record));
  }
  std::printf("\nexpected shape: batch >= per-query at every thread count "
              "(no per-query thread/evaluator setup, no pool idle between "
              "queries), widening with threads.\n");

  // Serving telemetry per thread count, each record carrying the registry
  // snapshot as of that run (GPRQ_BENCH_JSON overrides the path).
  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path = (json_env != nullptr && *json_env != '\0')
                                    ? json_env
                                    : "BENCH_serving.json";
  if (report.WriteFile(json_path)) {
    std::printf("\nserving telemetry written to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
