// Extension bench: probabilistic nearest-neighbor queries (paper Section
// VII future work) on the TIGER dataset. Reports how the candidate set and
// the top-1 confidence behave as the location uncertainty grows, and the
// cost per sample budget.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/pnn.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_PNN_SAMPLES", 20000);

  std::printf("Extension: probabilistic nearest neighbor "
              "(n=50747, %llu samples per query)\n\n",
              static_cast<unsigned long long>(samples));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  rng::Random random(42);
  const la::Vector center = dataset.points[random.NextUint64(dataset.size())];

  std::printf("%-10s%14s%14s%14s%14s%14s\n", "gamma", "candidates",
              "top-1 prob", "top-3 mass", "node reads", "time (ms)");
  bench::Rule(80);
  for (double gamma : {0.1, 1.0, 10.0, 100.0}) {
    auto g = core::GaussianDistribution::Create(
        center, workload::PaperCovariance2D(gamma));
    if (!g.ok()) std::abort();
    core::PnnStats stats;
    auto result =
        core::ProbabilisticNearestNeighbor(tree, *g, samples, 7, &stats);
    if (!result.ok()) std::abort();
    double top3 = 0.0;
    for (size_t i = 0; i < std::min<size_t>(3, result->size()); ++i) {
      top3 += (*result)[i].probability;
    }
    std::printf("%-10.1f%14zu%14.3f%14.3f%14llu%14.1f\n", gamma,
                result->size(), (*result)[0].probability, top3,
                static_cast<unsigned long long>(stats.node_reads),
                stats.seconds * 1e3);
  }
  std::printf("\nexpected shape: with a precise location one object "
              "dominates; as the location gets vaguer the NN probability "
              "spreads over many candidates and the top-1 confidence "
              "collapses.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
