// Remote scatter-gather under load and under failure: builds a sharded
// deployment at K ∈ {2, 4}, serves every shard from an in-process GPRQ/1
// backend (the gprq_server --shard-only shape), and drives the
// RemoteShardedEngine coordinator through three phases per K:
//
//   1. closed-loop capacity: back-to-back queries measure the sustainable
//      throughput of the full RPC scatter-gather path;
//   2. open-loop at 0.5x / 1x / 2x of that capacity, healthy: arrivals on
//      a fixed schedule, latency measured from *scheduled* arrival (queue
//      wait included), goodput = complete answers per second;
//   3. the same open-loop sweep with one backend killed: the breaker
//      fails the dead shard fast, queries routed to it degrade to partial
//      answers (their candidates undecided), everything else completes.
//
// Writes BENCH_remote.json (GPRQ_BENCH_JSON overrides). Scale with:
//
//   GPRQ_REMOTE_BENCH_N  points to generate            (default 200000)
//   GPRQ_MC_SAMPLES      MC samples per integration    (default 4000)
//   GPRQ_TRIALS          queries per open-loop phase   (default 64)
//   GPRQ_REMOTE_KS       comma-separated shard counts  (default 2,4)
//   GPRQ_REMOTE_BENCH_DIR  scratch directory           (default mkdtemp)
//
// Expected shape: goodput tracks the offered rate up to 1x and saturates
// at 2x (p99 then grows with queue depth); with one backend down, goodput
// only loses the degraded fraction — the deployment keeps answering.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/batch_executor.h"
#include "index/dataset_file.h"
#include "mc/monte_carlo.h"
#include "net/server.h"
#include "obs/trace.h"
#include "remote/remote_engine.h"
#include "rng/random.h"
#include "shard/shard_builder.h"
#include "shard/sharded_engine.h"

namespace gprq {
namespace {

core::PrqEngine::EvaluatorFactory McFactory(uint64_t samples) {
  return [samples](size_t worker) {
    return std::make_unique<mc::MonteCarloEvaluator>(
        mc::MonteCarloOptions{.samples = samples, .seed = 100 + worker});
  };
}

std::vector<size_t> ShardCounts() {
  const char* env = std::getenv("GPRQ_REMOTE_KS");
  if (env == nullptr || *env == '\0') return {2, 4};
  std::vector<size_t> counts;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const unsigned long k = std::strtoul(p, &end, 10);
    if (end == p) break;
    if (k > 0) counts.push_back(static_cast<size_t>(k));
    p = (*end == ',') ? end + 1 : end;
  }
  if (counts.empty()) counts = {2, 4};
  return counts;
}

std::string ScratchDir() {
  const char* env = std::getenv("GPRQ_REMOTE_BENCH_DIR");
  if (env != nullptr && *env != '\0') {
    ::mkdir(env, 0755);
    return env;
  }
  char tmpl[] = "/tmp/gprq_remote_bench.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) std::abort();
  return dir;
}

void GenerateDataset(const std::string& path, uint64_t n, double extent) {
  auto writer = index::DatasetFileWriter::Create(path, 2);
  if (!writer.ok()) std::abort();
  rng::Random random(2009);
  constexpr size_t kClusters = 64;
  std::vector<double> centers(kClusters * 2);
  for (double& c : centers) c = random.NextDouble(0.0, extent);
  const double stddev = extent / 25.0;
  double row[2];
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t c = random.NextUint64(kClusters);
    for (size_t a = 0; a < 2; ++a) {
      const double v = random.NextGaussian(centers[c * 2 + a], stddev);
      row[a] = std::min(std::max(v, 0.0), extent);
    }
    if (!writer->Append(row).ok()) std::abort();
  }
  if (!writer->Finish().ok()) std::abort();
}

/// One K-shard deployment: per-shard backend servers + the coordinator.
struct Deployment {
  std::vector<std::unique_ptr<exec::BatchExecutor>> backend_executors;
  std::vector<std::unique_ptr<shard::ShardedPrqEngine>> backend_engines;
  std::vector<std::unique_ptr<net::Server>> backend_servers;
  std::unique_ptr<exec::BatchExecutor> coordinator_executor;
  std::unique_ptr<remote::RemoteShardedEngine> coordinator;
};

Deployment MakeDeployment(const std::string& manifest_path, size_t shards,
                          uint64_t samples) {
  Deployment deployment;
  std::vector<remote::BackendAddress> addresses;
  for (size_t k = 0; k < shards; ++k) {
    auto executor = exec::BatchExecutor::CreateDetached(McFactory(samples), 2);
    if (!executor.ok()) std::abort();
    deployment.backend_executors.push_back(std::move(*executor));
    shard::ShardedEngineOptions backend_options;
    backend_options.only_shard = static_cast<int64_t>(k);
    auto engine = shard::ShardedPrqEngine::Open(
        manifest_path, deployment.backend_executors.back().get(),
        backend_options);
    if (!engine.ok()) std::abort();
    deployment.backend_engines.push_back(std::move(*engine));
    auto server = net::Server::Serve(deployment.backend_engines.back().get(),
                                     net::ServerOptions());
    if (!server.ok()) std::abort();
    deployment.backend_servers.push_back(std::move(*server));
    addresses.push_back(remote::BackendAddress{
        "127.0.0.1", deployment.backend_servers.back()->port()});
  }

  auto executor =
      exec::BatchExecutor::CreateDetached(McFactory(samples), shards);
  if (!executor.ok()) std::abort();
  deployment.coordinator_executor = std::move(*executor);
  // A chaos-tolerant policy: fail a dead backend fast (short connect
  // timeout, no retries against connection-refused) and let the breaker
  // absorb the rest of the outage.
  remote::RemoteEngineOptions options;
  options.policy.connect_timeout_seconds = 0.1;
  options.policy.max_retries = 1;
  options.policy.retry_base_seconds = 0.005;
  options.policy.breaker.failure_threshold = 2;
  options.policy.breaker.open_seconds = 1.0;
  auto coordinator = remote::RemoteShardedEngine::Open(
      manifest_path, std::move(addresses),
      deployment.coordinator_executor.get(), options);
  if (!coordinator.ok()) std::abort();
  deployment.coordinator = std::move(*coordinator);
  return deployment;
}

struct PhaseResult {
  double offered_qps = 0.0;
  double goodput_qps = 0.0;
  double p99_ms = 0.0;
  double degraded_fraction = 0.0;
  uint64_t complete = 0;
  uint64_t degraded = 0;
};

/// Open-loop run: query i is *scheduled* at i/rate; the single submitter
/// (the engine's contract) picks it up when free, and latency is measured
/// from the scheduled arrival — queue wait counts, which is what makes
/// the 2x overload point visibly saturate.
PhaseResult RunOpenLoop(remote::RemoteShardedEngine* coordinator,
                        const std::vector<core::PrqQuery>& queries,
                        double rate_qps) {
  PhaseResult phase;
  std::vector<double> latencies;
  latencies.reserve(queries.size());
  Stopwatch clock;
  for (size_t i = 0; i < queries.size(); ++i) {
    const double scheduled = static_cast<double>(i) / rate_qps;
    double now = clock.ElapsedSeconds();
    if (now < scheduled) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(scheduled - now));
    }
    auto result = coordinator->ExecuteBounded(queries[i], core::PrqOptions());
    if (!result.ok()) std::abort();
    now = clock.ElapsedSeconds();
    latencies.push_back((now - scheduled) * 1e3);
    if (result->complete()) {
      ++phase.complete;
    } else {
      ++phase.degraded;
    }
  }
  const double elapsed = clock.ElapsedSeconds();
  phase.offered_qps = rate_qps;
  phase.goodput_qps = static_cast<double>(phase.complete) / elapsed;
  phase.degraded_fraction = static_cast<double>(phase.degraded) /
                            static_cast<double>(queries.size());
  std::sort(latencies.begin(), latencies.end());
  const size_t rank = std::min(
      latencies.size() - 1, static_cast<size_t>(0.99 * latencies.size()));
  phase.p99_ms = latencies[rank];
  return phase;
}

void Run() {
  const uint64_t n = bench::EnvOr("GPRQ_REMOTE_BENCH_N", 200000);
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 4000);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 64);
  const double extent = 10000.0;
  const double delta = 150.0;
  const double theta = 0.05;

  const std::string dir = ScratchDir();
  const std::string dataset_path = dir + "/points.gprq";

  std::printf("Remote scaling: %llu clustered points, %llu queries per "
              "phase, %llu MC samples\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(samples));

  GenerateDataset(dataset_path, n, extent);
  auto dataset = index::MmapDataset::Open(dataset_path);
  if (!dataset.ok()) std::abort();

  // Fixed query workload, identical across K and across conditions.
  rng::Random random(77);
  const la::Matrix cov = workload::PaperCovariance2D(10.0);
  std::vector<core::PrqQuery> queries;
  for (uint64_t t = 0; t < trials; ++t) {
    auto g = core::GaussianDistribution::Create(
        dataset->PointVector(random.NextUint64(dataset->count())), cov);
    if (!g.ok()) std::abort();
    queries.push_back(core::PrqQuery{std::move(*g), delta, theta});
  }

  std::printf("%-4s%-10s%8s%14s%14s%10s%12s\n", "K", "condition", "rate",
              "offered", "goodput", "p99 ms", "degraded");
  bench::Rule(72);

  bench::JsonReport report;
  for (const size_t shards : ShardCounts()) {
    const std::string shard_dir = dir + "/k" + std::to_string(shards);
    ::mkdir(shard_dir.c_str(), 0755);
    shard::ShardBuildOptions build;
    build.num_shards = shards;
    auto manifest =
        shard::BuildShards(*dataset, dataset_path, shard_dir, build);
    if (!manifest.ok()) std::abort();
    const std::string manifest_path = shard_dir + "/shards.manifest";

    Deployment deployment = MakeDeployment(manifest_path, shards, samples);

    // Phase 1: closed-loop capacity (and connection warm-up).
    Stopwatch capacity_timer;
    uint64_t closed_complete = 0;
    for (const core::PrqQuery& query : queries) {
      auto result = deployment.coordinator->ExecuteBounded(
          query, core::PrqOptions());
      if (!result.ok()) std::abort();
      closed_complete += result->complete() ? 1 : 0;
    }
    const double capacity_qps =
        static_cast<double>(trials) / capacity_timer.ElapsedSeconds();
    if (closed_complete != trials) {
      std::fprintf(stderr, "healthy closed loop had %llu incomplete runs\n",
                   static_cast<unsigned long long>(trials - closed_complete));
      std::abort();
    }
    std::printf("%-4zu%-10s%8s%11.1f/s%11.1f/s%10s%12s\n", shards, "healthy",
                "closed", capacity_qps, capacity_qps, "-", "-");
    bench::JsonValue capacity = bench::JsonValue::Object();
    capacity.Set("k", bench::JsonValue(static_cast<double>(shards)));
    capacity.Set("condition", bench::JsonValue("healthy"));
    capacity.Set("phase", bench::JsonValue("closed_loop"));
    capacity.Set("capacity_qps", bench::JsonValue(capacity_qps));
    report.Add("remote_scaling", std::move(capacity));

    // Phases 2 and 3: open-loop sweep, healthy then one backend killed.
    for (const char* condition : {"healthy", "one_killed"}) {
      if (std::string(condition) == "one_killed") {
        deployment.backend_servers.front()->Shutdown();
      }
      for (const double multiplier : {0.5, 1.0, 2.0}) {
        const PhaseResult phase = RunOpenLoop(
            deployment.coordinator.get(), queries,
            std::max(capacity_qps * multiplier, 1e-3));
        std::printf("%-4zu%-10s%7.1fx%11.1f/s%11.1f/s%10.1f%11.1f%%\n",
                    shards, condition, multiplier, phase.offered_qps,
                    phase.goodput_qps, phase.p99_ms,
                    phase.degraded_fraction * 1e2);
        bench::JsonValue record = bench::JsonValue::Object();
        record.Set("k", bench::JsonValue(static_cast<double>(shards)));
        record.Set("condition", bench::JsonValue(condition));
        record.Set("phase", bench::JsonValue("open_loop"));
        record.Set("rate_multiplier", bench::JsonValue(multiplier));
        record.Set("offered_qps", bench::JsonValue(phase.offered_qps));
        record.Set("goodput_qps", bench::JsonValue(phase.goodput_qps));
        record.Set("p99_ms", bench::JsonValue(phase.p99_ms));
        record.Set("degraded_fraction",
                   bench::JsonValue(phase.degraded_fraction));
        record.Set("complete",
                   bench::JsonValue(static_cast<double>(phase.complete)));
        record.Set("degraded",
                   bench::JsonValue(static_cast<double>(phase.degraded)));
        report.Add("remote_scaling", std::move(record));
      }
    }
  }

  std::printf("\nexpected shape: goodput tracks the offered rate until "
              "capacity, p99 inflates at 2x, and killing one backend costs "
              "only the degraded fraction.\n");

  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path = (json_env != nullptr && *json_env != '\0')
                                    ? json_env
                                    : "BENCH_remote.json";
  if (report.WriteFile(json_path)) {
    std::printf("remote scaling report written to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
