// Micro-benchmarks (google-benchmark) for the R*-tree substrate: insertion,
// STR bulk loading, window queries, ball queries and k-NN, across data
// sizes. Not a paper experiment; establishes that Phase 1 is cheap relative
// to Phase 3 (the paper: "the cost of Phase 1 is negligible").

#include <benchmark/benchmark.h>

#include "index/rstar_tree.h"
#include "index/str_bulk_load.h"
#include "rng/random.h"
#include "workload/generators.h"

namespace gprq {
namespace {

workload::Dataset MakeData(size_t n) {
  const geom::Rect extent(la::Vector{0.0, 0.0}, la::Vector{1000.0, 1000.0});
  return workload::GenerateClustered(n, extent, 16, 30.0, n);
}

void BM_RStarInsert(benchmark::State& state) {
  const auto dataset = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    index::RStarTree tree(2);
    for (size_t i = 0; i < dataset.size(); ++i) {
      benchmark::DoNotOptimize(tree.Insert(dataset.points[i],
                                           static_cast<index::ObjectId>(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_StrBulkLoad(benchmark::State& state) {
  const auto dataset = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = index::StrBulkLoader::Load(2, dataset.points);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrBulkLoad)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_WindowQuery(benchmark::State& state) {
  const auto dataset = MakeData(50000);
  auto tree = index::StrBulkLoader::Load(2, dataset.points);
  const double half = static_cast<double>(state.range(0));
  rng::Random random(5);
  std::vector<index::ObjectId> out;
  for (auto _ : state) {
    la::Vector center{random.NextDouble(0.0, 1000.0),
                      random.NextDouble(0.0, 1000.0)};
    out.clear();
    tree->RangeQuery(geom::Rect::CenteredUniform(center, half), &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WindowQuery)->Arg(10)->Arg(50)->Arg(200);

void BM_BallQuery(benchmark::State& state) {
  const auto dataset = MakeData(50000);
  auto tree = index::StrBulkLoader::Load(2, dataset.points);
  const double radius = static_cast<double>(state.range(0));
  rng::Random random(6);
  std::vector<index::ObjectId> out;
  for (auto _ : state) {
    la::Vector center{random.NextDouble(0.0, 1000.0),
                      random.NextDouble(0.0, 1000.0)};
    out.clear();
    tree->BallQuery(center, radius, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BallQuery)->Arg(25)->Arg(100);

void BM_KnnQuery(benchmark::State& state) {
  const auto dataset = MakeData(50000);
  auto tree = index::StrBulkLoader::Load(2, dataset.points);
  const size_t k = static_cast<size_t>(state.range(0));
  rng::Random random(7);
  std::vector<std::pair<double, index::ObjectId>> out;
  for (auto _ : state) {
    la::Vector center{random.NextDouble(0.0, 1000.0),
                      random.NextDouble(0.0, 1000.0)};
    tree->KnnQuery(center, k, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_KnnQuery)->Arg(1)->Arg(20)->Arg(100);

void BM_KnnQuery9D(benchmark::State& state) {
  const geom::Rect extent(la::Vector(9, 0.0), la::Vector(9, 10.0));
  const auto dataset = workload::GenerateClustered(20000, extent, 30, 0.8, 9);
  auto tree = index::StrBulkLoader::Load(9, dataset.points);
  rng::Random random(8);
  std::vector<std::pair<double, index::ObjectId>> out;
  for (auto _ : state) {
    const la::Vector& center =
        dataset.points[random.NextUint64(dataset.size())];
    tree->KnnQuery(center, 20, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_KnnQuery9D);

}  // namespace
}  // namespace gprq

BENCHMARK_MAIN();
