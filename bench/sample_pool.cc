// Phase-3 throughput: per-candidate Monte Carlo (the paper's approach —
// every candidate redraws the full sample budget) vs the shared per-query
// SamplePool (draw once, count per candidate) vs the pool with block-wise
// Wilson early termination. Emits BENCH_phase3.json so the perf trajectory
// is machine-trackable across PRs.
//
// Env overrides: GPRQ_MC_SAMPLES (default 100000), GPRQ_BENCH_CANDIDATES
// (default 100), GPRQ_TRIALS (default 3), GPRQ_BENCH_JSON (output path,
// default BENCH_phase3.json).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mc/monte_carlo.h"
#include "mc/sample_pool.h"
#include "rng/random.h"
#include "workload/generators.h"

namespace gprq {
namespace {

struct Mode {
  const char* name;
  double seconds = 0.0;
  double samples_per_candidate = 0.0;
  size_t qualifying = 0;
};

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 100000);
  const uint64_t candidates = bench::EnvOr("GPRQ_BENCH_CANDIDATES", 100);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 3);
  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path =
      (json_env != nullptr && *json_env != '\0') ? json_env
                                                 : "BENCH_phase3.json";
  const double delta = 25.0;
  const double theta = 0.01;

  std::printf("Phase-3 sampling: per-candidate vs shared pool vs "
              "pool + early stop\n");
  std::printf("(d=2, candidates=%llu, n=%llu samples, delta=%.0f, "
              "theta=%.2f, trials=%llu)\n\n",
              static_cast<unsigned long long>(candidates),
              static_cast<unsigned long long>(samples), delta, theta,
              static_cast<unsigned long long>(trials));

  auto g = core::GaussianDistribution::Create(
      la::Vector{500.0, 500.0}, workload::PaperCovariance2D(10.0));
  if (!g.ok()) std::abort();

  // Candidates spread from inside the δ-ball to well past it, like the
  // survivor set Phase 2 hands to Phase 3 (a mix of clear accepts, clear
  // rejects, and a boundary band).
  rng::Random placement(7);
  std::vector<la::Vector> objects;
  for (uint64_t i = 0; i < candidates; ++i) {
    const double radius = placement.NextDouble(0.0, 3.0 * delta);
    const double angle = placement.NextDouble(0.0, 6.283185307179586);
    objects.push_back(la::Vector{500.0 + radius * std::cos(angle),
                                 500.0 + radius * std::sin(angle)});
  }

  Mode per_candidate{"per-candidate"};
  Mode pooled{"pooled"};
  Mode pooled_early{"pooled+early-stop"};

  for (uint64_t t = 0; t < trials; ++t) {
    // Per-candidate: the paper's cost model — each candidate redraws the
    // full budget (candidates × n O(d²) transforms per query).
    {
      mc::MonteCarloEvaluator evaluator(
          {.samples = samples, .seed = 100 + t, .dim = 2});
      size_t qualifying = 0;
      Stopwatch timer;
      for (const auto& o : objects) {
        qualifying +=
            evaluator.QualificationDecision(*g, o, delta, theta) ? 1 : 0;
      }
      per_candidate.seconds += timer.ElapsedSeconds();
      per_candidate.samples_per_candidate += static_cast<double>(samples);
      per_candidate.qualifying = qualifying;
    }
    // Pooled: draw once per query, full-pool count per candidate.
    {
      rng::Random random(100 + t);
      size_t qualifying = 0;
      Stopwatch timer;
      const mc::SamplePool pool(*g, samples, random);
      const double delta_sq = delta * delta;
      for (const auto& o : objects) {
        const uint64_t hits = pool.CountWithin(o, delta_sq, 0, pool.size());
        qualifying += static_cast<double>(hits) >=
                              theta * static_cast<double>(pool.size())
                          ? 1
                          : 0;
      }
      pooled.seconds += timer.ElapsedSeconds();
      pooled.samples_per_candidate += static_cast<double>(samples);
      pooled.qualifying = qualifying;
    }
    // Pooled + early stop: draw once, stop each candidate at CI separation.
    {
      rng::Random random(100 + t);
      size_t qualifying = 0;
      uint64_t used = 0;
      Stopwatch timer;
      const mc::SamplePool pool(*g, samples, random);
      for (const auto& o : objects) {
        const auto decision = pool.Decide(o, delta, theta);
        qualifying += decision.qualifies ? 1 : 0;
        used += decision.samples_used;
      }
      pooled_early.seconds += timer.ElapsedSeconds();
      pooled_early.samples_per_candidate +=
          static_cast<double>(used) / static_cast<double>(candidates);
      pooled_early.qualifying = qualifying;
    }
  }

  const double tf = static_cast<double>(trials);
  const double base_throughput =
      static_cast<double>(candidates) * tf / per_candidate.seconds;
  bench::JsonReport report;
  std::printf("%-22s%14s%18s%14s%12s\n", "phase-3 path", "phase3 (ms)",
              "samples/cand", "cand/sec", "speedup");
  bench::Rule(80);
  for (const Mode* mode : {&per_candidate, &pooled, &pooled_early}) {
    const double throughput =
        static_cast<double>(candidates) * tf / mode->seconds;
    const double speedup = throughput / base_throughput;
    std::printf("%-22s%14.2f%18.0f%14.0f%11.1fx\n", mode->name,
                mode->seconds * 1e3 / tf, mode->samples_per_candidate / tf,
                throughput, speedup);
    report.Add(mode->name,
               {{"dim", 2.0},
                {"candidates", static_cast<double>(candidates)},
                {"samples", static_cast<double>(samples)},
                {"phase3_ms_per_query", mode->seconds * 1e3 / tf},
                {"samples_per_candidate", mode->samples_per_candidate / tf},
                {"candidates_per_sec", throughput},
                {"speedup_vs_per_candidate", speedup},
                {"qualifying", static_cast<double>(mode->qualifying)}});
  }

  std::printf("\nanswer agreement: per-candidate=%zu pooled=%zu "
              "pooled+early=%zu of %llu\n",
              per_candidate.qualifying, pooled.qualifying,
              pooled_early.qualifying,
              static_cast<unsigned long long>(candidates));
  if (report.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::printf("\nexpected shape: pooled >= 5x per-candidate (sampling "
              "amortized from candidates*n to n transforms), early-stop "
              "several-fold above that.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
