// Phase-3 throughput: per-candidate Monte Carlo (the paper's approach —
// every candidate redraws the full sample budget) vs the shared per-query
// SamplePool (draw once, count per candidate) vs the pool with block-wise
// Wilson early termination — plus the kernel-level roofline (scalar
// reference vs the dispatched SIMD kernel, plain and fused
// transform-and-count). Emits BENCH_phase3.json so the perf trajectory is
// machine-trackable across PRs.
//
// Env overrides: GPRQ_MC_SAMPLES (default 100000), GPRQ_BENCH_CANDIDATES
// (default 100), GPRQ_TRIALS (default 3), GPRQ_BENCH_JSON (output path,
// default BENCH_phase3.json).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mc/monte_carlo.h"
#include "mc/sample_pool.h"
#include "mc/simd/kernels.h"
#include "rng/random.h"
#include "workload/generators.h"

namespace gprq {
namespace {

// Kernel-level roofline: raw count throughput of the scalar reference vs
// the dispatched SIMD kernel (and the fused transform-and-count variant)
// over resident block-sized slices — the Phase-3 inner loop with everything
// but the arithmetic stripped away. Emitted into the same JSON so the
// scalar-vs-dispatched speedup is machine-trackable per host.
void RunKernelBench(bench::JsonReport& report, uint64_t trials) {
  using mc::simd::KernelKind;
  const uint64_t n = 1u << 18;  // samples per measured sweep
  std::printf("\nkernel-level count throughput (n=%llu per sweep)\n",
              static_cast<unsigned long long>(n));
  std::printf("%-26s%10s%18s%12s\n", "kernel", "dim", "samples/sec",
              "speedup");
  bench::Rule(66);

  for (const size_t dim : {size_t{2}, size_t{9}}) {
    rng::Random random(41 + dim);
    std::vector<double> data(dim * n);
    for (double& v : data) v = random.NextDouble(-3.0, 3.0);
    std::vector<double> object(dim, 0.25);
    std::vector<double> chol(dim * dim, 0.0);
    for (size_t a = 0; a < dim; ++a) {
      for (size_t j = 0; j <= a; ++j) chol[a * dim + j] = (a == j) ? 1.0 : 0.1;
    }
    std::vector<double> mean(dim, 0.0);
    const double delta_sq = 2.0 * static_cast<double>(dim);

    // Sweep the full data set blockwise, like SamplePool::CountWithin does;
    // trial 0 is an untimed warm-up. The kernels are called through opaque
    // function pointers, so the compiler cannot elide the sweeps; `sink`
    // keeps the accumulation honest.
    uint64_t sink = 0;
    const auto time_count = [&](mc::simd::CountFn fn) {
      double seconds = 0.0;
      for (uint64_t t = 0; t <= trials; ++t) {
        Stopwatch timer;
        for (uint64_t b = 0; b < n; b += mc::simd::kKernelBlock) {
          const size_t len = static_cast<size_t>(
              std::min<uint64_t>(mc::simd::kKernelBlock, n - b));
          sink += fn(data.data() + b, n, dim, object.data(), delta_sq, len);
        }
        if (t > 0) seconds += timer.ElapsedSeconds();
      }
      return static_cast<double>(n * trials) / seconds;
    };
    const auto time_fused = [&](mc::simd::FusedCountFn fn) {
      double seconds = 0.0;
      for (uint64_t t = 0; t <= trials; ++t) {
        Stopwatch timer;
        for (uint64_t b = 0; b < n; b += mc::simd::kKernelBlock) {
          const size_t len = static_cast<size_t>(
              std::min<uint64_t>(mc::simd::kKernelBlock, n - b));
          sink += fn(data.data() + b, n, dim, chol.data(), mean.data(),
                     object.data(), delta_sq, len);
        }
        if (t > 0) seconds += timer.ElapsedSeconds();
      }
      return static_cast<double>(n * trials) / seconds;
    };

    double scalar_rate = 0.0, fused_scalar_rate = 0.0;
    for (const KernelKind kind : {KernelKind::kScalar, mc::simd::DispatchedKind()}) {
      const double count_rate = time_count(mc::simd::CountKernel(kind));
      const double fused_rate = time_fused(mc::simd::FusedKernel(kind));
      if (kind == KernelKind::kScalar) {
        scalar_rate = count_rate;
        fused_scalar_rate = fused_rate;
      }
      (void)sink;
      const std::string label =
          std::string("kernel-d") + std::to_string(dim) + "-" +
          mc::simd::KernelName(kind);
      std::printf("%-26s%10zu%18.3g%11.1fx\n", label.c_str(), dim, count_rate,
                  count_rate / scalar_rate);
      report.Add(label, {{"dim", static_cast<double>(dim)},
                         {"samples_per_sec", count_rate},
                         {"speedup_vs_scalar", count_rate / scalar_rate}});
      const std::string fused_label =
          std::string("kernel-d") + std::to_string(dim) + "-fused-" +
          mc::simd::KernelName(kind);
      std::printf("%-26s%10zu%18.3g%11.1fx\n", fused_label.c_str(), dim,
                  fused_rate, fused_rate / fused_scalar_rate);
      report.Add(fused_label,
                 {{"dim", static_cast<double>(dim)},
                  {"samples_per_sec", fused_rate},
                  {"speedup_vs_scalar", fused_rate / fused_scalar_rate}});
      if (kind == mc::simd::DispatchedKind() && kind == KernelKind::kScalar) {
        break;  // scalar is the dispatched kernel; nothing else to measure
      }
    }
  }
}

struct Mode {
  const char* name;
  double seconds = 0.0;
  double samples_per_candidate = 0.0;
  size_t qualifying = 0;
};

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 100000);
  const uint64_t candidates = bench::EnvOr("GPRQ_BENCH_CANDIDATES", 100);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 3);
  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path =
      (json_env != nullptr && *json_env != '\0') ? json_env
                                                 : "BENCH_phase3.json";
  const double delta = 25.0;
  const double theta = 0.01;

  std::printf("Phase-3 sampling: per-candidate vs shared pool vs "
              "pool + early stop\n");
  std::printf("(d=2, candidates=%llu, n=%llu samples, delta=%.0f, "
              "theta=%.2f, trials=%llu)\n\n",
              static_cast<unsigned long long>(candidates),
              static_cast<unsigned long long>(samples), delta, theta,
              static_cast<unsigned long long>(trials));

  auto g = core::GaussianDistribution::Create(
      la::Vector{500.0, 500.0}, workload::PaperCovariance2D(10.0));
  if (!g.ok()) std::abort();

  // Candidates spread from inside the δ-ball to well past it, like the
  // survivor set Phase 2 hands to Phase 3 (a mix of clear accepts, clear
  // rejects, and a boundary band).
  rng::Random placement(7);
  std::vector<la::Vector> objects;
  for (uint64_t i = 0; i < candidates; ++i) {
    const double radius = placement.NextDouble(0.0, 3.0 * delta);
    const double angle = placement.NextDouble(0.0, 6.283185307179586);
    objects.push_back(la::Vector{500.0 + radius * std::cos(angle),
                                 500.0 + radius * std::sin(angle)});
  }

  Mode per_candidate{"per-candidate"};
  Mode pooled{"pooled"};
  Mode pooled_early{"pooled+early-stop"};

  for (uint64_t t = 0; t < trials; ++t) {
    // Per-candidate: the paper's cost model — each candidate redraws the
    // full budget (candidates × n O(d²) transforms per query).
    {
      mc::MonteCarloEvaluator evaluator(
          {.samples = samples, .seed = 100 + t, .dim = 2});
      size_t qualifying = 0;
      Stopwatch timer;
      for (const auto& o : objects) {
        qualifying +=
            evaluator.QualificationDecision(*g, o, delta, theta) ? 1 : 0;
      }
      per_candidate.seconds += timer.ElapsedSeconds();
      per_candidate.samples_per_candidate += static_cast<double>(samples);
      per_candidate.qualifying = qualifying;
    }
    // Pooled: draw once per query, full-pool count per candidate.
    {
      rng::Random random(100 + t);
      size_t qualifying = 0;
      Stopwatch timer;
      const mc::SamplePool pool(*g, samples, random);
      const double delta_sq = delta * delta;
      for (const auto& o : objects) {
        const uint64_t hits = pool.CountWithin(o, delta_sq, 0, pool.size());
        qualifying += static_cast<double>(hits) >=
                              theta * static_cast<double>(pool.size())
                          ? 1
                          : 0;
      }
      pooled.seconds += timer.ElapsedSeconds();
      pooled.samples_per_candidate += static_cast<double>(samples);
      pooled.qualifying = qualifying;
    }
    // Pooled + early stop: draw once, stop each candidate at CI separation.
    {
      rng::Random random(100 + t);
      size_t qualifying = 0;
      uint64_t used = 0;
      Stopwatch timer;
      const mc::SamplePool pool(*g, samples, random);
      for (const auto& o : objects) {
        const auto decision = pool.Decide(o, delta, theta);
        qualifying += decision.qualifies ? 1 : 0;
        used += decision.samples_used;
      }
      pooled_early.seconds += timer.ElapsedSeconds();
      pooled_early.samples_per_candidate +=
          static_cast<double>(used) / static_cast<double>(candidates);
      pooled_early.qualifying = qualifying;
    }
  }

  const double tf = static_cast<double>(trials);
  const double base_throughput =
      static_cast<double>(candidates) * tf / per_candidate.seconds;
  bench::JsonReport report;
  std::printf("%-22s%14s%18s%14s%12s\n", "phase-3 path", "phase3 (ms)",
              "samples/cand", "cand/sec", "speedup");
  bench::Rule(80);
  for (const Mode* mode : {&per_candidate, &pooled, &pooled_early}) {
    const double throughput =
        static_cast<double>(candidates) * tf / mode->seconds;
    const double speedup = throughput / base_throughput;
    std::printf("%-22s%14.2f%18.0f%14.0f%11.1fx\n", mode->name,
                mode->seconds * 1e3 / tf, mode->samples_per_candidate / tf,
                throughput, speedup);
    report.Add(mode->name,
               {{"dim", 2.0},
                {"candidates", static_cast<double>(candidates)},
                {"samples", static_cast<double>(samples)},
                {"phase3_ms_per_query", mode->seconds * 1e3 / tf},
                {"samples_per_candidate", mode->samples_per_candidate / tf},
                {"candidates_per_sec", throughput},
                {"speedup_vs_per_candidate", speedup},
                {"qualifying", static_cast<double>(mode->qualifying)}});
  }

  std::printf("\nanswer agreement: per-candidate=%zu pooled=%zu "
              "pooled+early=%zu of %llu\n",
              per_candidate.qualifying, pooled.qualifying,
              pooled_early.qualifying,
              static_cast<unsigned long long>(candidates));
  RunKernelBench(report, trials);
  if (report.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::printf("\nexpected shape: pooled >= 5x per-candidate (sampling "
              "amortized from candidates*n to n transforms), early-stop "
              "several-fold above that.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
