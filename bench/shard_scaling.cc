// Scatter-gather shard scaling: builds a sharded deployment of a large
// clustered dataset at K ∈ {1, 2, 4, 8}, streams local queries through the
// ShardedPrqEngine, and reports per-K latency, speedup over K=1 and the
// MBR-routing selectivity (routed shards / total shards). Writes
// BENCH_shard.json (GPRQ_BENCH_JSON overrides).
//
// The dataset is generated straight to the binary .gprq format and sharded
// out-of-core, so the bench exercises the same path a 10M-point deployment
// would; scale with:
//
//   GPRQ_SHARD_BENCH_N    points to generate           (default 1000000)
//   GPRQ_MC_SAMPLES       MC samples per integration   (default 20000)
//   GPRQ_TRIALS           queries per shard count      (default 8)
//   GPRQ_SHARD_KS         comma-separated shard counts (default 1,2,4,8;
//                         the first entry is the speedup baseline)
//   GPRQ_SHARD_BENCH_DIR  scratch directory            (default mkdtemp)
//   GPRQ_SHARD_ASSERT_ROUTING=1  fail unless routing skipped shards at the
//                                largest K (the CI smoke contract)
//
// Expected shape: scatter time shrinks as K grows (smaller trees, parallel
// scan) while Phase 3 stays flat (same merged survivors), and the routed
// fraction drops well below 1 once K > 1 — locality is what sharding buys.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/batch_executor.h"
#include "index/dataset_file.h"
#include "mc/monte_carlo.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "shard/shard_builder.h"
#include "shard/sharded_engine.h"

namespace gprq {
namespace {

core::PrqEngine::EvaluatorFactory McFactory(uint64_t samples) {
  return [samples](size_t worker) {
    return std::make_unique<mc::MonteCarloEvaluator>(
        mc::MonteCarloOptions{.samples = samples, .seed = 100 + worker});
  };
}

std::vector<size_t> ShardCounts() {
  const char* env = std::getenv("GPRQ_SHARD_KS");
  if (env == nullptr || *env == '\0') return {1, 2, 4, 8};
  std::vector<size_t> counts;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const unsigned long k = std::strtoul(p, &end, 10);
    if (end == p) break;
    if (k > 0) counts.push_back(static_cast<size_t>(k));
    p = (*end == ',') ? end + 1 : end;
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

std::string ScratchDir() {
  const char* env = std::getenv("GPRQ_SHARD_BENCH_DIR");
  if (env != nullptr && *env != '\0') {
    ::mkdir(env, 0755);
    return env;
  }
  char tmpl[] = "/tmp/gprq_shard_bench.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) std::abort();
  return dir;
}

/// Streams a clustered 2-D dataset straight to `path` (O(dim) memory, the
/// gprq_convert "generate --kind clustered" construction).
void GenerateDataset(const std::string& path, uint64_t n, double extent) {
  auto writer = index::DatasetFileWriter::Create(path, 2);
  if (!writer.ok()) std::abort();
  rng::Random random(2009);
  constexpr size_t kClusters = 64;
  std::vector<double> centers(kClusters * 2);
  for (double& c : centers) c = random.NextDouble(0.0, extent);
  const double stddev = extent / 25.0;
  double row[2];
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t c = random.NextUint64(kClusters);
    for (size_t a = 0; a < 2; ++a) {
      const double v = random.NextGaussian(centers[c * 2 + a], stddev);
      row[a] = std::min(std::max(v, 0.0), extent);
    }
    if (!writer->Append(row).ok()) std::abort();
  }
  if (!writer->Finish().ok()) std::abort();
}

void Run() {
  const uint64_t n = bench::EnvOr("GPRQ_SHARD_BENCH_N", 1000000);
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 20000);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 8);
  const bool assert_routing =
      bench::EnvOr("GPRQ_SHARD_ASSERT_ROUTING", 0) != 0;
  const double extent = 10000.0;
  const double delta = 150.0;
  const double theta = 0.05;

  const std::string dir = ScratchDir();
  const std::string dataset_path = dir + "/points.gprq";

  std::printf("Shard scaling: %llu clustered points, %llu queries per K, "
              "%llu MC samples (%u hardware threads)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(samples),
              std::thread::hardware_concurrency());

  Stopwatch generate_timer;
  GenerateDataset(dataset_path, n, extent);
  auto dataset = index::MmapDataset::Open(dataset_path);
  if (!dataset.ok()) std::abort();
  std::printf("generated %s in %.1f s\n\n", dataset_path.c_str(),
              generate_timer.ElapsedSeconds());

  // Fixed query workload: centers on dataset rows (local queries — the
  // case MBR routing exists for), identical across every shard count.
  rng::Random random(77);
  std::vector<la::Vector> query_centers;
  for (uint64_t t = 0; t < trials; ++t) {
    query_centers.push_back(
        dataset->PointVector(random.NextUint64(dataset->count())));
  }
  const la::Matrix cov = workload::PaperCovariance2D(10.0);

  const size_t threads =
      std::min<size_t>(8, std::max(1u, std::thread::hardware_concurrency()));

  std::printf("%-6s%14s%14s%14s%10s%16s\n", "K", "build (s)", "query (ms)",
              "scatter (ms)", "speedup", "routed/total");
  bench::Rule(74);

  bench::JsonReport report;
  double baseline_ms = 0.0;
  double last_routed_fraction = 1.0;
  for (const size_t shards : ShardCounts()) {
    const std::string shard_dir = dir + "/k" + std::to_string(shards);
    ::mkdir(shard_dir.c_str(), 0755);

    Stopwatch build_timer;
    shard::ShardBuildOptions build;
    build.num_shards = shards;
    auto manifest = shard::BuildShards(*dataset, dataset_path, shard_dir,
                                       build);
    if (!manifest.ok()) std::abort();
    const double build_seconds = build_timer.ElapsedSeconds();

    auto executor = exec::BatchExecutor::CreateDetached(McFactory(samples),
                                                        threads);
    if (!executor.ok()) std::abort();
    auto engine = shard::ShardedPrqEngine::Open(
        shard_dir + "/shards.manifest", executor->get());
    if (!engine.ok()) std::abort();

    double query_ms = 0.0, scatter_ms = 0.0;
    uint64_t routed = 0, considered = 0, results = 0;
    for (const la::Vector& center : query_centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      if (!g.ok()) std::abort();
      const core::PrqQuery query{std::move(*g), delta, theta};
      core::PrqStats stats;
      obs::QueryTrace trace;
      Stopwatch query_timer;
      auto result =
          (*engine)->ExecuteBounded(query, core::PrqOptions(), &stats,
                                    &trace);
      if (!result.ok() || !result->status.ok()) std::abort();
      query_ms += query_timer.ElapsedSeconds() * 1e3;
      scatter_ms += stats.phase1_seconds * 1e3;
      routed += trace.shards_routed;
      considered += trace.shards_total;
      results += result->ids.size();
    }
    query_ms /= trials;
    scatter_ms /= trials;
    const double routed_fraction =
        static_cast<double>(routed) / static_cast<double>(considered);
    if (baseline_ms == 0.0) baseline_ms = query_ms;  // first K = baseline
    const double speedup = baseline_ms / std::max(query_ms, 1e-9);
    last_routed_fraction = routed_fraction;

    std::printf("%-6zu%14.1f%14.2f%14.2f%9.2fx%11llu/%llu\n", shards,
                build_seconds, query_ms, scatter_ms, speedup,
                static_cast<unsigned long long>(routed),
                static_cast<unsigned long long>(considered));

    bench::JsonValue record = bench::JsonValue::Object();
    record.Set("k", bench::JsonValue(static_cast<double>(shards)));
    record.Set("points", bench::JsonValue(static_cast<double>(n)));
    record.Set("threads", bench::JsonValue(static_cast<double>(threads)));
    record.Set("build_seconds", bench::JsonValue(build_seconds));
    record.Set("query_ms", bench::JsonValue(query_ms));
    record.Set("scatter_ms", bench::JsonValue(scatter_ms));
    record.Set("speedup_vs_k1", bench::JsonValue(speedup));
    record.Set("routed_shards", bench::JsonValue(static_cast<double>(routed)));
    record.Set("considered_shards",
               bench::JsonValue(static_cast<double>(considered)));
    record.Set("routed_fraction", bench::JsonValue(routed_fraction));
    record.Set("avg_results",
               bench::JsonValue(static_cast<double>(results) /
                                static_cast<double>(trials)));
    report.Add("shard_scaling", std::move(record));
  }

  std::printf("\nexpected shape: routed/total < 1 for K > 1 (MBR routing "
              "skips shards) and scatter time dropping with K.\n");

  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path = (json_env != nullptr && *json_env != '\0')
                                    ? json_env
                                    : "BENCH_shard.json";
  if (report.WriteFile(json_path)) {
    std::printf("shard scaling report written to %s\n", json_path.c_str());
  }

  if (assert_routing && last_routed_fraction >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: routed fraction %.3f at the largest K — MBR routing "
                 "did not skip any shard\n",
                 last_routed_fraction);
    std::exit(1);
  }
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
