// Reproduces the first bullet of paper Section V-B.3: sweeping the distance
// threshold δ. The paper's findings: the overall trend is unchanged; for a
// small δ the combination is relatively more effective; for large δ the RR
// and BF filtering regions nearly coincide and their difference shrinks.
// We report integration candidates per combination for each δ.

#include <cstdio>

#include "bench/bench_util.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double theta = 0.01;
  const double gamma = 10.0;

  std::printf("Section V-B.3 sweep: distance threshold delta "
              "(gamma=%.0f, theta=%.2f, %llu trials)\n\n",
              gamma, theta, static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();
  mc::ImhofEvaluator exact;

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }

  std::printf("%-8s", "delta");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("%8s%12s%12s\n", "ANS", "RR/ALL", "RR/BF");
  bench::Rule(8 + 8 * 7 + 24);

  const la::Matrix cov = workload::PaperCovariance2D(gamma);
  for (double delta : {5.0, 10.0, 25.0, 50.0, 100.0}) {
    std::printf("%-8.0f", delta);
    double per_combo[6] = {0.0};
    double answers = 0.0;
    int idx = 0;
    for (auto mask : bench::PaperCombos()) {
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        core::PrqStats stats;
        auto result = engine.Execute(query, options, &exact, &stats);
        if (!result.ok()) std::abort();
        per_combo[idx] += static_cast<double>(stats.integration_candidates);
        if (mask == core::kStrategyAll) {
          answers += static_cast<double>(stats.result_size);
        }
      }
      per_combo[idx] /= static_cast<double>(trials);
      std::printf("%8.0f", per_combo[idx]);
      ++idx;
    }
    std::printf("%8.0f%12.2f%12.2f\n", answers / static_cast<double>(trials),
                per_combo[0] / std::max(per_combo[5], 1.0),
                per_combo[0] / std::max(per_combo[1], 1.0));
  }
  std::printf("\nexpected shape: the *outer* RR and BF regions converge as "
              "delta grows (both approach a delta-ball), as the paper "
              "notes. In this implementation BF additionally auto-accepts "
              "its inner hole, whose area grows with delta, so BF's "
              "integration count pulls ahead of RR at large delta — the "
              "paper's catalog-based BF had a weaker inner hole and the "
              "two stayed close.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
