// Reproduces the third bullet of paper Section V-B.3: sweeping the shape of
// the covariance Σ. The paper's findings: when Σ is near the unit matrix
// (spherical isosurface) the three strategies barely differ; the thinner
// the ellipse, the bigger the spread between them and the more their
// combination helps. We sweep the major:minor axis ratio at constant
// |Σ| (constant uncertainty volume).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double delta = 25.0;
  const double theta = 0.01;
  // Match the default experiment's uncertainty volume: the paper's Σ at
  // γ=10 has det = 900, i.e. s_minor·s_major = 30.
  const double det_target = 900.0;

  std::printf("Section V-B.3 sweep: covariance shape (axis ratio at "
              "constant |Sigma|=%.0f; delta=%.0f, theta=%.2f, %llu "
              "trials)\n\n",
              det_target, delta, theta,
              static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();
  mc::ImhofEvaluator exact;

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }

  std::printf("%-8s", "ratio");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("%8s%14s\n", "ANS", "max/min combo");
  bench::Rule(8 + 8 * 7 + 14);

  const double angle = M_PI / 6.0;  // the paper's 30° tilt
  const double c = std::cos(angle), s = std::sin(angle);
  for (double ratio : {1.0, 2.0, 3.0, 6.0, 12.0}) {
    // s_major/s_minor = ratio with s_major*s_minor = sqrt(det).
    const double s_minor = std::sqrt(std::sqrt(det_target) / ratio);
    const double s_major = s_minor * ratio;
    const la::Matrix axis_cov =
        la::Matrix::Diagonal(la::Vector{s_major * s_major,
                                        s_minor * s_minor});
    const la::Matrix rot{{c, -s}, {s, c}};
    const la::Matrix cov = rot * axis_cov * rot.Transposed();

    std::printf("%-8.0f", ratio);
    double best = 1e18, worst = 0.0, answers = 0.0;
    for (auto mask : bench::PaperCombos()) {
      double candidates = 0.0;
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        core::PrqStats stats;
        auto result = engine.Execute(query, options, &exact, &stats);
        if (!result.ok()) std::abort();
        candidates += static_cast<double>(stats.integration_candidates);
        if (mask == core::kStrategyAll) {
          answers += static_cast<double>(stats.result_size);
        }
      }
      candidates /= static_cast<double>(trials);
      best = std::min(best, candidates);
      worst = std::max(worst, candidates);
      std::printf("%8.0f", candidates);
    }
    std::printf("%8.0f%14.2f\n", answers / static_cast<double>(trials),
                worst / std::max(best, 1.0));
  }
  std::printf("\nexpected shape: at ratio 1 the three *regions* coincide "
              "(RR box ~ OR box ~ BF outer ball) and, as the paper notes, "
              "BF is then the best method because its inner radius meets "
              "its outer radius and answers need no integration at all; "
              "as the ratio grows, BF and RR diverge and combining "
              "strategies (ALL) pays off increasingly.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
