// Reproduces the second bullet of paper Section V-B.3: sweeping the
// probability threshold θ. The paper's finding: changing θ barely moves
// the processing cost — e.g. going from θ = 0.1 to θ = 0.01 does not
// increase it, because the Gaussian's exponential tails make the filtering
// regions almost identical. We report candidates and the θ-region radius.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/radius_catalog.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double delta = 25.0;
  const double gamma = 10.0;

  std::printf("Section V-B.3 sweep: probability threshold theta "
              "(gamma=%.0f, delta=%.0f, %llu trials)\n\n",
              gamma, delta, static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();
  mc::ImhofEvaluator exact;

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }

  std::printf("%-10s%10s", "theta", "r_theta");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("%8s\n", "ANS");
  bench::Rule(20 + 8 * 7);

  const la::Matrix cov = workload::PaperCovariance2D(gamma);
  for (double theta : {0.001, 0.01, 0.05, 0.1, 0.3}) {
    std::printf("%-10.3f%10.3f", theta,
                core::RadiusCatalog::ExactRadius(2, theta));
    double answers = 0.0;
    for (auto mask : bench::PaperCombos()) {
      double candidates = 0.0;
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        core::PrqStats stats;
        auto result = engine.Execute(query, options, &exact, &stats);
        if (!result.ok()) std::abort();
        candidates += static_cast<double>(stats.integration_candidates);
        if (mask == core::kStrategyAll) {
          answers += static_cast<double>(stats.result_size);
        }
      }
      std::printf("%8.0f", candidates / static_cast<double>(trials));
    }
    std::printf("%8.0f\n", answers / static_cast<double>(trials));
  }
  std::printf("\nexpected shape: candidate counts move only mildly with "
              "theta (r_theta grows logarithmically as theta shrinks) while "
              "the answer size changes a lot.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
