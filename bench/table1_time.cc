// Reproduces paper Table I: query processing time (seconds) for the six
// strategy combinations at γ ∈ {1, 10, 100}, on the (synthetic) TIGER Long
// Beach dataset with δ = 25, θ = 0.01 and the paper's covariance shape
// Σ = γ·[[7, 2√3], [2√3, 3]]. Phase 3 uses the paper's Monte-Carlo
// importance sampler.
//
// The paper averaged five query trials with the query center drawn from the
// dataset; we do the same (deterministic seed). Absolute times differ from
// the paper's 2006 hardware and sample budget; the comparison targets are
// the *ratios* across strategy columns and γ rows.
//
// Queries run through a persistent exec::BatchExecutor (the serving path):
// one pool and one Monte-Carlo evaluator per worker live for the whole
// table, so no per-query thread or evaluator setup pollutes the timings.
// GPRQ_THREADS sets the Phase-3 worker count (default 1, the paper's
// sequential setting).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "exec/batch_executor.h"
#include "mc/monte_carlo.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

// Paper Table I reference values (seconds, 2006 hardware, 100k samples).
constexpr double kPaperSeconds[3][6] = {
    {18.6, 15.9, 15.7, 17.7, 15.1, 14.8},
    {41.2, 35.9, 33.5, 35.6, 29.8, 29.4},
    {155.3, 136.7, 123.5, 119.3, 97.3, 93.7},
};
constexpr double kGammas[3] = {1.0, 10.0, 100.0};

void Run() {
  const uint64_t samples = bench::EnvOr("GPRQ_MC_SAMPLES", 20000);
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const uint64_t threads = bench::EnvOr("GPRQ_THREADS", 1);
  const double delta = 25.0;
  const double theta = 0.01;

  std::printf("Table I reproduction: query processing time (seconds)\n");
  std::printf("dataset: synthetic TIGER (50,747 pts, [0,1000]^2), "
              "delta=%.0f theta=%.2f, %llu MC samples, %llu trials, "
              "%llu Phase-3 worker(s)\n\n",
              delta, theta, static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(threads));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  // Warm the U-catalogs so their one-time construction is not billed to
  // the first measured query (the paper precomputes them too).
  engine.radius_catalog();
  engine.alpha_catalog();

  // Same query centers for every strategy and γ.
  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }

  // One executor serves the whole table: threads and per-worker evaluators
  // are created here, once, and reused by every cell below.
  auto executor = exec::BatchExecutor::Create(
      &engine,
      [samples](size_t worker) {
        return std::make_unique<mc::MonteCarloEvaluator>(
            mc::MonteCarloOptions{.samples = samples, .seed = 7 + worker});
      },
      threads);
  if (!executor.ok()) {
    std::fprintf(stderr, "executor setup failed: %s\n",
                 executor.status().ToString().c_str());
    std::abort();
  }

  std::printf("%-6s", "gamma");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%10s", core::StrategyName(mask).c_str());
  }
  std::printf("   | integration share\n");
  bench::Rule(6 + 10 * 6 + 22);

  for (int gi = 0; gi < 3; ++gi) {
    const double gamma = kGammas[gi];
    const la::Matrix cov = workload::PaperCovariance2D(gamma);
    std::printf("%-6.0f", gamma);
    double max_phase3_share = 0.0;
    for (auto mask : bench::PaperCombos()) {
      double total = 0.0;
      double phase3 = 0.0;
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        core::PrqStats stats;
        auto result = (*executor)->Submit(query, options, &stats);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
        total += stats.total_seconds();
        phase3 += stats.phase3_seconds;
      }
      std::printf("%10.3f", total / static_cast<double>(trials));
      if (total > 0.0) {
        max_phase3_share = std::max(max_phase3_share, phase3 / total);
      }
    }
    std::printf("   | phase3 <= %.0f%%\n", max_phase3_share * 100.0);
  }

  std::printf("\npaper reference (s):\n");
  std::printf("%-6s", "gamma");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%10s", core::StrategyName(mask).c_str());
  }
  std::printf("\n");
  for (int gi = 0; gi < 3; ++gi) {
    std::printf("%-6.0f", kGammas[gi]);
    for (int c = 0; c < 6; ++c) std::printf("%10.1f", kPaperSeconds[gi][c]);
    std::printf("\n");
  }
  std::printf("\nexpected shape: times grow with gamma; every combination "
              "is at most as slow as its parts; ALL is fastest.\n");

  const exec::ExecStats served = (*executor)->Snapshot();
  std::printf("\nexecutor totals: %llu queries, %llu integrations "
              "(%llu accepted without), %.2f queries/s, "
              "%.0f integrations/s\n",
              static_cast<unsigned long long>(served.queries),
              static_cast<unsigned long long>(served.integrations),
              static_cast<unsigned long long>(
                  served.accepted_without_integration),
              served.queries_per_second(), served.integrations_per_second());

  // Serving telemetry for the perf trajectory: ExecStats plus the full
  // metric-registry snapshot (GPRQ_BENCH_JSON overrides the path).
  const char* json_env = std::getenv("GPRQ_BENCH_JSON");
  const std::string json_path = (json_env != nullptr && *json_env != '\0')
                                    ? json_env
                                    : "BENCH_serving.json";
  bench::JsonReport report;
  report.Add("table1_serving", bench::ServingRecord(served));
  if (report.WriteFile(json_path)) {
    std::printf("\nserving telemetry written to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
