// Reproduces paper Table II: the number of candidate objects that require
// numerical integration, per strategy combination and γ, plus the answer
// cardinality (ANS). This is the paper's primary filtering-power metric —
// Phase 3 dominates cost, so candidate counts predict Table I's times.
//
// Phase 3 runs the exact evaluator here (candidate counts are independent
// of the evaluator; exact makes ANS deterministic).

#include <cstdio>

#include "bench/bench_util.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

// Paper Table II reference (candidates; last column ANS).
constexpr int kPaperCandidates[3][7] = {
    {357, 302, 297, 335, 285, 281, 295},
    {792, 683, 636, 682, 569, 558, 546},
    {2998, 2599, 2346, 2270, 1832, 1788, 1566},
};
constexpr double kGammas[3] = {1.0, 10.0, 100.0};

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double delta = 25.0;
  const double theta = 0.01;

  std::printf("Table II reproduction: number of candidates requiring "
              "numerical integration (+ANS)\n");
  std::printf("dataset: synthetic TIGER (50,747 pts), delta=%.0f "
              "theta=%.2f, %llu trials\n\n",
              delta, theta, static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();

  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }

  mc::ImhofEvaluator exact;

  std::printf("%-6s", "gamma");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("%8s\n", "ANS");
  bench::Rule(6 + 8 * 7);

  for (int gi = 0; gi < 3; ++gi) {
    const double gamma = kGammas[gi];
    const la::Matrix cov = workload::PaperCovariance2D(gamma);
    std::printf("%-6.0f", gamma);
    double answer_avg = 0.0;
    for (auto mask : bench::PaperCombos()) {
      double candidates = 0.0;
      double answers = 0.0;
      for (const auto& center : centers) {
        auto g = core::GaussianDistribution::Create(center, cov);
        const core::PrqQuery query{std::move(*g), delta, theta};
        core::PrqOptions options;
        options.strategies = mask;
        core::PrqStats stats;
        auto result = engine.Execute(query, options, &exact, &stats);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
        candidates += static_cast<double>(stats.integration_candidates);
        answers += static_cast<double>(stats.result_size);
      }
      std::printf("%8.0f", candidates / static_cast<double>(trials));
      answer_avg = answers / static_cast<double>(trials);
    }
    std::printf("%8.0f\n", answer_avg);
  }

  std::printf("\npaper reference:\n");
  std::printf("%-6s", "gamma");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("%8s\n", "ANS");
  for (int gi = 0; gi < 3; ++gi) {
    std::printf("%-6.0f", kGammas[gi]);
    for (int c = 0; c < 7; ++c) std::printf("%8d", kPaperCandidates[gi][c]);
    std::printf("\n");
  }
  std::printf("\nexpected shape: RR > BF > RR+BF and RR+OR > BF+OR > ALL "
              ">= ANS per row; counts grow strongly with gamma; "
              "combinations help most at gamma=100.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
