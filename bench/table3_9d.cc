// Reproduces paper Table III (Section VI): the 9-D "pseudo-feedback"
// experiment on (synthetic) Corel Color Moments. Per trial: pick a random
// object, fetch its 20 nearest neighbors (the simulated user feedback),
// form Σ = Σ̃ + κI with Σ̃ the sample covariance of the neighbors and
// κ = |Σ̃|^{1/9}, then run PRQ with δ = 0.7 and θ = 0.4. The paper reports
// the average number of integration candidates over 10 trials per strategy
// combination and the average answer size (3.9).
//
// Also reprints the Section VI diagnostics: r_θ = 2.32 for (9D, θ=0.4) and
// the average qualification probability of the distribution center (~70%).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/radius_catalog.h"
#include "la/eigen_sym.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/corel_synthetic.h"

namespace gprq {
namespace {

constexpr int kPaperCandidates[6] = {3713, 3216, 2468, 1905, 1998, 1699};
constexpr double kPaperAnswer = 3.9;

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 10);
  const double delta = 0.7;
  const double theta = 0.4;
  const size_t k = 20;

  std::printf("Table III reproduction: 9-D pseudo-feedback candidates\n");
  std::printf("dataset: synthetic Corel Color Moments (68,040 x 9-D, "
              "calibrated to ~15.3 neighbors at delta=0.7), "
              "delta=%.1f theta=%.1f, %llu trials\n\n",
              delta, theta, static_cast<unsigned long long>(trials));
  std::printf("r_theta(9D, theta=0.4) = %.2f (paper: 2.32)\n\n",
              core::RadiusCatalog::ExactRadius(9, theta));

  const auto dataset = workload::GenerateCorelSynthetic();
  const auto tree = bench::BuildTree(dataset);
  const core::PrqEngine engine(&tree);
  engine.radius_catalog();
  engine.alpha_catalog();
  mc::ImhofEvaluator exact;

  rng::Random random(2024);
  double candidate_sums[6] = {0.0};
  double or_region_entries = 0.0;
  double answer_sum = 0.0;
  double center_probability_sum = 0.0;

  for (uint64_t trial = 0; trial < trials; ++trial) {
    const la::Vector& center =
        dataset.points[random.NextUint64(dataset.size())];
    std::vector<std::pair<double, index::ObjectId>> knn;
    tree.KnnQuery(center, k, &knn);

    // Sample covariance Σ̃ of the k feedback vectors.
    la::Vector mean(9);
    for (const auto& [dist, id] : knn) mean += dataset.points[id];
    mean *= 1.0 / static_cast<double>(knn.size());
    la::Matrix sigma_tilde(9, 9);
    for (const auto& [dist, id] : knn) {
      const la::Vector diff = dataset.points[id] - mean;
      for (size_t a = 0; a < 9; ++a) {
        for (size_t b = 0; b < 9; ++b) {
          sigma_tilde(a, b) += diff[a] * diff[b];
        }
      }
    }
    sigma_tilde *= 1.0 / static_cast<double>(knn.size());

    // κ = |Σ̃|^{1/9} (Eq. 35): blend sample and Euclidean metrics equally.
    auto eigen = la::DecomposeSymmetric(sigma_tilde);
    if (!eigen.ok()) std::abort();
    double log_det = 0.0;
    bool singular = false;
    for (size_t i = 0; i < 9; ++i) {
      if (eigen->eigenvalues[i] <= 0.0) singular = true;
      else log_det += std::log(eigen->eigenvalues[i]);
    }
    const double kappa = singular ? 1e-6 : std::exp(log_det / 9.0);
    const la::Matrix cov = sigma_tilde + la::Matrix::Identity(9) * kappa;

    auto g = core::GaussianDistribution::Create(center, cov);
    if (!g.ok()) std::abort();
    center_probability_sum +=
        exact.QualificationProbability(*g, center, delta);

    int combo_idx = 0;
    for (auto mask : bench::PaperCombos()) {
      auto gq = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*gq), delta, theta};
      core::PrqOptions options;
      options.strategies = mask;
      core::PrqStats stats;
      auto result = engine.Execute(query, options, &exact, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
      candidate_sums[combo_idx] +=
          static_cast<double>(stats.integration_candidates);
      if (mask == core::kStrategyAll) {
        answer_sum += static_cast<double>(stats.result_size);
      }
      ++combo_idx;
    }

    // Section VI also reports how many index candidates fall inside the OR
    // region alone (2,620 on average in the paper).
    {
      auto gq = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*gq), delta, theta};
      core::PrqOptions options;
      options.strategies = core::kStrategyOR;
      core::PrqStats stats;
      auto result = engine.Execute(query, options, &exact, &stats);
      if (result.ok()) {
        or_region_entries += static_cast<double>(stats.integration_candidates);
      }
    }
  }

  std::printf("%-10s", "");
  for (auto mask : bench::PaperCombos()) {
    std::printf("%8s", core::StrategyName(mask).c_str());
  }
  std::printf("%8s\n", "ANS");
  bench::Rule(10 + 8 * 7);
  std::printf("%-10s", "measured");
  for (int c = 0; c < 6; ++c) {
    std::printf("%8.0f", candidate_sums[c] / static_cast<double>(trials));
  }
  std::printf("%8.1f\n", answer_sum / static_cast<double>(trials));
  std::printf("%-10s", "paper");
  for (int c = 0; c < 6; ++c) std::printf("%8d", kPaperCandidates[c]);
  std::printf("%8.1f\n\n", kPaperAnswer);

  std::printf("objects inside the OR region alone: %.0f "
              "(paper: 2620 — OR is relatively stronger in 9-D)\n",
              or_region_entries / static_cast<double>(trials));
  std::printf("avg qualification probability of the distribution center: "
              "%.1f%% (paper: ~70%% — the curse-of-dimensionality effect)\n",
              100.0 * center_probability_sum / static_cast<double>(trials));
  std::printf("\nexpected shape: thousands of candidates for a ~4-object "
              "answer; ALL best; OR-based combos closer to BF-based ones "
              "than in 2-D.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
