// Extension bench: top-k probability ranking (threshold-free probabilistic
// NN, the paper's Section VII future work). Measures how far the
// incremental-NN stream has to run and how many exact evaluations are
// needed as k grows, against the brute-force alternative of evaluating all
// n objects.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/ranking.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double delta = 25.0;
  const double gamma = 10.0;

  std::printf("Extension: top-k most-probable range members "
              "(gamma=%.0f, delta=%.0f, %llu trials, n=50747)\n\n",
              gamma, delta, static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  mc::ImhofEvaluator exact;
  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);

  std::printf("%-8s%12s%14s%14s%14s\n", "k", "streamed", "evaluations",
              "time (ms)", "kth prob");
  bench::Rule(62);
  for (size_t k : {1u, 10u, 50u, 200u, 1000u}) {
    double streamed = 0.0, evals = 0.0, ms = 0.0, kth = 0.0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      core::RankingStats stats;
      auto ranked =
          core::TopKProbableRangeMembers(tree, *g, delta, k, &exact, &stats);
      if (!ranked.ok()) std::abort();
      streamed += static_cast<double>(stats.objects_streamed);
      evals += static_cast<double>(stats.evaluations);
      ms += stats.seconds * 1e3;
      kth += ranked->empty() ? 0.0 : ranked->back().probability;
    }
    std::printf("%-8zu%12.0f%14.0f%14.2f%14.4f\n", k,
                streamed / static_cast<double>(trials),
                evals / static_cast<double>(trials),
                ms / static_cast<double>(trials),
                kth / static_cast<double>(trials));
  }
  std::printf("\nbrute force would evaluate all %zu objects per query.\n",
              dataset.size());
  std::printf("expected shape: evaluations grow roughly with k plus a "
              "boundary band, far below n for small k.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
