// Ablation: U-catalog grid resolution vs filtering quality. The paper's
// conservative table rounding (Section IV-A.3 / Eqs. 32-33) trades table
// size for extra integration candidates; this bench quantifies the
// trade-off and compares against exact (no-table) radii.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/alpha_catalog.h"
#include "core/radius_catalog.h"
#include "mc/exact_evaluator.h"
#include "rng/random.h"
#include "workload/tiger_synthetic.h"

namespace gprq {
namespace {

void Run() {
  const uint64_t trials = bench::EnvOr("GPRQ_TRIALS", 5);
  const double delta = 25.0;
  const double gamma = 10.0;

  std::printf("Ablation: U-catalog resolution (gamma=%.0f, delta=%.0f)\n\n",
              gamma, delta);

  // Part 1: θ-region radius inflation vs table size.
  std::printf("RadiusCatalog: table size vs worst-case r_theta "
              "over-approximation (d=2, theta in [0.001, 0.49])\n");
  std::printf("%-10s%16s\n", "entries", "max inflation");
  bench::Rule(26);
  for (size_t entries : {16u, 64u, 256u, 1024u, 4096u}) {
    const auto catalog = core::RadiusCatalog::Build(2, entries);
    double worst = 0.0;
    for (double theta = 0.001; theta < 0.5; theta *= 1.15) {
      const double exact = core::RadiusCatalog::ExactRadius(2, theta);
      worst = std::max(worst, catalog.LookupRadius(theta) - exact);
    }
    std::printf("%-10zu%16.4f\n", entries, worst);
  }

  // Part 2: end-to-end integration candidates vs alpha-catalog grid.
  std::printf("\nAlphaCatalog grid vs integration candidates "
              "(BF strategy, theta=0.01, %llu trials)\n",
              static_cast<unsigned long long>(trials));

  const auto dataset = workload::GenerateTigerSynthetic();
  const auto tree = bench::BuildTree(dataset);
  mc::ImhofEvaluator exact;
  rng::Random random(42);
  std::vector<la::Vector> centers;
  for (uint64_t t = 0; t < trials; ++t) {
    centers.push_back(dataset.points[random.NextUint64(dataset.size())]);
  }
  const la::Matrix cov = workload::PaperCovariance2D(gamma);

  std::printf("%-22s%14s%14s\n", "catalog", "candidates", "accepted free");
  bench::Rule(50);
  // use_catalogs=false runs the exact solver per query — the "infinite
  // resolution" reference.
  for (int mode = 0; mode < 2; ++mode) {
    const core::PrqEngine engine(&tree);
    double candidates = 0.0, accepted = 0.0;
    for (const auto& center : centers) {
      auto g = core::GaussianDistribution::Create(center, cov);
      const core::PrqQuery query{std::move(*g), delta, 0.01};
      core::PrqOptions options;
      options.strategies = core::kStrategyBF;
      options.use_catalogs = (mode == 0);
      core::PrqStats stats;
      auto result = engine.Execute(query, options, &exact, &stats);
      if (!result.ok()) std::abort();
      candidates += static_cast<double>(stats.integration_candidates);
      accepted += static_cast<double>(stats.accepted_without_integration);
    }
    std::printf("%-22s%14.0f%14.0f\n",
                mode == 0 ? "table (default grid)" : "exact (no table)",
                candidates / static_cast<double>(trials),
                accepted / static_cast<double>(trials));
  }
  std::printf("\nexpected shape: radius inflation shrinks ~linearly with "
              "table size; the default alpha grid costs only a few extra "
              "integration candidates over exact radii.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
