// Extension bench: PRQ over uncertain targets (both query and targets
// Gaussian — the paper's Section VII future-work environment). Measures the
// effectiveness of the combined-covariance BF prescreen and the exact
// evaluation cost, as target uncertainty grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/uncertain_targets.h"
#include "rng/random.h"
#include "workload/generators.h"

namespace gprq {
namespace {

void Run() {
  const size_t n = static_cast<size_t>(bench::EnvOr("GPRQ_TARGETS", 5000));
  const double delta = 25.0;
  const double theta = 0.05;

  std::printf("Extension: uncertain-target PRQ "
              "(n=%zu targets, delta=%.0f, theta=%.2f)\n\n",
              n, delta, theta);

  const geom::Rect extent(la::Vector{0.0, 0.0}, la::Vector{1000.0, 1000.0});
  const auto dataset = workload::GenerateClustered(n, extent, 16, 40.0, 11);
  // Center the query on a data point so the answer set is non-trivial.
  auto g = core::GaussianDistribution::Create(
      dataset.points[n / 2], workload::PaperCovariance2D(10.0));
  if (!g.ok()) std::abort();

  std::printf("%-22s%10s%12s%12s%12s\n", "target uncertainty", "answers",
              "pruned", "evaluated", "time (ms)");
  bench::Rule(68);
  rng::Random random(3);
  for (double spread : {0.1, 2.0, 10.0, 50.0, 200.0}) {
    std::vector<core::UncertainTarget> targets;
    targets.reserve(n);
    rng::Random cov_random(17);
    for (size_t i = 0; i < n; ++i) {
      // Per-target anisotropic covariance scaled by `spread`.
      const la::Matrix cov = workload::RandomRotatedCovariance(
          la::Vector{cov_random.NextDouble(0.5, 1.5),
                     cov_random.NextDouble(0.5, 1.5)},
          i) * spread;
      targets.push_back({dataset.points[i], cov});
    }
    core::UncertainPrqStats stats;
    auto result =
        core::UncertainTargetPrq(*g, targets, delta, theta, &stats);
    if (!result.ok()) std::abort();
    std::printf("%-22.1f%10zu%12zu%12zu%12.1f\n", spread, result->size(),
                stats.pruned_by_bound, stats.evaluations,
                stats.seconds * 1e3);
  }
  std::printf("\nexpected shape: at this low theta, growing target "
              "uncertainty spreads the combined Gaussian and lets more "
              "distant targets reach the threshold (answers grow), while "
              "the BF prescreen keeps evaluations to a thin boundary "
              "band; a demanding theta would show the opposite trend.\n");
}

}  // namespace
}  // namespace gprq

int main() {
  gprq::Run();
  return 0;
}
