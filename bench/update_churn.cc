// Update-churn bench + crash-recovery smoke driver for the mutable
// storage engine. Three modes:
//
//   update_churn                 self-contained bench: churn a temp dir,
//                                measure write/commit/checkpoint/query
//                                rates, verify differentially, emit
//                                BENCH_storage.json
//   update_churn --dir D --run   deterministic seeded workload against D
//                                (the CI recovery smoke runs this and
//                                kill -9s it mid-flight)
//   update_churn --dir D --verify  reopen D, replay the WAL, and assert
//                                the recovered state equals the oracle of
//                                exactly the committed operation prefix
//                                (the LSN says how many ops survived);
//                                exits non-zero on any mismatch
//
// The workload is deterministic for a given --seed, which is what makes
// --verify possible after an arbitrary kill: the script is regenerated and
// its first `recovered-lsn` operations replayed onto an in-memory oracle.
//
// Env overrides: GPRQ_CHURN_OPS (default 20000 bench / 200000 run),
// GPRQ_BENCH_JSON (output path, default BENCH_storage.json).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/batch_executor.h"
#include "mc/exact_evaluator.h"
#include "obs/metrics.h"
#include "rng/random.h"
#include "storage/live_engine.h"
#include "storage/storage_engine.h"
#include "workload/generators.h"

namespace gprq {
namespace {

constexpr size_t kDim = 2;
constexpr double kExtent = 10000.0;

/// Deterministic churn script: op i depends only on (seed, 0..i-1), so a
/// verifier can regenerate any prefix. ~30% deletes once data exists.
class ChurnScript {
 public:
  explicit ChurnScript(uint64_t seed) : random_(seed) {}

  struct Op {
    bool insert = true;
    la::Vector point;
    uint32_t id = 0;
  };

  Op Next() {
    Op op;
    if (!live_.empty() && random_.NextDouble() < 0.3) {
      const size_t victim = random_.NextUint64(live_.size());
      op.insert = false;
      op.point = live_[victim].first;
      op.id = live_[victim].second;
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      op.insert = true;
      op.point = la::Vector(kDim);
      for (size_t j = 0; j < kDim; ++j) {
        op.point[j] = random_.NextDouble(0.0, kExtent);
      }
      op.id = next_id_++;
      live_.emplace_back(op.point, op.id);
    }
    return op;
  }

 private:
  rng::Random random_;
  std::vector<std::pair<la::Vector, uint32_t>> live_;
  uint32_t next_id_ = 1;
};

size_t EnvOps(size_t fallback) {
  const char* env = std::getenv("GPRQ_CHURN_OPS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return fallback;
}

std::string JsonPath() {
  const char* env = std::getenv("GPRQ_BENCH_JSON");
  return (env != nullptr && *env != '\0') ? env : "BENCH_storage.json";
}

using PointSet = std::vector<std::pair<std::vector<double>, uint32_t>>;

PointSet Collect(const storage::StorageSnapshot& snapshot) {
  PointSet set;
  snapshot.ScanAll([&set](const la::Vector& point, index::ObjectId id) {
    set.emplace_back(point.values(), id);
  });
  std::sort(set.begin(), set.end());
  return set;
}

/// The oracle of the first `prefix` script operations.
PointSet Oracle(uint64_t seed, uint64_t prefix) {
  ChurnScript script(seed);
  PointSet set;
  for (uint64_t i = 0; i < prefix; ++i) {
    const ChurnScript::Op op = script.Next();
    std::pair<std::vector<double>, uint32_t> entry(op.point.values(), op.id);
    if (op.insert) {
      set.push_back(std::move(entry));
    } else {
      set.erase(std::find(set.begin(), set.end(), entry));
    }
  }
  std::sort(set.begin(), set.end());
  return set;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricRegistry::Global().GetCounter(name)->Value();
}

// ---- --run: the workload the CI smoke kills mid-flight ---------------------

int RunWorkload(const std::string& dir, uint64_t seed, size_t ops) {
  std::filesystem::create_directories(dir);
  storage::StorageOptions options;
  options.group_commit_ops = 8;
  auto engine = storage::StorageEngine::Create(dir, kDim, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("churning %zu ops into %s (seed %llu)\n", ops, dir.c_str(),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  ChurnScript script(seed);
  for (size_t i = 0; i < ops; ++i) {
    const ChurnScript::Op op = script.Next();
    const Status status =
        op.insert ? (*engine)->Insert(op.point, op.id)
                  : (*engine)->Delete(op.point, op.id);
    if (!status.ok()) {
      std::fprintf(stderr, "op %zu failed: %s\n", i,
                   status.ToString().c_str());
      return 1;
    }
    // Periodic checkpoints keep the WAL short and exercise the
    // rename/restart windows while the killer's timer runs.
    if ((i + 1) % 20000 == 0) {
      if (Status s = (*engine)->Checkpoint(); !s.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("  %zu ops, checkpointed\n", i + 1);
      std::fflush(stdout);
    }
  }
  if (Status s = (*engine)->Flush(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("workload complete: %zu objects\n",
              (*engine)->PinSnapshot()->size());
  return 0;
}

// ---- --verify: reopen after a crash and prove exact recovery ---------------

int VerifyRecovery(const std::string& dir, uint64_t seed) {
  storage::WalReplayInfo info;
  storage::StorageOptions options;
  options.group_commit_ops = 8;
  auto engine = storage::StorageEngine::Open(dir, options, &info);
  if (!engine.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const auto snapshot = (*engine)->PinSnapshot();
  std::printf("recovered: %zu objects, lsn %llu, wal records %llu%s\n",
              snapshot->size(),
              static_cast<unsigned long long>(snapshot->lsn()),
              static_cast<unsigned long long>(info.records),
              info.truncated_tail ? " (torn tail discarded)" : "");

  int failures = 0;
  if (Status s = snapshot->CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", s.ToString().c_str());
    ++failures;
  }
  // Every LSN is one script op, so the recovered LSN names the committed
  // prefix exactly; the recovered tree must equal its oracle.
  const PointSet expected = Oracle(seed, snapshot->lsn());
  const PointSet actual = Collect(*snapshot);
  if (actual != expected) {
    std::fprintf(stderr,
                 "DIFFERENTIAL MISMATCH: recovered %zu entries, oracle of "
                 "%llu committed ops has %zu\n",
                 actual.size(),
                 static_cast<unsigned long long>(snapshot->lsn()),
                 expected.size());
    ++failures;
  }
  // Recovery must leave a writable engine behind.
  if (Status s = (*engine)->Insert(la::Vector(kDim, -1.0), 0xFFFFFFFF);
      !s.ok()) {
    std::fprintf(stderr, "post-recovery write failed: %s\n",
                 s.ToString().c_str());
    ++failures;
  }

  bench::JsonReport report;
  bench::JsonValue record = bench::JsonValue::Object();
  record.Set("objects", bench::JsonValue(static_cast<double>(snapshot->size())));
  record.Set("last_lsn", bench::JsonValue(static_cast<double>(snapshot->lsn())));
  record.Set("wal_records", bench::JsonValue(static_cast<double>(info.records)));
  record.Set("wal_valid_bytes",
             bench::JsonValue(static_cast<double>(info.valid_bytes)));
  record.Set("torn_tail", bench::JsonValue(info.truncated_tail ? 1.0 : 0.0));
  record.Set("replayed_records",
             bench::JsonValue(static_cast<double>(
                 CounterValue("gprq.storage.wal.replayed_records"))));
  record.Set("verified", bench::JsonValue(failures == 0 ? 1.0 : 0.0));
  report.Add("update_churn_recovery", std::move(record));
  const std::string json_path = JsonPath();
  if (report.WriteFile(json_path)) {
    std::printf("recovery report written to %s\n", json_path.c_str());
  }
  std::printf(failures == 0 ? "recovery verified: state == committed oracle\n"
                            : "recovery FAILED\n");
  return failures == 0 ? 0 : 1;
}

// ---- default: self-contained churn bench -----------------------------------

int RunBench() {
  const size_t ops = EnvOps(20000);
  const uint64_t seed = 42;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gprq_update_churn").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  bench::JsonReport report;
  std::printf("update churn: %zu ops, d=%zu\n\n", ops, kDim);
  std::printf("%-22s%14s%14s%14s\n", "phase", "ops", "seconds", "ops/sec");

  storage::StorageOptions options;
  options.group_commit_ops = 8;
  auto engine = storage::StorageEngine::Create(dir, kDim, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  ChurnScript script(seed);
  Stopwatch churn_timer;
  for (size_t i = 0; i < ops; ++i) {
    const ChurnScript::Op op = script.Next();
    const Status status =
        op.insert ? (*engine)->Insert(op.point, op.id)
                  : (*engine)->Delete(op.point, op.id);
    if (!status.ok()) {
      std::fprintf(stderr, "op %zu failed: %s\n", i,
                   status.ToString().c_str());
      return 1;
    }
  }
  if (Status s = (*engine)->Flush(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double churn_seconds = churn_timer.ElapsedSeconds();
  std::printf("%-22s%14zu%14.3f%14.0f\n", "churn (batch=8)", ops,
              churn_seconds, ops / churn_seconds);

  Stopwatch checkpoint_timer;
  if (Status s = (*engine)->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double checkpoint_seconds = checkpoint_timer.ElapsedSeconds();
  const size_t objects = (*engine)->PinSnapshot()->size();
  std::printf("%-22s%14zu%14.3f%14s\n", "checkpoint", objects,
              checkpoint_seconds, "-");

  // PRQ serving against the mutated tree (exact Phase 3, 2 workers).
  auto executor = exec::BatchExecutor::CreateDetached(
      [](size_t) -> std::unique_ptr<mc::ProbabilityEvaluator> {
        return std::make_unique<mc::ImhofEvaluator>();
      },
      2);
  if (!executor.ok()) return 1;
  storage::LivePrqEngine live(engine->get(), executor->get());
  rng::Random random(seed * 17);
  const size_t queries = 50;
  size_t total_results = 0;
  Stopwatch query_timer;
  for (size_t q = 0; q < queries; ++q) {
    la::Vector center(kDim);
    for (size_t j = 0; j < kDim; ++j) {
      center[j] = random.NextDouble(0.0, kExtent);
    }
    auto g = core::GaussianDistribution::Create(
        center, workload::PaperCovariance2D(kExtent / 500.0));
    if (!g.ok()) return 1;
    const core::PrqQuery query{std::move(*g), kExtent / 100.0, 0.05};
    auto result = live.Execute(query, core::PrqOptions());
    if (!result.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    total_results += result->size();
  }
  const double query_seconds = query_timer.ElapsedSeconds();
  std::printf("%-22s%14zu%14.3f%14.0f\n", "live PRQ", queries, query_seconds,
              queries / query_seconds);

  // Differential verification closes the bench: the bench is also a test.
  const auto snapshot = (*engine)->PinSnapshot();
  if (Status s = snapshot->CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Collect(*snapshot) != Oracle(seed, snapshot->lsn())) {
    std::fprintf(stderr, "DIFFERENTIAL MISMATCH after churn\n");
    return 1;
  }
  std::printf("\nverified: %zu surviving objects match the oracle; "
              "%zu results over %zu queries\n",
              objects, total_results, queries);

  bench::JsonValue record = bench::JsonValue::Object();
  record.Set("ops", bench::JsonValue(static_cast<double>(ops)));
  record.Set("ops_per_sec", bench::JsonValue(ops / churn_seconds));
  record.Set("objects", bench::JsonValue(static_cast<double>(objects)));
  record.Set("checkpoint_seconds", bench::JsonValue(checkpoint_seconds));
  record.Set("queries_per_sec", bench::JsonValue(queries / query_seconds));
  record.Set("inserts", bench::JsonValue(static_cast<double>(
                            CounterValue("gprq.storage.inserts"))));
  record.Set("deletes", bench::JsonValue(static_cast<double>(
                            CounterValue("gprq.storage.deletes"))));
  record.Set("commits", bench::JsonValue(static_cast<double>(
                            CounterValue("gprq.storage.commits"))));
  record.Set("verified", bench::JsonValue(1.0));
  report.Add("update_churn", std::move(record));
  const std::string json_path = JsonPath();
  if (report.WriteFile(json_path)) {
    std::printf("churn telemetry written to %s\n", json_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace gprq

int main(int argc, char** argv) {
  std::string dir;
  uint64_t seed = 42;
  bool run = false;
  bool verify = false;
  size_t ops = gprq::EnvOps(200000);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--run") {
      run = true;
    } else if (arg == "--verify") {
      verify = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--dir D (--run [--ops N] | --verify)] "
                   "[--seed S]\n",
                   argv[0]);
      return 2;
    }
  }
  if ((run || verify) && dir.empty()) {
    std::fprintf(stderr, "--run/--verify require --dir\n");
    return 2;
  }
  if (run) return gprq::RunWorkload(dir, seed, ops);
  if (verify) return gprq::VerifyRecovery(dir, seed);
  return gprq::RunBench();
}
