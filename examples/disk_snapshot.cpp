// Example: the disk-resident workflow. An offline job builds the index and
// writes a page-file snapshot (the paper's 1 KB node pages); a serving
// process later opens the snapshot with a small buffer pool and answers
// probabilistic range queries straight off the pages — reporting logical vs
// physical I/O. Finally the snapshot is loaded back into an in-memory tree
// to show the full persistence round-trip.

#include <cstdio>
#include <string>

#include "core/paged_prq.h"
#include "index/paged_tree.h"
#include "index/str_bulk_load.h"
#include "mc/slice_evaluator.h"
#include "workload/tiger_synthetic.h"

int main() {
  using namespace gprq;
  const std::string path = "/tmp/gprq_example_snapshot.pages";
  const size_t kPageSize = 1024;

  // ---- Offline: build and persist. ---------------------------------------
  {
    const auto dataset = workload::GenerateTigerSynthetic();
    index::RStarTreeOptions options;
    options.max_entries =
        index::TreeSnapshot::MaxEntriesPerPage(kPageSize, 2);
    auto tree = index::StrBulkLoader::Load(2, dataset.points, options);
    if (!tree.ok()) return 1;
    if (!index::TreeSnapshot::Write(*tree, path, kPageSize).ok()) return 1;
    std::printf("offline: wrote %zu points as %zu pages of %zu bytes\n",
                tree->size(), tree->node_count() + 1, kPageSize);
  }

  // ---- Serving: open with a small buffer pool and query. ------------------
  index::PagedRStarTree::OpenOptions open_options;
  open_options.page_size = kPageSize;
  open_options.buffer_pages = 64;  // ~64 KB of cache for a ~2 MB index
  auto paged = index::PagedRStarTree::Open(path, open_options);
  if (!paged.ok()) {
    std::fprintf(stderr, "%s\n", paged.status().ToString().c_str());
    return 1;
  }
  std::printf("serving: opened snapshot (%zu points, height %zu) with a "
              "%zu-page pool\n\n",
              paged->size(), paged->height(), open_options.buffer_pages);

  mc::Slice2DEvaluator evaluator;
  core::PrqOptions options;
  options.use_catalogs = false;
  for (int round = 0; round < 3; ++round) {
    auto g = core::GaussianDistribution::Create(
        la::Vector{500.0, 500.0}, workload::PaperCovariance2D(10.0));
    const core::PrqQuery query{std::move(*g), 25.0, 0.01};
    paged->ResetPoolStats();
    core::PrqStats stats;
    auto result = core::ExecutePagedPrq(*paged, query, options, &evaluator,
                                        nullptr, nullptr, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("round %d: %zu answers, %llu node accesses "
                "(%llu cache hits, %llu page faults), %.1f ms\n",
                round, result->size(),
                static_cast<unsigned long long>(stats.node_reads),
                static_cast<unsigned long long>(paged->pool_stats().hits),
                static_cast<unsigned long long>(paged->pool_stats().misses),
                stats.total_seconds() * 1e3);
  }

  // ---- Round trip: reload into an updatable in-memory tree. ---------------
  auto reloaded = index::TreeSnapshot::Load(path, kPageSize);
  if (!reloaded.ok()) return 1;
  std::printf("\nreloaded the snapshot into memory: %zu points, "
              "invariants %s; the tree accepts updates again.\n",
              reloaded->size(),
              reloaded->CheckInvariants().ok() ? "OK" : "BROKEN");
  std::remove(path.c_str());
  return 0;
}
