// Example: example-based multimedia retrieval (paper Sections I and VI).
// The user provides a handful of example images; the system models the
// user's interest as a Gaussian in 9-D color-moment feature space (mean and
// covariance of the examples, regularized with κI per Eq. 35) and retrieves
// images that are "similar with probability >= θ". Also runs the
// threshold-free top-k ranking extension on the same query.

#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "core/ranking.h"
#include "index/str_bulk_load.h"
#include "la/eigen_sym.h"
#include "mc/exact_evaluator.h"
#include "workload/corel_synthetic.h"

int main() {
  using namespace gprq;

  // A 68,040-image collection in 9-D color-moment space (synthetic Corel).
  std::printf("generating the image-feature collection...\n");
  const auto images = workload::GenerateCorelSynthetic();
  auto tree = index::StrBulkLoader::Load(9, images.points);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  const core::PrqEngine engine(&*tree);
  mc::ImhofEvaluator evaluator;

  // Pseudo-feedback: the "user's examples" are the 20 images most similar
  // to a seed image.
  const size_t kSeedImage = 12345;
  const size_t kFeedback = 20;
  std::vector<std::pair<double, index::ObjectId>> feedback;
  tree->KnnQuery(images.points[kSeedImage], kFeedback, &feedback);

  // Interest model: N(seed, Σ̃ + κI).
  la::Vector mean(9);
  for (const auto& [dist, id] : feedback) mean += images.points[id];
  mean *= 1.0 / static_cast<double>(feedback.size());
  la::Matrix sample_cov(9, 9);
  for (const auto& [dist, id] : feedback) {
    const la::Vector diff = images.points[id] - mean;
    for (size_t a = 0; a < 9; ++a)
      for (size_t b = 0; b < 9; ++b) sample_cov(a, b) += diff[a] * diff[b];
  }
  sample_cov *= 1.0 / static_cast<double>(feedback.size());
  auto eigen = la::DecomposeSymmetric(sample_cov);
  double log_det = 0.0;
  for (size_t i = 0; i < 9; ++i) {
    log_det += std::log(std::max(eigen->eigenvalues[i], 1e-12));
  }
  const double kappa = std::exp(log_det / 9.0);
  const la::Matrix cov = sample_cov + la::Matrix::Identity(9) * kappa;
  std::printf("interest model built from %zu feedback images "
              "(kappa = %.4f)\n\n", kFeedback, kappa);

  auto g = core::GaussianDistribution::Create(images.points[kSeedImage], cov);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }

  // Probabilistic range query: similar with >= 30% probability.
  {
    auto gq = core::GaussianDistribution::Create(
        images.points[kSeedImage], cov);
    const core::PrqQuery query{std::move(*gq), /*delta=*/0.7,
                               /*theta=*/0.3};
    core::PrqStats stats;
    auto result = engine.Execute(query, core::PrqOptions(), &evaluator,
                                 &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("PRQ(delta=0.7, theta=0.3): %zu matching images "
                "(%zu integrations over %zu index candidates, %.1f ms)\n",
                result->size(), stats.integration_candidates,
                stats.index_candidates, stats.total_seconds() * 1e3);
  }

  // Threshold-free alternative: the 10 most probably-similar images.
  {
    core::RankingStats stats;
    auto ranked = core::TopKProbableRangeMembers(*tree, *g, 0.7, 10,
                                                 &evaluator, &stats);
    if (!ranked.ok()) {
      std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
      return 1;
    }
    std::printf("\ntop-10 most probable matches "
                "(streamed %zu / evaluated %zu of %zu images):\n",
                stats.objects_streamed, stats.evaluations, images.size());
    for (size_t i = 0; i < ranked->size(); ++i) {
      std::printf("  #%zu: image %u  p = %.3f%s\n", i + 1, (*ranked)[i].id,
                  (*ranked)[i].probability,
                  (*ranked)[i].id == kSeedImage ? "  (the seed)" : "");
    }
  }
  return 0;
}
