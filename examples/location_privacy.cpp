// Example: privacy-aware location services (paper Section I). A user hides
// their exact position from a points-of-interest service by reporting only
// a Gaussian blur of it. The service still answers "which POIs are within
// walking distance (with decent probability)?" — and the uncertain-target
// extension handles the symmetric case where the *POIs* themselves are
// crowdsourced with noisy positions.

#include <cstdio>

#include "core/engine.h"
#include "core/uncertain_targets.h"
#include "index/str_bulk_load.h"
#include "mc/exact_evaluator.h"
#include "workload/tiger_synthetic.h"

int main() {
  using namespace gprq;

  // POIs along a synthetic road network (city = [0,1000]^2, meters/5).
  const auto pois = workload::GenerateTigerSynthetic(
      {.num_points = 30000, .seed = 99});
  auto tree = index::StrBulkLoader::Load(2, pois.points);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  const core::PrqEngine engine(&*tree);
  mc::ImhofEvaluator evaluator;

  const la::Vector true_position = pois.points[4242];
  const double kWalkingDistance = 30.0;
  const double kTheta = 0.25;

  std::printf("user's true position: (%.1f, %.1f) — never sent.\n\n",
              true_position[0], true_position[1]);
  std::printf("%-18s%12s%14s%10s\n", "privacy blur", "candidates",
              "integrations", "answers");
  for (double blur : {5.0, 20.0, 60.0, 150.0}) {
    // The reported location: the true position blurred isotropically. The
    // larger the blur, the stronger the privacy and the vaguer the answer.
    auto g = core::GaussianDistribution::Create(
        true_position, la::Matrix::Identity(2) * (blur * blur));
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    const core::PrqQuery query{std::move(*g), kWalkingDistance, kTheta};
    core::PrqStats stats;
    auto result = engine.Execute(query, core::PrqOptions(), &evaluator,
                                 &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    if (stats.proved_empty) {
      std::printf("%-18.0f%38s\n", blur,
                  "(provably empty: blur too large for theta)");
    } else {
      std::printf("%-18.0f%12zu%14zu%10zu\n", blur, stats.index_candidates,
                  stats.integration_candidates, result->size());
    }
  }
  std::printf("\n(with an isotropic blur the BF strategy answers almost "
              "everything without numerical integration — its inner and "
              "outer radii coincide.)\n\n");

  // Crowdsourced POIs: positions themselves are uncertain. Evaluate the
  // same query against Gaussian POIs with per-POI noise.
  std::printf("crowdsourced variant: POI positions carry their own "
              "uncertainty\n");
  auto g = core::GaussianDistribution::Create(
      true_position, la::Matrix::Identity(2) * (20.0 * 20.0));
  std::vector<core::UncertainTarget> targets;
  targets.reserve(2000);
  for (size_t i = 0; i < 2000; ++i) {
    targets.push_back({pois.points[i * 15],
                       la::Matrix::Identity(2) * 25.0});
  }
  core::UncertainPrqStats stats;
  auto result = core::UncertainTargetPrq(*g, targets, kWalkingDistance,
                                         kTheta, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu of %zu POIs qualify (pruned %zu cheaply, evaluated "
              "%zu, %.1f ms)\n",
              result->size(), targets.size(), stats.pruned_by_bound,
              stats.evaluations, stats.seconds * 1e3);
  return 0;
}
