// Example: moving-object monitoring (paper Section I's second motivating
// scenario). A fleet of vehicles reports positions only occasionally to
// save bandwidth; between updates the server models each vehicle's location
// uncertainty as a Gaussian that grows with time since the last report.
// A dispatcher repeatedly asks "which depots are probably within reach of
// vehicle V right now?" while vehicles keep moving (tree updates) — the
// continuous-monitoring loop the paper's moving-object references target.

#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "index/rstar_tree.h"
#include "mc/slice_evaluator.h"
#include "rng/random.h"
#include "workload/generators.h"

int main() {
  using namespace gprq;

  // Static depots, indexed once.
  const geom::Rect city(la::Vector{0.0, 0.0}, la::Vector{2000.0, 2000.0});
  const auto depots = workload::GenerateClustered(5000, city, 20, 60.0, 17);
  index::RStarTree depot_index(2);
  for (size_t i = 0; i < depots.size(); ++i) {
    if (!depot_index.Insert(depots.points[i],
                            static_cast<index::ObjectId>(i))
             .ok()) {
      return 1;
    }
  }
  const core::PrqEngine engine(&depot_index);
  mc::Slice2DEvaluator evaluator;  // exact and fast in 2-D

  // One monitored vehicle: true position (hidden), last report, and the
  // time since that report.
  rng::Random random(4);
  la::Vector true_position{1000.0, 1000.0};
  la::Vector reported = true_position;
  double seconds_since_report = 0.0;
  const double kSpeed = 15.0;          // m/s, random heading per tick
  const double kDiffusion = 40.0;      // uncertainty growth (m^2 per s)
  const double kReach = 150.0;         // "within reach" distance
  const double kConfidence = 0.3;

  std::printf("tick  since-report  sigma   candidates  integr.  reachable\n");
  for (int tick = 0; tick < 12; ++tick) {
    // The vehicle drives; the server does not see this.
    const double heading = random.NextDouble(0.0, 2.0 * M_PI);
    true_position[0] += kSpeed * 5.0 * std::cos(heading);
    true_position[1] += kSpeed * 5.0 * std::sin(heading);
    seconds_since_report += 5.0;

    // Report every 4th tick (low-bandwidth regime).
    if (tick % 4 == 3) {
      reported = true_position;
      seconds_since_report = 0.0;
    }

    // Server-side model: N(reported, (σ0² + diffusion·t)·I).
    const double variance = 25.0 + kDiffusion * seconds_since_report;
    auto g = core::GaussianDistribution::Create(
        reported, la::Matrix::Identity(2) * variance);
    if (!g.ok()) return 1;
    const core::PrqQuery query{std::move(*g), kReach, kConfidence};
    core::PrqStats stats;
    auto reachable = engine.Execute(query, core::PrqOptions(), &evaluator,
                                    &stats);
    if (!reachable.ok()) {
      std::fprintf(stderr, "%s\n", reachable.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6d%12.0fs%7.1f%12zu%9zu%11zu%s\n", tick,
                seconds_since_report, std::sqrt(variance),
                stats.index_candidates, stats.integration_candidates,
                reachable->size(),
                (tick % 4 == 3) ? "   <- fresh report" : "");
  }
  std::printf("\nBetween reports the uncertainty (and the candidate set) "
              "grows; each fresh report snaps the query back to a tight "
              "region. All probabilities are exact (2-D slice "
              "integration).\n");
  return 0;
}
