// Quickstart: issue one probabilistic range query against a synthetic
// road-network dataset and print the qualifying objects.
//
// A probabilistic range query PRQ(q, delta, theta) asks: "which objects are
// within distance delta of the query object with probability at least
// theta?", where the query object's location is only known as a Gaussian
// N(q, Sigma).

#include <cstdio>

#include "core/engine.h"
#include "index/str_bulk_load.h"
#include "mc/monte_carlo.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "workload/generators.h"
#include "workload/tiger_synthetic.h"

int main() {
  using namespace gprq;

  // 1. Build a dataset and index it (50,747 synthetic road midpoints).
  workload::TigerSyntheticOptions data_options;
  const workload::Dataset dataset =
      workload::GenerateTigerSynthetic(data_options);
  auto tree = index::StrBulkLoader::Load(2, dataset.points);
  if (!tree.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu points (R*-tree height %zu, %zu nodes)\n",
              tree->size(), tree->height(), tree->node_count());

  // 2. Describe the imprecise query object: mean position and covariance.
  auto gaussian = core::GaussianDistribution::Create(
      la::Vector{500.0, 500.0}, workload::PaperCovariance2D(10.0));
  if (!gaussian.ok()) {
    std::fprintf(stderr, "bad covariance: %s\n",
                 gaussian.status().ToString().c_str());
    return 1;
  }
  const core::PrqQuery query{std::move(*gaussian), /*delta=*/25.0,
                             /*theta=*/0.01};

  // 3. Run the query with all three filtering strategies combined and the
  //    paper's Monte-Carlo integrator for the surviving candidates.
  const core::PrqEngine engine(&*tree);
  mc::MonteCarloEvaluator evaluator({.samples = 20000, .seed = 1});
  core::PrqOptions options;  // defaults: ALL strategies, U-catalog tables
  core::PrqStats stats;
  auto result = engine.Execute(query, options, &evaluator, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("PRQ(q=(500,500), delta=25, theta=0.01)\n");
  std::printf("  phase 1 index candidates : %zu (%llu node reads)\n",
              stats.index_candidates,
              static_cast<unsigned long long>(stats.node_reads));
  std::printf("  phase 2 survivors        : %zu (+%zu accepted free)\n",
              stats.integration_candidates,
              stats.accepted_without_integration);
  std::printf("  phase 3 result size      : %zu\n", stats.result_size);
  std::printf("  time: %.1f ms (%.0f%% in numerical integration)\n",
              stats.total_seconds() * 1e3,
              100.0 * stats.phase3_seconds /
                  (stats.total_seconds() > 0 ? stats.total_seconds() : 1.0));

  // 4. Every query also feeds the process-wide metric registry — dump it.
  //    The same snapshot renders as Prometheus text via
  //    obs::TextExporter::Prometheus for a /metrics endpoint.
  std::printf("\nmetric registry after one query:\n%s",
              obs::TextExporter::Json(
                  obs::MetricRegistry::Global().Snapshot())
                  .c_str());
  return 0;
}
