// Example: the paper's motivating scenario (Section I, Example 1) — a
// mobile robot whose position estimate comes from probabilistic
// localization and is therefore a Gaussian whose uncertainty grows as the
// robot moves between fixes. At each waypoint the robot asks: "which
// landmarks are within 10 meters of me with probability at least 20%?"
//
// Demonstrates: per-step covariance growth (a simple odometry noise model),
// the engine's three-phase execution, and how the strategies' filtering
// power changes as the position gets vaguer.

#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "index/str_bulk_load.h"
#include "mc/exact_evaluator.h"
#include "workload/generators.h"

int main() {
  using namespace gprq;

  // A warehouse floor with 20,000 tagged landmarks (shelves, chargers...).
  const geom::Rect floor(la::Vector{0.0, 0.0}, la::Vector{500.0, 500.0});
  const auto landmarks = workload::GenerateClustered(
      20000, floor, 24, 12.0, /*seed=*/7);
  auto tree = index::StrBulkLoader::Load(2, landmarks.points);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  const core::PrqEngine engine(&*tree);
  mc::ImhofEvaluator evaluator;  // exact probabilities, no sampling noise

  // The robot drives from one landmark toward another (so the corridor
  // actually passes through shelving); odometry noise accumulates
  // anisotropically (more along the direction of travel), and a GPS fix at
  // step 4 collapses the uncertainty again.
  const la::Vector& start = landmarks.points[100];
  const la::Vector& goal = landmarks.points[15000];
  const double kDelta = 10.0;   // "within ten meters" (Example 1)
  const double kTheta = 0.2;
  double along = 4.0, across = 1.0;  // variance components
  std::printf("step  position      var(along,across)  candidates  "
              "integrated  answers  time(ms)\n");
  for (int step = 0; step < 6; ++step) {
    const double t = static_cast<double>(step) / 5.0;
    const double x = start[0] + t * (goal[0] - start[0]);
    const double y = start[1] + t * (goal[1] - start[1]);
    if (step == 4) {
      std::printf("      -- GPS fix: uncertainty collapses --\n");
      along = 4.0;
      across = 1.0;
    }
    // Covariance aligned with the direction of travel (here the x axis).
    la::Matrix cov{{along, 0.0}, {0.0, across}};
    auto g = core::GaussianDistribution::Create(la::Vector{x, y}, cov);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    const core::PrqQuery query{std::move(*g), kDelta, kTheta};
    core::PrqStats stats;
    auto result = engine.Execute(query, core::PrqOptions(), &evaluator,
                                 &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-5d (%3.0f,%3.0f)     (%5.1f,%5.1f)      %6zu      %6zu  "
                "%7zu  %8.2f\n",
                step, x, y, along, across, stats.index_candidates,
                stats.integration_candidates, result->size(),
                stats.total_seconds() * 1e3);
    // Odometry noise accumulates until the next fix.
    along *= 2.2;
    across *= 1.6;
  }
  std::printf("\nCandidate counts track both the local landmark density "
              "and the position uncertainty; the first query also pays "
              "the engine's one-time U-catalog construction.\n");
  return 0;
}
