#include "cache/result_cache.h"

#include <algorithm>
#include <cassert>

#include "mc/sample_pool.h"
#include "obs/metrics.h"

namespace gprq::cache {
namespace {

// Cache metrics, resolved once (the obs resolve-once idiom: GetCounter
// takes a lock and is not for per-lookup use).
struct CacheMetrics {
  obs::Counter* lookups;
  obs::Counter* hit_exact;
  obs::Counter* hit_semantic;
  obs::Counter* misses;
  obs::Counter* insertions;
  obs::Counter* evictions;
  obs::Counter* invalidations;
  obs::Gauge* entries;
  obs::Gauge* bytes;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return CacheMetrics{r.GetCounter("gprq.cache.lookups"),
                          r.GetCounter("gprq.cache.hit_exact"),
                          r.GetCounter("gprq.cache.hit_semantic"),
                          r.GetCounter("gprq.cache.misses"),
                          r.GetCounter("gprq.cache.insertions"),
                          r.GetCounter("gprq.cache.evictions"),
                          r.GetCounter("gprq.cache.invalidations"),
                          r.GetGauge("gprq.cache.entries"),
                          r.GetGauge("gprq.cache.bytes")};
    }();
    return metrics;
  }
};

// splitmix64 finalizer for key hashing (same mixer family as
// mc::QueryFingerprint; collisions here only cost a bucket probe).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

size_t EntryBytes(const CachedEntry& entry) {
  const size_t d = entry.dim;
  size_t bytes = sizeof(CachedEntry) + 2 * d * sizeof(double)  // box corners
                 + d * sizeof(double)                          // mean
                 + d * d * sizeof(double);                     // covariance
  bytes += entry.candidates.size() *
           (d * sizeof(double) + sizeof(std::pair<la::Vector, index::ObjectId>));
  bytes += entry.ids.size() * sizeof(index::ObjectId);
  return bytes;
}

}  // namespace

uint64_t FilterConfigBits(const core::PrqOptions& options) {
  uint64_t bits = static_cast<uint64_t>(options.strategies & core::kStrategyAll);
  if (options.use_catalogs) bits |= 1ull << 8;
  if (options.fringe_filter_any_dim) bits |= 1ull << 9;
  if (options.use_marginal_filter) bits |= 1ull << 10;
  // The pool variant changes which samples decide the θ boundary, so a
  // cached pseudo-random answer must never serve a Halton query (or vice
  // versa) — the variants are distinct cache partitions.
  bits |= static_cast<uint64_t>(options.pool_variant) << 11;
  return bits;
}

size_t ResultCache::ExactKeyHash::operator()(const ExactKey& k) const {
  uint64_t h = Mix64(k.fingerprint);
  h = Mix64(h ^ k.delta_bits);
  h = Mix64(h ^ k.theta_bits);
  h = Mix64(h ^ k.config_bits);
  return static_cast<size_t>(h);
}

size_t ResultCache::FamilyKeyHash::operator()(const FamilyKey& k) const {
  uint64_t h = Mix64(k.fingerprint);
  h = Mix64(h ^ k.delta_bits);
  h = Mix64(h ^ k.config_bits);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options) {
  assert(options_.max_entries >= 1);
  assert(options_.max_bytes >= 1);
}

ResultCache::ExactKey ResultCache::MakeExactKey(const core::PrqQuery& query,
                                                uint64_t config_bits) {
  return ExactKey{mc::QueryFingerprint(query.query_object),
                  mc::CanonicalDoubleBits(query.delta),
                  mc::CanonicalDoubleBits(query.theta), config_bits};
}

bool ResultCache::SameDistribution(const CachedEntry& entry,
                                   const core::PrqQuery& query) {
  const core::GaussianDistribution& g = query.query_object;
  if (entry.dim != g.dim()) return false;
  for (size_t i = 0; i < entry.dim; ++i) {
    if (mc::CanonicalDoubleBits(entry.mean[i]) !=
        mc::CanonicalDoubleBits(g.mean()[i])) {
      return false;
    }
  }
  const la::Matrix& cov = g.covariance();
  for (size_t i = 0; i < entry.dim; ++i) {
    for (size_t j = 0; j < entry.dim; ++j) {
      if (mc::CanonicalDoubleBits(entry.covariance(i, j)) !=
          mc::CanonicalDoubleBits(cov(i, j))) {
        return false;
      }
    }
  }
  return true;
}

void ResultCache::TouchLocked(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ResultCache::EraseLocked(LruList::iterator it) {
  exact_.erase(it->exact_key);
  auto family = families_.find(it->family_key);
  if (family != families_.end()) {
    auto& members = family->second;
    members.erase(std::find(members.begin(), members.end(), it));
    if (members.empty()) families_.erase(family);
  }
  bytes_ -= it->entry->bytes;
  lru_.erase(it);
}

void ResultCache::EvictToFitLocked() {
  const CacheMetrics& metrics = CacheMetrics::Get();
  while (lru_.size() > options_.max_entries || bytes_ > options_.max_bytes) {
    assert(!lru_.empty());
    EraseLocked(std::prev(lru_.end()));
    metrics.evictions->Add(1);
  }
}

ResultCache::Lookup ResultCache::Find(const core::PrqQuery& query,
                                      uint64_t config_bits, uint64_t epoch) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  const ExactKey key = MakeExactKey(query, config_bits);
  std::lock_guard<std::mutex> lock(mutex_);
  metrics.lookups->Add(1);
  if (epoch < epoch_) {
    // The caller's pin predates a commit whose invalidation already ran:
    // surviving entries answer for the latest epoch, not this pin's.
    metrics.misses->Add(1);
    return {};
  }

  auto exact = exact_.find(key);
  if (exact != exact_.end() &&
      SameDistribution(*exact->second->entry, query)) {
    TouchLocked(exact->second);
    metrics.hit_exact->Add(1);
    return {HitKind::kExact, lru_.front().entry};
  }

  if (options_.semantic) {
    // Containment rule: same distribution, δ and config, cached θ ≤ query
    // θ — the cached search box then contains the query's (every filter
    // radius is monotone in θ), so the cached candidate set covers every
    // point the query could return. Prefer the largest eligible θ: the
    // tightest superset leaves the least re-filtering.
    auto family = families_.find(
        FamilyKey{key.fingerprint, key.delta_bits, key.config_bits});
    if (family != families_.end()) {
      LruList::iterator best = lru_.end();
      for (LruList::iterator it : family->second) {
        if (!(it->entry->theta <= query.theta)) continue;
        if (!SameDistribution(*it->entry, query)) continue;
        if (best == lru_.end() || it->entry->theta > best->entry->theta) {
          best = it;
        }
      }
      if (best != lru_.end()) {
        TouchLocked(best);
        metrics.hit_semantic->Add(1);
        return {HitKind::kSemantic, lru_.front().entry};
      }
    }
  }

  metrics.misses->Add(1);
  return {};
}

void ResultCache::Insert(
    const core::PrqQuery& query, uint64_t config_bits,
    const geom::Rect& search_box,
    std::vector<std::pair<la::Vector, index::ObjectId>> candidates,
    std::vector<index::ObjectId> ids, uint64_t epoch) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  auto entry = std::make_shared<CachedEntry>();
  entry->dim = query.query_object.dim();
  entry->mean = query.query_object.mean();
  entry->covariance = query.query_object.covariance();
  entry->delta = query.delta;
  entry->theta = query.theta;
  entry->config_bits = config_bits;
  entry->search_box = search_box;
  entry->candidates = std::move(candidates);
  entry->ids = std::move(ids);
  entry->bytes = EntryBytes(*entry);
  if (entry->bytes > options_.max_bytes) return;  // would evict everything

  const ExactKey key = MakeExactKey(query, config_bits);
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch < epoch_) {
    // Computed against a pre-commit snapshot whose region invalidation
    // has already run — publishing it now would resurrect a stale answer.
    return;
  }
  auto existing = exact_.find(key);
  if (existing != exact_.end()) {
    // Deterministic answers cannot disagree; keep the stored entry, just
    // refresh its recency.
    TouchLocked(existing->second);
    return;
  }
  const FamilyKey family_key{key.fingerprint, key.delta_bits,
                             key.config_bits};
  lru_.push_front(Node{key, family_key, std::move(entry)});
  exact_.emplace(key, lru_.begin());
  families_[family_key].push_back(lru_.begin());
  bytes_ += lru_.front().entry->bytes;
  metrics.insertions->Add(1);
  EvictToFitLocked();
  metrics.entries->Set(static_cast<double>(lru_.size()));
  metrics.bytes->Set(static_cast<double>(bytes_));
}

void ResultCache::InvalidateAll() {
  const CacheMetrics& metrics = CacheMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  metrics.invalidations->Add(lru_.size());
  lru_.clear();
  exact_.clear();
  families_.clear();
  bytes_ = 0;
  metrics.entries->Set(0.0);
  metrics.bytes->Set(0.0);
}

size_t ResultCache::InvalidateLocked(const geom::Rect& region) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (it->entry->search_box.dim() == region.dim() &&
        it->entry->search_box.Intersects(region)) {
      EraseLocked(it);
      ++dropped;
    }
    it = next;
  }
  metrics.invalidations->Add(dropped);
  metrics.entries->Set(static_cast<double>(lru_.size()));
  metrics.bytes->Set(static_cast<double>(bytes_));
  return dropped;
}

size_t ResultCache::Invalidate(const geom::Rect& region) {
  std::lock_guard<std::mutex> lock(mutex_);
  return InvalidateLocked(region);
}

size_t ResultCache::BeginEpoch(uint64_t epoch, const geom::Rect& dirty_region) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The advance and the drop share one critical section: a stale-pinned
  // Insert serialises either before both (the drop removes it) or after
  // both (the epoch check rejects it) — never in between.
  if (epoch > epoch_) epoch_ = epoch;
  if (dirty_region.IsEmpty()) return 0;
  return InvalidateLocked(dirty_region);
}

uint64_t ResultCache::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace gprq::cache
