#ifndef GPRQ_CACHE_RESULT_CACHE_H_
#define GPRQ_CACHE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/prq.h"
#include "geom/rect.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace gprq::cache {

/// The PrqOptions fields that change what a query *returns* (not how fast):
/// the strategy mask, catalog rounding, fringe-filter scope and the marginal
/// extension. Two executions agree bit-for-bit only when these agree, so
/// they are part of every cache key. Deadlines, budgets and priority are
/// deliberately excluded — they truncate work, never alter decided ids.
uint64_t FilterConfigBits(const core::PrqOptions& options);

struct ResultCacheOptions {
  /// Hard entry cap (LRU evicts beyond it). Must be >= 1.
  size_t max_entries = 1024;
  /// Approximate memory cap over entry payloads (candidate points, ids,
  /// covariance copies). Must be >= 1; LRU evicts beyond it.
  size_t max_bytes = 64ull << 20;
  /// false restricts the cache to exact hits (the containment rule off —
  /// for differential testing and paranoid deployments).
  bool semantic = true;
};

/// One cached complete answer, immutable once published. `candidates` is
/// the accepted ∪ survivors set of the cached execution — every dataset
/// point that could qualify at the cached (δ, θ) or at any *stricter* θ' ≥
/// θ: Phase-2 filters only remove certain non-qualifiers, and each filter's
/// pass-set shrinks as θ grows (r_θ, α_outer, the oblique region and the
/// marginal bound are all monotone), so a point pruned at θ is pruned — or
/// Phase-3-rejected — at every θ' ≥ θ. That monotonicity is the containment
/// rule: re-filtering `candidates` at θ' (PrqEngine::FilterCandidateSet)
/// reproduces the fresh survivor set exactly, and the deterministic
/// per-query sample pool then reproduces the fresh decisions bit-for-bit.
struct CachedEntry {
  size_t dim = 0;
  la::Vector mean;
  la::Matrix covariance;
  double delta = 0.0;
  double theta = 0.0;
  uint64_t config_bits = 0;
  /// The cached query's Phase-1 search box; kept for region invalidation
  /// (an online update inside the box poisons the entry).
  geom::Rect search_box;
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  std::vector<index::ObjectId> ids;
  size_t bytes = 0;
};

/// Fingerprint-keyed semantic result cache for complete PRQ answers.
///
/// Exact hit: canonically identical distribution (mc::QueryFingerprint over
/// CanonicalDoubleBits — -0.0 and +0.0 encodings hit the same entry), same
/// δ, same θ, same filter config. The stored ids are served verbatim.
///
/// Semantic hit: same distribution, δ and config, cached θ ≤ query θ. The
/// cached wider answer's candidate set is served for re-filtering at the
/// narrower θ (see CachedEntry); the caller runs FilterCandidateSet +
/// Phase 3 and gets ids set-identical to a fresh execution at a fraction of
/// the cost (no index search, and typically far fewer candidates). Among
/// multiple eligible entries the one with the largest θ ≤ query θ wins —
/// the tightest superset is the cheapest to re-filter.
///
/// Every hit verifies full mean/covariance equality against the entry (a
/// fingerprint is 64 bits; a collision must degrade to a miss, not a wrong
/// answer). Bounded by max_entries and max_bytes with LRU eviction; all
/// methods are thread-safe. Metrics under `gprq.cache.*`.
///
/// Entries are only valid for a fixed dataset and a fixed Phase-3
/// configuration (evaluator seed and sample count): the owning executor
/// must InvalidateAll() on any dataset or evaluator change.
///
/// Online updates (storage::StorageEngine) instead drive the epoch
/// protocol: every commit calls BeginEpoch(new_epoch, dirty_region)
/// *before* publishing its snapshot, which — in one critical section —
/// drops poisoned entries and advances the cache's epoch. Readers pass
/// their pinned epoch to Find/Insert; a lookup or publication whose pin
/// is behind the cache's epoch degrades to a miss / no-op. Together
/// these close both commit/query races: a reader pinning the new epoch
/// can never hit a not-yet-invalidated entry (invalidation happens
/// before the epoch is pinnable), and a reader that pinned the old
/// epoch can never install an answer computed before a commit that has
/// already invalidated (its stale pin is rejected under the same lock
/// the commit advanced the epoch under). Static deployments (no storage
/// engine) simply never call BeginEpoch: the epoch stays 0 and the
/// default arguments preserve the old behaviour.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options);

  enum class HitKind { kMiss, kExact, kSemantic };
  struct Lookup {
    HitKind kind = HitKind::kMiss;
    std::shared_ptr<const CachedEntry> entry;  // set unless kMiss
  };

  /// Looks the query up (exact first, then the semantic containment rule
  /// unless disabled). Records gprq.cache.{lookups,hit_exact,hit_semantic,
  /// misses} and refreshes the entry's LRU position on a hit. `epoch` is
  /// the caller's pinned snapshot epoch: when it is behind the cache's
  /// (a commit published since the pin), the lookup is a miss — surviving
  /// entries answer for the *latest* epoch, not the caller's.
  Lookup Find(const core::PrqQuery& query, uint64_t config_bits,
              uint64_t epoch = 0);

  /// Publishes a complete answer. `candidates` must be the execution's
  /// accepted ∪ survivors set (with coordinates) and `ids` its complete
  /// result; the caller must not insert degraded, partial or proved-empty
  /// results. Re-inserting an existing exact key refreshes its LRU position
  /// and keeps the stored entry (answers are deterministic — they cannot
  /// disagree). May evict LRU entries to satisfy the bounds; an entry
  /// larger than max_bytes on its own is dropped, not inserted. `epoch`
  /// is the snapshot epoch the answer was computed against: when it is
  /// behind the cache's epoch (a commit invalidated since the pin), the
  /// answer may be stale for the live tree and is silently dropped.
  void Insert(const core::PrqQuery& query, uint64_t config_bits,
              const geom::Rect& search_box,
              std::vector<std::pair<la::Vector, index::ObjectId>> candidates,
              std::vector<index::ObjectId> ids, uint64_t epoch = 0);

  /// Drops every entry (dataset reload, evaluator reconfiguration).
  void InvalidateAll();

  /// Drops entries whose search box intersects `region` — the hook for
  /// online updates: an insert/delete at point p can only change answers
  /// whose search box contains p, and box-intersection over-approximates
  /// that. Returns the number of entries dropped.
  size_t Invalidate(const geom::Rect& region);

  /// The commit hook: atomically advances the cache's epoch to `epoch`
  /// and drops every entry whose search box intersects `dirty_region`
  /// (one critical section — no window where the new epoch can pair with
  /// a not-yet-dropped entry, or a stale-pinned Insert can slip in after
  /// the drop). MUST be called *before* the new snapshot is published to
  /// readers. Returns the number of entries dropped.
  size_t BeginEpoch(uint64_t epoch, const geom::Rect& dirty_region);

  /// The epoch stale pins are validated against (0 until BeginEpoch).
  uint64_t epoch() const;

  size_t entries() const;
  size_t bytes() const;

 private:
  struct ExactKey {
    uint64_t fingerprint = 0;
    uint64_t delta_bits = 0;
    uint64_t theta_bits = 0;
    uint64_t config_bits = 0;
    bool operator==(const ExactKey&) const = default;
  };
  struct FamilyKey {
    uint64_t fingerprint = 0;
    uint64_t delta_bits = 0;
    uint64_t config_bits = 0;
    bool operator==(const FamilyKey&) const = default;
  };
  struct ExactKeyHash {
    size_t operator()(const ExactKey& k) const;
  };
  struct FamilyKeyHash {
    size_t operator()(const FamilyKey& k) const;
  };

  /// LRU node: the immutable payload plus the keys needed to unmap it on
  /// eviction.
  struct Node {
    ExactKey exact_key;
    FamilyKey family_key;
    std::shared_ptr<const CachedEntry> entry;
  };
  using LruList = std::list<Node>;

  static ExactKey MakeExactKey(const core::PrqQuery& query,
                               uint64_t config_bits);
  /// True when the entry's stored distribution is canonically identical to
  /// the query's (element-wise CanonicalDoubleBits over mean and
  /// covariance) — the collision-safety check behind every hit.
  static bool SameDistribution(const CachedEntry& entry,
                               const core::PrqQuery& query);

  void TouchLocked(LruList::iterator it);
  void EraseLocked(LruList::iterator it);
  void EvictToFitLocked();
  size_t InvalidateLocked(const geom::Rect& region);

  const ResultCacheOptions options_;

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recent
  std::unordered_map<ExactKey, LruList::iterator, ExactKeyHash> exact_;
  std::unordered_map<FamilyKey, std::vector<LruList::iterator>, FamilyKeyHash>
      families_;
  size_t bytes_ = 0;
  /// Latest storage epoch whose invalidation has run (BeginEpoch); pins
  /// behind it are rejected in Find and Insert.
  uint64_t epoch_ = 0;
};

}  // namespace gprq::cache

#endif  // GPRQ_CACHE_RESULT_CACHE_H_
