#include "common/circuit_breaker.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace gprq::common {
namespace {

// Breaker telemetry, resolved once. Every breaker in the process shares
// these counters; the state gauge reflects the most recent transition,
// which is exact in the expected single-breaker deployment (one per paged
// tree) and still a usable "something is open" signal with several.
struct BreakerMetrics {
  obs::Counter* trips;
  obs::Counter* fast_fails;
  obs::Counter* probes;
  obs::Counter* recoveries;
  obs::Gauge* state;

  static const BreakerMetrics& Get() {
    static const BreakerMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return BreakerMetrics{r.GetCounter("gprq.overload.breaker.trips"),
                            r.GetCounter("gprq.overload.breaker.fast_fails"),
                            r.GetCounter("gprq.overload.breaker.probes"),
                            r.GetCounter("gprq.overload.breaker.recoveries"),
                            r.GetGauge("gprq.overload.breaker.state")};
    }();
    return metrics;
  }
};

}  // namespace

Status CircuitBreakerOptions::Validate() const {
  if (failure_threshold < 1) {
    return Status::InvalidArgument("failure_threshold must be >= 1");
  }
  if (!(open_seconds > 0.0)) {
    return Status::InvalidArgument("open_seconds must be > 0");
  }
  if (half_open_probes < 1) {
    return Status::InvalidArgument("half_open_probes must be >= 1");
  }
  return Status::OK();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options,
                               std::string name)
    : options_{std::max(options.failure_threshold, 1),
               std::max(options.open_seconds, 1e-6),
               std::max(options.half_open_probes, 1)},
      name_(std::move(name)) {}

Status CircuitBreaker::RejectedStatus(double retry_after_seconds) const {
  char msg[160];
  std::snprintf(msg, sizeof(msg),
                "circuit breaker open for %s; retry_after_ms=%d",
                name_.c_str(),
                std::max(1, static_cast<int>(retry_after_seconds * 1e3)));
  return Status::ResourceExhausted(msg);
}

Status CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen: {
      const Clock::time_point now = Clock::now();
      if (now < reopen_at_) {
        BreakerMetrics::Get().fast_fails->Add(1);
        return RejectedStatus(
            std::chrono::duration<double>(reopen_at_ - now).count());
      }
      // Open timer elapsed: move to half-open and admit this call as the
      // first probe.
      state_ = State::kHalfOpen;
      probes_inflight_ = 1;
      probe_successes_ = 0;
      BreakerMetrics::Get().probes->Add(1);
      BreakerMetrics::Get().state->Set(static_cast<int64_t>(state_));
      return Status::OK();
    }
    case State::kHalfOpen: {
      if (probes_inflight_ + probe_successes_ < options_.half_open_probes) {
        ++probes_inflight_;
        BreakerMetrics::Get().probes->Add(1);
        return Status::OK();
      }
      // Probe quota taken: keep other callers out until the probes report.
      BreakerMetrics::Get().fast_fails->Add(1);
      return RejectedStatus(options_.open_seconds);
    }
  }
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probes_inflight_ = std::max(probes_inflight_ - 1, 0);
    if (++probe_successes_ >= options_.half_open_probes) {
      state_ = State::kClosed;
      probes_inflight_ = 0;
      probe_successes_ = 0;
      BreakerMetrics::Get().recoveries->Add(1);
      BreakerMetrics::Get().state->Set(static_cast<int64_t>(state_));
    }
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately: the dependency is still down.
    state_ = State::kOpen;
    probes_inflight_ = 0;
    probe_successes_ = 0;
    ++trips_;
    consecutive_failures_ = options_.failure_threshold;
    reopen_at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        options_.open_seconds));
    BreakerMetrics::Get().trips->Add(1);
    BreakerMetrics::Get().state->Set(static_cast<int64_t>(state_));
    return;
  }
  if (state_ == State::kOpen) return;  // not an admitted call; ignore
  if (++consecutive_failures_ >=
      static_cast<uint64_t>(options_.failure_threshold)) {
    state_ = State::kOpen;
    ++trips_;
    reopen_at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        options_.open_seconds));
    BreakerMetrics::Get().trips->Add(1);
    BreakerMetrics::Get().state->Set(static_cast<int64_t>(state_));
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

const char* CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace gprq::common
