#ifndef GPRQ_COMMON_CIRCUIT_BREAKER_H_
#define GPRQ_COMMON_CIRCUIT_BREAKER_H_

// A generic circuit breaker for fallible dependencies (the paged tree's
// page reads, concretely). The existing per-query retry loop
// (PagedRStarTree::GetPageWithRetry) handles *transient* faults well, but
// when storage is persistently failing every query burns its full retry
// budget — attempts × backoff — before degrading. The breaker converts
// that into a fast ResourceExhausted after `failure_threshold` consecutive
// failures, then periodically lets a probe through (half-open) to detect
// recovery, so storage faults cost microseconds instead of retry storms.
//
// Closed ──(N consecutive failures)──▶ Open ──(open_seconds)──▶ HalfOpen
//   ▲                                                │        │
//   └────────(half_open_probes successes)────────────┘        │
//                 Open ◀──────(any probe failure)─────────────┘
//
// Usage contract: call Allow() before the protected operation; when it
// returns OK, report the outcome with exactly one RecordSuccess() or
// RecordFailure(). When Allow() rejects, skip the operation and propagate
// the returned ResourceExhausted (it carries a retry_after_ms hint).
// Thread-safe; all transitions happen under one mutex (the protected
// operations are I/O, orders of magnitude slower than the lock).

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace gprq::common {

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long the breaker stays open before letting a probe through.
  double open_seconds = 0.1;
  /// Probe successes required in half-open before closing again.
  int half_open_probes = 1;

  Status Validate() const;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// `name` labels rejection messages (e.g. "paged-tree reads"); caller
  /// validates options (invalid fields are clamped to their minimums).
  explicit CircuitBreaker(CircuitBreakerOptions options = {},
                          std::string name = "dependency");

  /// OK when the protected call may proceed (closed, or an admitted
  /// half-open probe); ResourceExhausted with a retry_after_ms hint while
  /// open or while the probe quota is taken.
  Status Allow();

  /// Outcome reports for a call Allow() admitted.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  uint64_t consecutive_failures() const;
  uint64_t trips() const;

 private:
  using Clock = std::chrono::steady_clock;

  Status RejectedStatus(double retry_after_seconds) const;

  const CircuitBreakerOptions options_;
  const std::string name_;

  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  uint64_t consecutive_failures_ = 0;
  uint64_t trips_ = 0;
  int probes_inflight_ = 0;
  int probe_successes_ = 0;
  Clock::time_point reopen_at_{};
};

const char* CircuitBreakerStateName(CircuitBreaker::State state);

}  // namespace gprq::common

#endif  // GPRQ_COMMON_CIRCUIT_BREAKER_H_
