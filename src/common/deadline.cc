#include "common/deadline.h"

namespace gprq::common {

Status QueryControl::StopStatus() const {
  if (cancel.cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace gprq::common
