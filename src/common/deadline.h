#ifndef GPRQ_COMMON_DEADLINE_H_
#define GPRQ_COMMON_DEADLINE_H_

// Per-query execution control: wall-clock deadlines and cooperative
// cancellation, carried by core::PrqOptions through every phase of the
// query path. The paper's own cost model makes graceful degradation
// possible: Phase-3 Monte-Carlo integration dominates query time (>= 97%,
// Section V-B) and is interruptible per candidate — a query cut short can
// still return a *sound* partial answer (exactly-decided candidates plus
// explicitly-undecided ones) instead of stalling a batch or being dropped.
//
// Cost contract: a default-constructed QueryControl is "unbounded" and its
// checks compile down to one branch on a flag — no clock reads, no atomic
// loads — so queries that never set a deadline pay nothing on the hot path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/status.h"

namespace gprq::common {

/// A point in time after which a query should stop and degrade. Infinite by
/// default. Cheap to copy (one time_point + one flag).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now (<= 0 yields an already-expired deadline).
  static Deadline After(double seconds) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  /// Already expired — the short-circuit case tests exercise.
  static Deadline Expired() { return After(0.0); }

  bool is_infinite() const { return infinite_; }

  bool expired() const {
    return !infinite_ && Clock::now() >= when_;
  }

  /// Seconds until expiry: +inf for an infinite deadline, <= 0 once
  /// expired.
  double remaining_seconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point when_{};
};

/// Read side of a cancellation flag. Default-constructed tokens are inert
/// (never cancelled) and cost one null check. Copies share the flag.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool can_be_cancelled() const { return flag_ != nullptr; }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: hand token() to the query, keep the source, Cancel() from
/// any thread. Cancellation is sticky — there is no un-cancel.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Deadline + cancellation, the pair every phase boundary checks. Cheap to
/// copy into Phase-3 worker tasks.
struct QueryControl {
  Deadline deadline;
  CancellationToken cancel;

  /// Per-candidate cap on Phase-3 Monte-Carlo samples; 0 means unlimited.
  /// Set by the brownout controller under overload: the sample pool is a
  /// pure function of (seed, query), so a capped decision either matches
  /// the unloaded run bit-for-bit or comes back explicitly undecided —
  /// returned ids stay exact under degradation.
  uint64_t sample_budget = 0;

  static QueryControl Unlimited() { return QueryControl(); }

  static QueryControl WithDeadline(Deadline d) {
    QueryControl control;
    control.deadline = d;
    return control;
  }

  /// True when no deadline, cancel flag, or sample budget is set — the
  /// fast path that lets ShouldStop be skipped without reading the clock.
  bool Unbounded() const {
    return deadline.is_infinite() && !cancel.can_be_cancelled() &&
           sample_budget == 0;
  }

  /// True when the query must stop now and degrade: cancelled, or past the
  /// deadline. The cancel check comes first (no clock read).
  bool ShouldStop() const {
    return cancel.cancelled() || deadline.expired();
  }

  /// The annotation a stopped query carries: Cancelled wins over
  /// DeadlineExceeded when both fired.
  Status StopStatus() const;
};

}  // namespace gprq::common

#endif  // GPRQ_COMMON_DEADLINE_H_
