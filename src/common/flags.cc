#include "common/flags.h"

#include <cerrno>
#include <cstdlib>

namespace gprq {

Result<FlagSet> FlagSet::Parse(const std::vector<std::string>& args) {
  FlagSet flags;
  size_t i = 0;
  if (!args.empty() && args[0].rfind("--", 0) != 0) {
    flags.command_ = args[0];
    i = 1;
  }
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("expected --flag, got '" + arg + "'");
    }
    const size_t equals = arg.find('=');
    if (equals != std::string::npos) {
      flags.values_[arg.substr(2, equals - 2)] = arg.substr(equals + 1);
      continue;
    }
    const std::string key = arg.substr(2);
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      flags.values_[key] = args[i + 1];
      ++i;
    } else {
      flags.values_[key] = "true";
    }
  }
  return flags;
}

bool FlagSet::Has(const std::string& key) const {
  if (values_.count(key) == 0) return false;
  used_[key] = true;
  return true;
}

std::string FlagSet::GetString(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  return it->second;
}

Result<double> FlagSet::GetDouble(const std::string& key,
                                  double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   it->second + "'");
  }
  return value;
}

Result<int64_t> FlagSet::GetInt(const std::string& key,
                                int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + key +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(value);
}

Result<std::vector<double>> FlagSet::GetDoubleList(
    const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("--" + key + " is required");
  }
  used_[key] = true;
  std::vector<double> values;
  const std::string& text = it->second;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string cell =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("--" + key + ": bad entry '" + cell +
                                     "'");
    }
    values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

std::vector<std::string> FlagSet::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (used_.count(key) == 0) unused.push_back(key);
  }
  return unused;
}

}  // namespace gprq
