#ifndef GPRQ_COMMON_FLAGS_H_
#define GPRQ_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gprq {

/// A minimal `--key value` / `--key=value` command-line parser for the CLI
/// tool. Grammar: the first non-flag token is the command; every flag must
/// start with `--`; `--key` followed by another flag or end-of-args is a
/// boolean flag with value "true".
class FlagSet {
 public:
  /// Parses argv (excluding argv[0]). Fails on malformed flags.
  static Result<FlagSet> Parse(const std::vector<std::string>& args);

  /// The leading non-flag token ("generate", "query", ...); empty if none.
  const std::string& command() const { return command_; }

  bool Has(const std::string& key) const;

  /// String value or fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Numeric accessors; fail on unparsable values.
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;

  /// Comma-separated doubles ("1.5,2,-3"); fails on malformed entries.
  Result<std::vector<double>> GetDoubleList(const std::string& key) const;

  /// Keys that were parsed but never read — for unknown-flag warnings.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace gprq

#endif  // GPRQ_COMMON_FLAGS_H_
