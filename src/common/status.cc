#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gprq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "gprq: value() called on errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gprq
