#ifndef GPRQ_COMMON_STATUS_H_
#define GPRQ_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace gprq {

/// Error categories used across the library. Modeled on the Arrow/RocksDB
/// Status idiom: the library does not throw; fallible operations return a
/// Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kNumericalError,   // e.g. non-positive-definite covariance, non-convergence
  kIoError,
  kInternal,
  kDeadlineExceeded,  // query deadline fired; partial results may exist
  kCancelled,         // query cancelled via a CancellationToken
  kResourceExhausted,  // overloaded: shed at admission, sample budget spent,
                       // or a tripped circuit breaker; retryable
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored Result aborts the process (programming error), mirroring
/// absl::StatusOr semantics without exceptions.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : repr_(std::move(value)) {}            // NOLINT
  Result(Status status) : repr_(std::move(status)) {}     // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> repr_;
};

namespace internal {
/// Aborts with the given status message; out-of-line to keep Result light.
[[noreturn]] void AbortOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortOnBadResultAccess(std::get<Status>(repr_));
}

/// Propagates a non-OK Status from an expression, Arrow-style.
#define GPRQ_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::gprq::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace gprq

#endif  // GPRQ_COMMON_STATUS_H_
