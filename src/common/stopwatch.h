#ifndef GPRQ_COMMON_STOPWATCH_H_
#define GPRQ_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace gprq {

/// Wall-clock stopwatch used by the query engine to attribute time to the
/// three query-processing phases.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds elapsed since construction or the last Reset() — the
  /// resolution the obs latency histograms record at.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer that reports a scope's duration into an obs::Histogram (in
/// nanoseconds) and optionally into a seconds field of a stats struct —
/// one construction replaces the Stopwatch + ElapsedSeconds/ElapsedMillis
/// pairs the engine and exec layers used to sprinkle by hand.
class ScopedTimer {
 public:
  /// Either sink may be null; a null histogram with a null seconds_out makes
  /// the timer a no-op.
  explicit ScopedTimer(obs::Histogram* histogram,
                       double* seconds_out = nullptr)
      : histogram_(histogram), seconds_out_(seconds_out) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Records now instead of at scope exit and disarms the destructor;
  /// returns the elapsed nanoseconds (0 on a second call).
  uint64_t Stop() {
    if (stopped_) return 0;
    stopped_ = true;
    const uint64_t nanos = watch_.ElapsedNanos();
    if (histogram_ != nullptr) histogram_->Record(nanos);
    if (seconds_out_ != nullptr) *seconds_out_ += nanos * 1e-9;
    return nanos;
  }

 private:
  Stopwatch watch_;
  obs::Histogram* histogram_;
  double* seconds_out_;
  bool stopped_ = false;
};

}  // namespace gprq

#endif  // GPRQ_COMMON_STOPWATCH_H_
