#include "core/alpha_catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "stats/noncentral_chi_squared.h"

namespace gprq::core {

namespace {

std::vector<double> LogSpaced(double lo, double hi, size_t steps) {
  std::vector<double> values(steps);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (size_t i = 0; i < steps; ++i) {
    values[i] = std::exp(log_lo + (log_hi - log_lo) * static_cast<double>(i) /
                                      static_cast<double>(steps - 1));
  }
  return values;
}

}  // namespace

AlphaCatalog AlphaCatalog::Build(size_t dim, const GridSpec& spec) {
  assert(dim >= 1);
  assert(spec.delta_steps >= 2 && spec.theta_steps >= 2 &&
         spec.alpha_steps >= 8);
  assert(spec.delta_min > 0.0 && spec.delta_min < spec.delta_max);
  assert(spec.theta_min > 0.0 && spec.theta_min < spec.theta_max &&
         spec.theta_max < 1.0);

  std::vector<double> deltas =
      LogSpaced(spec.delta_min, spec.delta_max, spec.delta_steps);
  std::vector<double> thetas =
      LogSpaced(spec.theta_min, spec.theta_max, spec.theta_steps);

  std::vector<double> outer(spec.delta_steps * spec.theta_steps, kNoEntry);
  std::vector<double> inner(spec.delta_steps * spec.theta_steps, kNoEntry);

  // α must reach far enough that the ball mass drops below theta_min: the
  // mass is bounded by the 1-D normal tail Φ(δ − α), so δ + 8 is ample for
  // theta_min >= 1e-9 (Φ(−8) ≈ 6e-16, with margin for the d-dim geometry).
  std::vector<double> masses(spec.alpha_steps);
  for (size_t i = 0; i < spec.delta_steps; ++i) {
    const double delta = deltas[i];
    const double alpha_max =
        delta + 8.0 + 2.0 * std::sqrt(static_cast<double>(dim));
    for (size_t k = 0; k < spec.alpha_steps; ++k) {
      const double alpha = alpha_max * static_cast<double>(k) /
                           static_cast<double>(spec.alpha_steps - 1);
      masses[k] = stats::OffsetGaussianBallMass(dim, alpha, delta);
    }
    // Numerical noise can break strict monotonicity at the 1e-14 level;
    // enforce it so the bracketing below stays valid.
    for (size_t k = 1; k < spec.alpha_steps; ++k) {
      masses[k] = std::min(masses[k], masses[k - 1]);
    }

    for (size_t j = 0; j < spec.theta_steps; ++j) {
      const double theta = thetas[j];
      double* out = &outer[i * spec.theta_steps + j];
      double* in = &inner[i * spec.theta_steps + j];
      if (theta > masses[0]) {
        *out = kUnreachable;
        *in = kUnreachable;
        continue;
      }
      // Smallest grid α with mass(α) <= θ → conservative outer radius
      // (true α is between this grid point and the previous one).
      const auto it = std::partition_point(
          masses.begin(), masses.end(),
          [theta](double mass) { return mass > theta; });
      if (it == masses.end()) {
        // The sweep never dropped below θ (cannot happen with the α range
        // above, but stay safe).
        continue;
      }
      const size_t k = static_cast<size_t>(it - masses.begin());
      const double alpha_step = alpha_max / static_cast<double>(
                                                spec.alpha_steps - 1);
      *out = static_cast<double>(k) * alpha_step;
      // Largest grid α with mass(α) >= θ → conservative inner radius.
      *in = (k > 0) ? static_cast<double>(k - 1) * alpha_step : 0.0;
    }
  }
  return AlphaCatalog(dim, std::move(deltas), std::move(thetas),
                      std::move(outer), std::move(inner));
}

AlphaLookup AlphaCatalog::LookupOuter(double delta, double theta) const {
  assert(delta > 0.0);
  assert(theta > 0.0 && theta < 1.0);
  // Smallest grid δ >= delta.
  auto dit = std::lower_bound(deltas_.begin(), deltas_.end(), delta);
  if (dit == deltas_.end()) return {AlphaLookup::Kind::kUnavailable, 0.0};
  // Largest grid θ <= theta.
  auto tit = std::upper_bound(thetas_.begin(), thetas_.end(), theta);
  if (tit == thetas_.begin()) return {AlphaLookup::Kind::kUnavailable, 0.0};
  const size_t di = static_cast<size_t>(dit - deltas_.begin());
  const size_t tj = static_cast<size_t>(tit - thetas_.begin()) - 1;
  const double alpha = outer_[di * thetas_.size() + tj];
  if (alpha == kUnreachable) {
    // The grid point dominates the query (δ_grid >= δ, θ_grid <= θ), so if
    // even it is unreachable, the query's mass threshold is unreachable too.
    return {AlphaLookup::Kind::kNothingQualifies, 0.0};
  }
  if (alpha == kNoEntry) return {AlphaLookup::Kind::kUnavailable, 0.0};
  return {AlphaLookup::Kind::kValue, alpha};
}

AlphaLookup AlphaCatalog::LookupInner(double delta, double theta) const {
  assert(delta > 0.0);
  assert(theta > 0.0 && theta < 1.0);
  // Largest grid δ <= delta.
  auto dit = std::upper_bound(deltas_.begin(), deltas_.end(), delta);
  if (dit == deltas_.begin()) return {AlphaLookup::Kind::kUnavailable, 0.0};
  // Smallest grid θ >= theta.
  auto tit = std::lower_bound(thetas_.begin(), thetas_.end(), theta);
  if (tit == thetas_.end()) return {AlphaLookup::Kind::kUnavailable, 0.0};
  const size_t di = static_cast<size_t>(dit - deltas_.begin()) - 1;
  const size_t tj = static_cast<size_t>(tit - thetas_.begin());
  const double alpha = inner_[di * thetas_.size() + tj];
  if (alpha == kUnreachable || alpha == kNoEntry) {
    // No free-accept ball exists at the dominated grid point; the inner
    // bound is an optimization, never required.
    return {AlphaLookup::Kind::kUnavailable, 0.0};
  }
  return {AlphaLookup::Kind::kValue, alpha};
}

AlphaLookup AlphaCatalog::Exact(size_t dim, double delta, double theta) {
  assert(delta > 0.0);
  assert(theta > 0.0 && theta < 1.0);
  const double alpha = stats::SolveBallCenterOffset(dim, delta, theta);
  if (alpha < 0.0) return {AlphaLookup::Kind::kNothingQualifies, 0.0};
  return {AlphaLookup::Kind::kValue, alpha};
}

namespace {

constexpr uint64_t kAlphaCatalogMagic = 0x4750525141434154ULL;  // "GPRQACAT"

bool WriteVector(std::FILE* file, const std::vector<double>& values) {
  const uint64_t count = values.size();
  return std::fwrite(&count, sizeof(count), 1, file) == 1 &&
         std::fwrite(values.data(), sizeof(double), values.size(), file) ==
             values.size();
}

bool ReadVector(std::FILE* file, std::vector<double>* values,
                size_t max_entries) {
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, file) != 1) return false;
  if (count > max_entries) return false;
  values->resize(static_cast<size_t>(count));
  return std::fread(values->data(), sizeof(double), values->size(), file) ==
         values->size();
}

}  // namespace

Status AlphaCatalog::Save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "'");
  }
  const uint64_t header[2] = {kAlphaCatalogMagic, static_cast<uint64_t>(dim_)};
  bool ok = std::fwrite(header, sizeof(header), 1, file) == 1;
  ok = ok && WriteVector(file, deltas_);
  ok = ok && WriteVector(file, thetas_);
  ok = ok && WriteVector(file, outer_);
  ok = ok && WriteVector(file, inner_);
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<AlphaCatalog> AlphaCatalog::Load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  uint64_t header[2];
  if (std::fread(header, sizeof(header), 1, file) != 1 ||
      header[0] != kAlphaCatalogMagic) {
    std::fclose(file);
    return Status::IoError("not an alpha catalog");
  }
  const size_t dim = static_cast<size_t>(header[1]);
  constexpr size_t kMax = size_t{1} << 28;
  std::vector<double> deltas, thetas, outer, inner;
  const bool ok = ReadVector(file, &deltas, kMax) &&
                  ReadVector(file, &thetas, kMax) &&
                  ReadVector(file, &outer, kMax) &&
                  ReadVector(file, &inner, kMax);
  std::fclose(file);
  if (!ok || dim < 1 || deltas.size() < 2 || thetas.size() < 2 ||
      outer.size() != deltas.size() * thetas.size() ||
      inner.size() != outer.size()) {
    return Status::IoError("corrupt alpha catalog");
  }
  return AlphaCatalog(dim, std::move(deltas), std::move(thetas),
                      std::move(outer), std::move(inner));
}

}  // namespace gprq::core

