#ifndef GPRQ_CORE_ALPHA_CATALOG_H_
#define GPRQ_CORE_ALPHA_CATALOG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace gprq::core {

/// Outcome of a U-catalog α lookup for the BF strategy.
struct AlphaLookup {
  enum class Kind {
    /// A usable α value was found.
    kValue,
    /// Even a ball centered on the mean cannot reach the requested mass —
    /// for the outer (upper-bound) lookup this proves that *no* object can
    /// qualify and the query result is empty.
    kNothingQualifies,
    /// The request falls outside the tabulated grid; the caller must fall
    /// back to an exact computation (or skip this bound).
    kUnavailable,
  };

  Kind kind = Kind::kUnavailable;
  double alpha = 0.0;
};

struct AlphaCatalogGridSpec {
  double delta_min = 1e-3;
  double delta_max = 1e3;
  size_t delta_steps = 96;
  double theta_min = 1e-9;
  double theta_max = 0.999;
  size_t theta_steps = 128;
  /// Resolution of the internal α sweep per δ row (the rounding
  /// granularity of returned radii).
  size_t alpha_steps = 512;
};

/// The paper's U-catalog of (δ, θ, α) triples for the BF strategy
/// (Section IV-C): α is the center offset at which a δ-ball under the
/// normalized Gaussian holds mass exactly θ. Query-time lookups use the
/// paper's conservative rounding (Eqs. 32–33):
///
///   outer: β∗∥ = min{α : δ_grid >= δ, θ_grid <= θ}  (never under-prunes)
///   inner: β∗⊥ = max{α : δ_grid <= δ, θ_grid >= θ}  (never over-accepts)
///
/// Built once per dimension: for each grid δ the ball mass is evaluated on
/// an α sweep (one noncentral chi-squared CDF per point — the mass is
/// strictly decreasing in α), and each grid θ is bracketed from above
/// (outer table) and below (inner table), preserving conservativeness
/// through the additional α-rounding.
class AlphaCatalog {
 public:
  using GridSpec = AlphaCatalogGridSpec;

  static AlphaCatalog Build(size_t dim, const GridSpec& spec = GridSpec());

  size_t dim() const { return dim_; }

  /// Conservative outer lookup (Eq. 32); see AlphaLookup for semantics.
  AlphaLookup LookupOuter(double delta, double theta) const;

  /// Conservative inner lookup (Eq. 33).
  AlphaLookup LookupInner(double delta, double theta) const;

  /// Exact α without a table (bisection on the noncentral chi-squared CDF);
  /// kNothingQualifies when the mass is unreachable even at the center.
  static AlphaLookup Exact(size_t dim, double delta, double theta);

  /// Persists the table (ship precomputed U-catalogs instead of paying the
  /// build once per process).
  Status Save(const std::string& path) const;
  static Result<AlphaCatalog> Load(const std::string& path);

 private:
  static constexpr double kUnreachable = -1.0;
  static constexpr double kNoEntry = -2.0;

  AlphaCatalog(size_t dim, std::vector<double> deltas,
               std::vector<double> thetas, std::vector<double> outer,
               std::vector<double> inner)
      : dim_(dim),
        deltas_(std::move(deltas)),
        thetas_(std::move(thetas)),
        outer_(std::move(outer)),
        inner_(std::move(inner)) {}

  size_t dim_;
  std::vector<double> deltas_;  // ascending
  std::vector<double> thetas_;  // ascending
  // Row-major [delta][theta]; kUnreachable = θ above the centered mass,
  // kNoEntry = the α sweep did not reach this θ (lookup falls back).
  std::vector<double> outer_;
  std::vector<double> inner_;
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_ALPHA_CATALOG_H_
