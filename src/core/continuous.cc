#include "core/continuous.h"

#include <cmath>
#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "core/filter_pipeline.h"
#include "core/filters.h"
#include "core/radius_catalog.h"

namespace gprq::core {

ContinuousPrqMonitor::ContinuousPrqMonitor(const index::RStarTree* tree,
                                           Options options)
    : tree_(tree), options_(options), engine_(tree) {}

Result<geom::Rect> ContinuousPrqMonitor::SearchBox(const PrqQuery& query,
                                                   bool* proved_empty) {
  *proved_empty = false;
  const GaussianDistribution& g = query.query_object;
  const size_t d = tree_->dim();
  const bool use_rr = options_.prq.strategies & kStrategyRR;
  const bool use_bf = options_.prq.strategies & kStrategyBF;
  const double r_theta =
      engine_.EffectiveThetaRadius(query.theta, options_.prq.use_catalogs);

  geom::Rect box = geom::Rect::Empty(d);
  BfBounds bf;
  if (use_bf) {
    bf = BfBounds::Compute(g, query.delta, query.theta,
                           options_.prq.use_catalogs ? &engine_.alpha_catalog()
                                                     : nullptr);
    if (bf.nothing_qualifies) {
      *proved_empty = true;
      return box;
    }
  }
  if (use_rr) {
    box = RrRegion::Compute(g, query.delta, r_theta).search_box;
    if (use_bf) {
      const geom::Rect bf_box =
          geom::Rect::CenteredUniform(g.mean(), bf.alpha_outer);
      la::Vector lo(d), hi(d);
      for (size_t i = 0; i < d; ++i) {
        lo[i] = std::max(box.lo()[i], bf_box.lo()[i]);
        hi[i] = std::min(box.hi()[i], bf_box.hi()[i]);
        if (lo[i] > hi[i]) {
          *proved_empty = true;
          return geom::Rect::Empty(d);
        }
      }
      box = geom::Rect(std::move(lo), std::move(hi));
    }
  } else if (use_bf) {
    box = geom::Rect::CenteredUniform(g.mean(), bf.alpha_outer);
  } else {
    box = OrRegion::Compute(g, query.delta, r_theta).BoundingBox(g);
  }
  return box;
}

Result<std::vector<index::ObjectId>> ContinuousPrqMonitor::Update(
    const PrqQuery& query, mc::ProbabilityEvaluator* evaluator,
    TickStats* stats) {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  if (query.query_object.dim() != tree_->dim()) {
    return Status::InvalidArgument("query dimension does not match index");
  }
  if (!(query.delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  if (!(query.theta > 0.0 && query.theta < 1.0)) {
    return Status::InvalidArgument("theta must be in (0, 1)");
  }
  if ((options_.prq.strategies & kStrategyAll) == 0) {
    return Status::InvalidArgument("at least one strategy must be enabled");
  }
  TickStats local;
  TickStats& out = (stats != nullptr) ? *stats : local;
  out = TickStats();
  ++monitor_stats_.ticks;

  Stopwatch phase_timer;
  bool proved_empty = false;
  auto box = SearchBox(query, &proved_empty);
  if (!box.ok()) return box.status();
  if (proved_empty) {
    out.proved_empty = true;
    return std::vector<index::ObjectId>{};
  }
  out.prep_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 1: buffer reuse or refetch. ----------------------------------
  if (!buffer_valid_ || !buffer_box_.Contains(*box)) {
    buffer_box_ = box->Inflated(options_.buffer_margin);
    buffer_.clear();
    const uint64_t reads_before = tree_->stats().node_reads;
    tree_->RangeQuery(buffer_box_,
                      [this](const la::Vector& point, index::ObjectId id) {
                        buffer_.emplace_back(point, id);
                      });
    out.node_reads = tree_->stats().node_reads - reads_before;
    monitor_stats_.node_reads += out.node_reads;
    buffer_valid_ = true;
    out.refetched = true;
    ++monitor_stats_.refetches;
  }
  out.buffered_candidates = buffer_.size();

  // Restrict the buffer to the current search region: this reproduces
  // exactly what a fresh Phase-1 index search would have returned.
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  for (const auto& [point, id] : buffer_) {
    if (box->Contains(point)) candidates.emplace_back(point, id);
  }
  out.index_candidates = candidates.size();
  out.phase1_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phases 2-3: identical to the engine's. ------------------------------
  const GaussianDistribution& g = query.query_object;
  const size_t d = tree_->dim();
  const bool use_rr = options_.prq.strategies & kStrategyRR;
  const bool use_or = options_.prq.strategies & kStrategyOR;
  const bool use_bf = options_.prq.strategies & kStrategyBF;
  const double r_theta =
      engine_.EffectiveThetaRadius(query.theta, options_.prq.use_catalogs);

  RrRegion rr;
  OrRegion oreg;
  BfBounds bf;
  if (use_rr || use_or) rr = RrRegion::Compute(g, query.delta, r_theta);
  if (use_or) oreg = OrRegion::Compute(g, query.delta, r_theta);
  if (use_bf) {
    bf = BfBounds::Compute(g, query.delta, query.theta,
                           options_.prq.use_catalogs ? &engine_.alpha_catalog()
                                                     : nullptr);
  }
  const bool apply_fringe =
      use_rr && (options_.prq.fringe_filter_any_dim || d == 2);
  const MarginalFilter marginal =
      MarginalFilter::Compute(query.delta, query.theta);

  std::vector<index::ObjectId> result;
  std::vector<std::pair<la::Vector, index::ObjectId>> survivors;
  for (auto& [point, id] : candidates) {
    if (apply_fringe && !rr.PassesFringe(point, query.delta)) continue;
    if (use_bf) {
      const double dist_sq = la::SquaredDistance(point, g.mean());
      if (dist_sq > bf.alpha_outer * bf.alpha_outer) continue;
      if (bf.has_inner && dist_sq <= bf.alpha_inner * bf.alpha_inner) {
        result.push_back(id);
        ++out.accepted_without_integration;
        continue;
      }
    }
    if (use_or && !oreg.Contains(g, point)) continue;
    if (options_.prq.use_marginal_filter && !marginal.Passes(g, point)) {
      continue;
    }
    survivors.emplace_back(std::move(point), id);
  }
  out.integration_candidates = survivors.size();
  out.phase2_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  for (const auto& [point, id] : survivors) {
    if (evaluator->QualificationDecision(g, point, query.delta,
                                         query.theta)) {
      result.push_back(id);
    }
  }
  out.phase3_seconds = phase_timer.ElapsedSeconds();
  out.result_size = result.size();
  return result;
}

// ---------------------------------------------------------------------------
// ContinuousQueryRegistry
// ---------------------------------------------------------------------------

ContinuousQueryRegistry::ContinuousQueryRegistry(size_t dim,
                                                 Evaluate evaluate)
    : dim_(dim), evaluate_(std::move(evaluate)) {}

Result<ContinuousQueryRegistry::QueryId> ContinuousQueryRegistry::Register(
    const PrqQuery& query, const PrqOptions& options) {
  GPRQ_RETURN_NOT_OK(ValidatePrq(query, options, dim_));

  Standing standing(query, options);
  // The standing search box: recomputed here (not borrowed from any one
  // execution) so registration does not depend on how the evaluator runs.
  // Catalog rounding only widens boxes, and NotifyCommit only needs a
  // sound superset, so the exact (catalog-free) geometry is fine.
  const QueryGeometry geometry =
      PrepareQueryGeometry(query, options, dim_, nullptr, nullptr);
  geom::Rect search_box = geom::Rect::Empty(dim_);
  if (geometry.proved_empty ||
      !ComputeSearchBox(geometry, query, dim_, &search_box)) {
    standing.proved_empty = true;
  } else {
    standing.search_box = search_box;
  }

  // Insert the entry first — born stale — and only then run the initial
  // evaluation, through the same race-safe refresh path every later
  // re-evaluation uses. Evaluating before insertion would leave a window
  // where a commit (landing between the evaluation's epoch pin and the
  // emplace) cannot mark the not-yet-visible query, registering it with
  // stale initial ids and stale == false.
  const bool proved_empty = standing.proved_empty;
  standing.stale = !proved_empty;
  QueryId id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    queries_.emplace(id, std::move(standing));
  }
  if (proved_empty) return id;
  Status initial = RefreshOne(id);
  if (!initial.ok()) {
    Unregister(id);
    return initial;
  }
  return id;
}

void ContinuousQueryRegistry::Unregister(QueryId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  queries_.erase(id);
}

size_t ContinuousQueryRegistry::NotifyCommit(const geom::Rect& dirty_region) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dirty_region.IsEmpty()) return 0;
  size_t marked = 0;
  for (auto& [id, standing] : queries_) {
    if (standing.proved_empty) continue;
    if (standing.search_box.Intersects(dirty_region)) {
      // Bump the generation even when already stale: an in-flight refresh
      // that captured the pre-bump value must not clear the flag (its
      // evaluation pinned an epoch that misses this commit).
      ++standing.generation;
      if (!standing.stale) {
        standing.stale = true;
        ++marked;
      }
    }
  }
  return marked;
}

Status ContinuousQueryRegistry::RefreshOne(QueryId id) {
  std::optional<PrqQuery> query;
  PrqOptions options;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound("standing query " + std::to_string(id));
    }
    query = it->second.query;
    options = it->second.options;
    generation = it->second.generation;
  }
  // Evaluate outside the lock: NotifyCommit from the write path must never
  // wait on a query evaluation. A commit landing mid-evaluation bumps the
  // entry's generation; the captured value below then mismatches and the
  // entry stays stale (this result answered against a pre-commit epoch),
  // so the next refresh picks it up again.
  Result<PrqResult> fresh = evaluate_(*query, options);
  if (!fresh.ok()) return fresh.status();
  if (!fresh->complete()) return fresh->status;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queries_.find(id);
  if (it == queries_.end()) return Status::OK();  // unregistered meanwhile
  if (it->second.generation != generation) return Status::OK();
  it->second.ids = std::move(fresh->ids);
  it->second.stale = false;
  return Status::OK();
}

Result<std::vector<ContinuousQueryRegistry::QueryId>>
ContinuousQueryRegistry::RefreshStale() {
  std::vector<QueryId> stale;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, standing] : queries_) {
      if (standing.stale) stale.push_back(id);
    }
  }
  for (QueryId id : stale) GPRQ_RETURN_NOT_OK(RefreshOne(id));
  return stale;
}

Result<std::vector<index::ObjectId>> ContinuousQueryRegistry::Current(
    QueryId id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(id);
    if (it == queries_.end()) {
      return Status::NotFound("standing query " + std::to_string(id));
    }
    if (!it->second.stale) return it->second.ids;
  }
  GPRQ_RETURN_NOT_OK(RefreshOne(id));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("standing query " + std::to_string(id));
  }
  return it->second.ids;
}

size_t ContinuousQueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queries_.size();
}

size_t ContinuousQueryRegistry::stale_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& [id, standing] : queries_) {
    if (standing.stale) ++count;
  }
  return count;
}

}  // namespace gprq::core
