#ifndef GPRQ_CORE_CONTINUOUS_H_
#define GPRQ_CORE_CONTINUOUS_H_

#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/prq.h"
#include "index/rstar_tree.h"
#include "mc/probability_evaluator.h"

namespace gprq::core {

/// Continuous PRQ monitoring — the moving-object scenario from the paper's
/// introduction ("when we monitor the movement status of a number of
/// moving objects, frequent updates of locations generate a high
/// processing load"). The monitored object re-issues PRQ(q_t, δ, θ) as its
/// Gaussian location estimate drifts; consecutive queries overlap heavily,
/// so re-running Phase 1 from the root every tick is wasted work.
///
/// The monitor keeps a *buffered candidate set*: Phase 1 fetches the
/// candidates of the current search region inflated by `buffer_margin`.
/// While the next query's search region stays inside the buffered region,
/// Phases 2-3 run against the buffer with no index access at all; once the
/// region escapes, the buffer is refreshed. Results are always identical
/// to fresh PrqEngine::Execute calls — the buffer is a superset of any
/// region it covers (verified in tests).
class ContinuousPrqMonitor {
 public:
  struct Options {
    /// Extra margin (in data units) added around the search box when the
    /// buffer is (re)fetched. Larger margins mean fewer refetches but more
    /// Phase-2 filtering work per tick.
    double buffer_margin = 0.0;
    /// Engine options applied to every tick.
    PrqOptions prq;
  };

  struct TickStats : PrqStats {
    /// True when this tick re-fetched the buffer from the index.
    bool refetched = false;
    /// Buffered candidates filtered this tick.
    size_t buffered_candidates = 0;
  };

  struct MonitorStats {
    size_t ticks = 0;
    size_t refetches = 0;
    uint64_t node_reads = 0;
  };

  /// The monitor references (not owns) the engine's tree.
  ContinuousPrqMonitor(const index::RStarTree* tree, Options options);

  /// Processes one location update: runs PRQ(g, δ, θ) for the new Gaussian
  /// and returns the qualifying ids, reusing the buffer when the query's
  /// search region is still covered.
  Result<std::vector<index::ObjectId>> Update(
      const PrqQuery& query, mc::ProbabilityEvaluator* evaluator,
      TickStats* stats = nullptr);

  const MonitorStats& monitor_stats() const { return monitor_stats_; }

  /// Drops the buffer (e.g. after the indexed data changes — the buffer
  /// does not observe tree updates).
  void Invalidate() { buffer_valid_ = false; }

 private:
  /// Computes the Phase-1 search box for a query (mirrors the engine).
  Result<geom::Rect> SearchBox(const PrqQuery& query, bool* proved_empty);

  const index::RStarTree* tree_;
  Options options_;
  PrqEngine engine_;

  bool buffer_valid_ = false;
  geom::Rect buffer_box_;
  std::vector<std::pair<la::Vector, index::ObjectId>> buffer_;
  MonitorStats monitor_stats_;
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_CONTINUOUS_H_
