#ifndef GPRQ_CORE_CONTINUOUS_H_
#define GPRQ_CORE_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/prq.h"
#include "geom/rect.h"
#include "index/rstar_tree.h"
#include "mc/probability_evaluator.h"

namespace gprq::core {

/// Continuous PRQ monitoring — the moving-object scenario from the paper's
/// introduction ("when we monitor the movement status of a number of
/// moving objects, frequent updates of locations generate a high
/// processing load"). The monitored object re-issues PRQ(q_t, δ, θ) as its
/// Gaussian location estimate drifts; consecutive queries overlap heavily,
/// so re-running Phase 1 from the root every tick is wasted work.
///
/// The monitor keeps a *buffered candidate set*: Phase 1 fetches the
/// candidates of the current search region inflated by `buffer_margin`.
/// While the next query's search region stays inside the buffered region,
/// Phases 2-3 run against the buffer with no index access at all; once the
/// region escapes, the buffer is refreshed. Results are always identical
/// to fresh PrqEngine::Execute calls — the buffer is a superset of any
/// region it covers (verified in tests).
class ContinuousPrqMonitor {
 public:
  struct Options {
    /// Extra margin (in data units) added around the search box when the
    /// buffer is (re)fetched. Larger margins mean fewer refetches but more
    /// Phase-2 filtering work per tick.
    double buffer_margin = 0.0;
    /// Engine options applied to every tick.
    PrqOptions prq;
  };

  struct TickStats : PrqStats {
    /// True when this tick re-fetched the buffer from the index.
    bool refetched = false;
    /// Buffered candidates filtered this tick.
    size_t buffered_candidates = 0;
  };

  struct MonitorStats {
    size_t ticks = 0;
    size_t refetches = 0;
    uint64_t node_reads = 0;
  };

  /// The monitor references (not owns) the engine's tree.
  ContinuousPrqMonitor(const index::RStarTree* tree, Options options);

  /// Processes one location update: runs PRQ(g, δ, θ) for the new Gaussian
  /// and returns the qualifying ids, reusing the buffer when the query's
  /// search region is still covered.
  Result<std::vector<index::ObjectId>> Update(
      const PrqQuery& query, mc::ProbabilityEvaluator* evaluator,
      TickStats* stats = nullptr);

  const MonitorStats& monitor_stats() const { return monitor_stats_; }

  /// Drops the buffer (e.g. after the indexed data changes — the buffer
  /// does not observe tree updates).
  void Invalidate() { buffer_valid_ = false; }

 private:
  /// Computes the Phase-1 search box for a query (mirrors the engine).
  Result<geom::Rect> SearchBox(const PrqQuery& query, bool* proved_empty);

  const index::RStarTree* tree_;
  Options options_;
  PrqEngine engine_;

  bool buffer_valid_ = false;
  geom::Rect buffer_box_;
  std::vector<std::pair<la::Vector, index::ObjectId>> buffer_;
  MonitorStats monitor_stats_;
};

/// Standing PRQ queries re-evaluated when the *data* moves — the dual of
/// ContinuousPrqMonitor, which handles a moving query over static data.
/// Before the mutable storage engine existed, monitoring code had no update
/// feed at all: its buffered candidates silently went stale the moment the
/// dataset changed (the old contract was a manual Invalidate() call the
/// caller had to remember). This registry closes that gap, driven by
/// storage commit notifications.
///
/// The registry is storage-agnostic by design (core cannot depend on
/// storage): the owner wires it to a write path by forwarding each commit's
/// dirty region —
///
///   registry.NotifyCommit(info.dirty_region);   // from a commit listener
///
/// and supplies an `Evaluate` callback that answers a PRQ against the
/// current data (e.g. storage::LivePrqEngine::ExecuteBounded). Each
/// registered query keeps its Phase-1 search box; a commit whose dirty
/// region misses the box provably cannot change the query's answer (the
/// box contains every point that could qualify), so only intersecting
/// queries are marked stale, and RefreshStale() re-evaluates exactly
/// those. A query whose BF bound proves it empty is never stale — its
/// answer is empty for any dataset.
///
/// Thread-safe: NotifyCommit may run on the committing thread (it only
/// flips stale flags — no query evaluation inside the commit path) while
/// readers call Current()/RefreshStale(). Evaluation runs outside the
/// registry lock so the Evaluate callback may take its own time.
class ContinuousQueryRegistry {
 public:
  using QueryId = uint64_t;
  using Evaluate =
      std::function<Result<PrqResult>(const PrqQuery&, const PrqOptions&)>;

  /// `dim` is the dataset dimension; `evaluate` answers one PRQ against
  /// the live data and must remain valid for the registry's lifetime.
  ContinuousQueryRegistry(size_t dim, Evaluate evaluate);

  /// Registers a standing query and evaluates its initial result set.
  /// Fails if the query does not validate or the initial evaluation fails.
  Result<QueryId> Register(const PrqQuery& query, const PrqOptions& options);

  /// Removes a standing query; unknown ids are ignored.
  void Unregister(QueryId id);

  /// Commit hook: marks every registered query whose search box intersects
  /// `dirty_region` stale. Returns how many were marked. Cheap — no
  /// evaluation happens here.
  size_t NotifyCommit(const geom::Rect& dirty_region);

  /// Re-evaluates every stale query against the live data; returns the ids
  /// refreshed. A query whose re-evaluation fails (or comes back partial)
  /// stays stale and surfaces the error.
  Result<std::vector<QueryId>> RefreshStale();

  /// The query's current result set, refreshing it first when stale.
  Result<std::vector<index::ObjectId>> Current(QueryId id);

  size_t size() const;
  size_t stale_count() const;

 private:
  struct Standing {
    // PrqQuery has no default state (a Gaussian needs its parameters), so
    // a Standing is always born from a concrete query.
    Standing(PrqQuery q, PrqOptions o)
        : query(std::move(q)), options(std::move(o)) {}

    PrqQuery query;
    PrqOptions options;
    /// Phase-1 search box; meaningless when proved_empty.
    geom::Rect search_box;
    bool proved_empty = false;
    bool stale = false;
    /// Bumped by every intersecting commit (even when already stale): a
    /// refresh captures it before evaluating outside the lock and only
    /// clears `stale` if it is unchanged after — a commit landing
    /// mid-evaluation (whose data the pinned epoch missed) keeps the
    /// entry stale instead of being silently erased.
    uint64_t generation = 0;
    std::vector<index::ObjectId> ids;
  };

  /// Evaluates one standing query (outside the lock) and stores the fresh
  /// result; clears its stale flag only when no intersecting commit
  /// landed during the evaluation (generation unchanged).
  Status RefreshOne(QueryId id);

  const size_t dim_;
  const Evaluate evaluate_;

  mutable std::mutex mutex_;
  std::map<QueryId, Standing> queries_;
  QueryId next_id_ = 1;
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_CONTINUOUS_H_
