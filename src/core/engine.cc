#include "core/engine.h"

#include <cassert>
#include <cmath>

#include "common/stopwatch.h"
#include "core/filter_pipeline.h"
#include "exec/batch_executor.h"
#include "mc/sample_pool.h"

namespace gprq::core {
namespace {

// Deadline counters not derivable from published traces: short-circuited
// queries never reach Phase 3, so they are counted at the check site.
// (gprq.deadline.expired_queries / .undecided_candidates come from
// PublishPhase3.)
struct DeadlineMetrics {
  obs::Counter* short_circuits;

  static const DeadlineMetrics& Get() {
    static const DeadlineMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return DeadlineMetrics{r.GetCounter("gprq.deadline.short_circuits")};
    }();
    return metrics;
  }
};

}  // namespace

std::string StrategyName(StrategyMask mask) {
  if (mask == kStrategyAll) return "ALL";
  std::string name;
  const auto append = [&name](const char* part) {
    if (!name.empty()) name += "+";
    name += part;
  };
  if (mask & kStrategyRR) append("RR");
  if (mask & kStrategyBF) append("BF");
  if (mask & kStrategyOR) append("OR");
  if (name.empty()) name = "NONE";
  return name;
}

PrqEngine::PrqEngine(const index::RStarTree* tree) : tree_(tree) {
  assert(tree_ != nullptr);
}

const RadiusCatalog& PrqEngine::radius_catalog() const {
  if (radius_catalog_ == nullptr) {
    radius_catalog_ =
        std::make_unique<RadiusCatalog>(RadiusCatalog::Build(tree_->dim()));
  }
  return *radius_catalog_;
}

const AlphaCatalog& PrqEngine::alpha_catalog() const {
  if (alpha_catalog_ == nullptr) {
    alpha_catalog_ =
        std::make_unique<AlphaCatalog>(AlphaCatalog::Build(tree_->dim()));
  }
  return *alpha_catalog_;
}

double PrqEngine::EffectiveThetaRadius(double theta,
                                       bool use_catalogs) const {
  if (theta >= 0.5) return 0.0;
  return use_catalogs ? radius_catalog().LookupRadius(theta)
                      : RadiusCatalog::ExactRadius(tree_->dim(), theta);
}

Status PrqEngine::RunFilterPhases(const PrqQuery& query,
                                  const PrqOptions& options,
                                  FilterOutcome* outcome, PrqStats* stats,
                                  obs::QueryTrace* trace) const {
  return RunFilterPhasesImpl(
      query, options,
      [this](const geom::Rect& search_box,
             std::vector<std::pair<la::Vector, index::ObjectId>>* candidates,
             obs::QueryTrace* tr) {
        const uint64_t node_reads_before = tree_->stats().node_reads;
        tree_->RangeQuery(search_box,
                          [candidates](const la::Vector& point,
                                       index::ObjectId id) {
                            candidates->emplace_back(point, id);
                          });
        tr->index_visits = tree_->stats().node_reads - node_reads_before;
      },
      outcome, stats, trace);
}

Status PrqEngine::FilterCandidateSet(
    const PrqQuery& query, const PrqOptions& options,
    const std::vector<std::pair<la::Vector, index::ObjectId>>& candidates,
    FilterOutcome* outcome, PrqStats* stats, obs::QueryTrace* trace) const {
  return RunFilterPhasesImpl(
      query, options,
      [&candidates](
          const geom::Rect& search_box,
          std::vector<std::pair<la::Vector, index::ObjectId>>* kept,
          obs::QueryTrace*) {
        // No index visit: Phase 1 is a containment scan over the supplied
        // superset. Rect::Contains is inclusive, exactly like RangeQuery's
        // region test, so the kept set equals the index answer whenever
        // `candidates` covers the box.
        for (const auto& [point, id] : candidates) {
          if (search_box.Contains(point)) kept->emplace_back(point, id);
        }
      },
      outcome, stats, trace);
}

Status PrqEngine::RunFilterPhasesImpl(const PrqQuery& query,
                                      const PrqOptions& options,
                                      const CandidateGatherer& gather,
                                      FilterOutcome* outcome, PrqStats* stats,
                                      obs::QueryTrace* trace) const {
  GPRQ_RETURN_NOT_OK(ValidatePrq(query, options, tree_->dim()));
  const size_t d = tree_->dim();

  // The trace is the single per-query record; `stats` is derived from it
  // at the end, so the two can never disagree. The registry aggregates are
  // sums of published traces — the reconciliation tests rely on this.
  obs::QueryTrace local_trace;
  obs::QueryTrace& tr = (trace != nullptr) ? *trace : local_trace;
  tr = obs::QueryTrace();

  const auto finish = [&] {
    stats->proved_empty = tr.proved_empty;
    stats->node_reads = tr.index_visits;
    stats->index_candidates = tr.index_candidates;
    stats->pruned_rr_fringe = tr.pruned_rr_fringe;
    stats->pruned_bf_outer = tr.pruned_bf_outer;
    stats->pruned_or = tr.pruned_or;
    stats->pruned_marginal = tr.pruned_marginal;
    stats->accepted_without_integration = tr.accepted_bf_inner;
    stats->integration_candidates = tr.phase3_candidates;
    stats->prep_seconds = tr.phase_seconds(obs::QueryTrace::kPrep);
    stats->phase1_seconds = tr.phase_seconds(obs::QueryTrace::kPhase1);
    stats->phase2_seconds = tr.phase_seconds(obs::QueryTrace::kPhase2);
    obs::PublishFilterPhases(tr);
  };

  // Phase-boundary deadline/cancellation checks. `bounded` is false for
  // default options, so unbounded queries pay one flag check per boundary
  // and never read the clock.
  const common::QueryControl& control = options.control;
  const bool bounded = !control.Unbounded();

  // Already stopped on entry: short-circuit before the filter geometry is
  // even prepared (and before any driver builds evaluators or pools).
  if (bounded && control.ShouldStop()) {
    DeadlineMetrics::Get().short_circuits->Add(1);
    outcome->expired = true;
    finish();
    return Status::OK();
  }

  // ---- Preparation: per-query filter geometry. --------------------------
  QueryGeometry geometry;
  {
    obs::QueryTrace::Span span(&tr, obs::QueryTrace::kPrep);
    geometry = PrepareQueryGeometry(
        query, options, d, options.use_catalogs ? &radius_catalog() : nullptr,
        options.use_catalogs ? &alpha_catalog() : nullptr);
    if (geometry.proved_empty) tr.proved_empty = true;
  }
  if (tr.proved_empty) {
    outcome->proved_empty = true;
    finish();
    return Status::OK();
  }
  if (bounded && control.ShouldStop()) {
    outcome->expired = true;
    finish();
    return Status::OK();
  }

  // ---- Phase 1: index-based search. --------------------------------------
  // The search region follows the paper: Algorithm 1 (RR box, Fig. 4) when
  // RR is enabled, otherwise Algorithm 2 (BF outer box); pure-OR mode uses
  // the oblique region's bounding box. When both RR and BF are enabled we
  // intersect the two boxes — both are supersets of the qualifying set.
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  {
    obs::QueryTrace::Span span(&tr, obs::QueryTrace::kPhase1);
    geom::Rect search_box = geom::Rect::Empty(d);
    if (!ComputeSearchBox(geometry, query, d, &search_box)) {
      tr.proved_empty = true;
    } else {
      outcome->search_box = search_box;
      gather(search_box, &candidates, &tr);
      tr.index_candidates = candidates.size();
    }
  }
  if (tr.proved_empty) {
    outcome->proved_empty = true;
    finish();
    return Status::OK();
  }
  if (bounded && control.ShouldStop()) {
    // Degrade before Phase 2: every Phase-1 candidate becomes an
    // unresolved survivor. Skipping the filters is sound — they only
    // remove certain non-qualifiers — and the driver surfaces the
    // survivors as undecided instead of integrating them.
    outcome->expired = true;
    outcome->survivors = std::move(candidates);
    tr.phase3_candidates = outcome->survivors.size();
    finish();
    return Status::OK();
  }

  // ---- Phase 2: analytical filtering. ------------------------------------
  // Each rejected candidate is attributed to the first filter that drops
  // it, so the trace's prune breakdown partitions the index candidates.
  {
    obs::QueryTrace::Span span(&tr, obs::QueryTrace::kPhase2);
    Phase2Counts counts;
    RunPhase2(query, options, geometry, std::move(candidates), outcome,
              &counts);
    tr.pruned_rr_fringe = counts.pruned_rr_fringe;
    tr.pruned_bf_outer = counts.pruned_bf_outer;
    tr.pruned_or = counts.pruned_or;
    tr.pruned_marginal = counts.pruned_marginal;
    tr.accepted_bf_inner = counts.accepted_bf_inner;
    tr.phase3_candidates = outcome->survivors.size();
  }
  finish();
  return Status::OK();
}

Result<PrqResult> PrqEngine::ExecuteBounded(const PrqQuery& query,
                                            const PrqOptions& options,
                                            mc::ProbabilityEvaluator* evaluator,
                                            PrqStats* stats) const {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  PrqStats local_stats;
  PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = PrqStats();
  const common::QueryControl& control = options.control;

  FilterOutcome outcome;
  obs::QueryTrace trace;
  GPRQ_RETURN_NOT_OK(
      RunFilterPhases(query, options, &outcome, &out_stats, &trace));

  PrqResult result;
  if (outcome.proved_empty) return result;  // complete, empty

  result.ids.reserve(outcome.accepted.size());
  for (const auto& [point, id] : outcome.accepted) result.ids.push_back(id);

  if (outcome.expired) {
    // The control fired during the filter phases; every survivor (possibly
    // the whole unfiltered candidate set) is unresolved. Inner-accepted
    // objects stay in the answer — their membership was proven before the
    // stop.
    result.undecided.reserve(outcome.survivors.size());
    for (const auto& [point, id] : outcome.survivors) {
      result.undecided.push_back(id);
    }
    result.status = control.StopStatus();
    if (result.status.ok()) {
      result.status = Status::Internal("filter phases degraded without a "
                                       "stop condition");
    }
  } else if (!outcome.survivors.empty()) {
    obs::QueryTrace::Span span(&trace, obs::QueryTrace::kPhase3);
    if (control.ShouldStop()) {
      // Fired between Phase 2 and pool construction: degrade without
      // drawing a single sample.
      result.undecided.reserve(outcome.survivors.size());
      for (const auto& [point, id] : outcome.survivors) {
        result.undecided.push_back(id);
      }
      result.status = control.StopStatus();
    } else {
      const auto pool =
          evaluator->MakeSamplePool(query.query_object, options.pool_variant);
      const size_t n = outcome.survivors.size();
      std::vector<const la::Vector*> objects;
      objects.reserve(n);
      for (const auto& [point, id] : outcome.survivors) {
        objects.push_back(&point);
      }
      std::vector<char> states(n, mc::kDecideUndecided);
      evaluator->DecideBatchBounded(query.query_object, objects.data(), n,
                                    query.delta, query.theta, pool.get(),
                                    control, states.data());
      size_t decided = 0;
      for (size_t i = 0; i < n; ++i) {
        if (states[i] == mc::kDecideIncluded) {
          result.ids.push_back(outcome.survivors[i].second);
          ++decided;
        } else if (states[i] == mc::kDecideExcluded) {
          ++decided;
        } else {
          result.undecided.push_back(outcome.survivors[i].second);
        }
      }
      trace.integrations = decided;
      if (!result.undecided.empty()) {
        result.status = control.StopStatus();
        if (result.status.ok() && control.sample_budget > 0) {
          // Brownout degradation: the per-candidate sample budget ran out
          // before the confidence interval separated. The decided ids are
          // still exact; the remainder is explicitly undecided.
          result.status = Status::ResourceExhausted(
              "Phase-3 sample budget exhausted; undecided candidates "
              "remain");
        }
        if (result.status.ok()) {
          result.status = Status::Internal(
              "bounded decide left candidates undecided without a stop "
              "condition");
        }
      }
    }
  }

  trace.deadline_expired = !result.status.ok();
  trace.deadline_undecided = result.undecided.size();
  trace.result_size = result.ids.size();
  obs::PublishPhase3(trace);
  out_stats.phase3_seconds = trace.phase_seconds(obs::QueryTrace::kPhase3);
  out_stats.result_size = result.ids.size();
  return result;
}

Result<std::vector<index::ObjectId>> PrqEngine::Execute(
    const PrqQuery& query, const PrqOptions& options,
    mc::ProbabilityEvaluator* evaluator, PrqStats* stats) const {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  if (!options.control.Unbounded()) {
    // The complete-answer API cannot express a partial result. Decided
    // candidates are bit-identical either way; a degraded run surfaces as
    // its stop status instead of silently dropping the undecided remainder.
    Result<PrqResult> bounded =
        ExecuteBounded(query, options, evaluator, stats);
    if (!bounded.ok()) return bounded.status();
    if (!bounded->status.ok()) return bounded->status;
    return std::move(bounded->ids);
  }
  PrqStats local_stats;
  PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = PrqStats();

  FilterOutcome outcome;
  obs::QueryTrace trace;
  GPRQ_RETURN_NOT_OK(
      RunFilterPhases(query, options, &outcome, &out_stats, &trace));
  if (outcome.proved_empty) return std::vector<index::ObjectId>{};

  // ---- Phase 3: probability computation. ---------------------------------
  // Batched: sampling evaluators build one shared per-query pool (the
  // O(samples · d²) draw happens once, not once per candidate) and decide
  // every survivor against it; evaluators without a pool fall back to the
  // per-candidate loop inside the default DecideBatch.
  std::vector<index::ObjectId> result;
  {
    obs::QueryTrace::Span span(&trace, obs::QueryTrace::kPhase3);
    result.reserve(outcome.accepted.size());
    for (const auto& [point, id] : outcome.accepted) result.push_back(id);
    if (!outcome.survivors.empty()) {
      const auto pool =
          evaluator->MakeSamplePool(query.query_object, options.pool_variant);
      const size_t n = outcome.survivors.size();
      std::vector<const la::Vector*> objects;
      objects.reserve(n);
      for (const auto& [point, id] : outcome.survivors) {
        objects.push_back(&point);
      }
      std::vector<char> decisions(n, 0);
      evaluator->DecideBatch(query.query_object, objects.data(), n,
                             query.delta, query.theta, pool.get(),
                             decisions.data());
      for (size_t i = 0; i < n; ++i) {
        if (decisions[i]) result.push_back(outcome.survivors[i].second);
      }
      trace.integrations = n;
    }
  }
  trace.result_size = result.size();
  obs::PublishPhase3(trace);
  out_stats.phase3_seconds = trace.phase_seconds(obs::QueryTrace::kPhase3);
  out_stats.result_size = result.size();
  return result;
}

Result<std::vector<std::pair<index::ObjectId, double>>>
PrqEngine::ExecuteScored(const PrqQuery& query, const PrqOptions& options,
                         mc::ProbabilityEvaluator* evaluator,
                         PrqStats* stats) const {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  PrqStats local_stats;
  PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = PrqStats();

  FilterOutcome outcome;
  obs::QueryTrace trace;
  GPRQ_RETURN_NOT_OK(
      RunFilterPhases(query, options, &outcome, &out_stats, &trace));
  if (outcome.expired) {
    // Scored results carry no undecided channel; a degraded run is an
    // error, not a silently truncated ranking.
    return options.control.StopStatus();
  }
  std::vector<std::pair<index::ObjectId, double>> scored;
  if (outcome.proved_empty) return scored;

  {
    obs::QueryTrace::Span span(&trace, obs::QueryTrace::kPhase3);
    const GaussianDistribution& g = query.query_object;
    // Inner-accepted objects definitely qualify; they are evaluated anyway
    // to report their probability (membership was already certain).
    for (const auto& [point, id] : outcome.accepted) {
      scored.emplace_back(
          id, evaluator->QualificationProbability(g, point, query.delta));
    }
    for (const auto& [point, id] : outcome.survivors) {
      const double probability =
          evaluator->QualificationProbability(g, point, query.delta);
      if (probability >= query.theta) scored.emplace_back(id, probability);
    }
    trace.integrations = outcome.accepted.size() + outcome.survivors.size();
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  }
  trace.result_size = scored.size();
  obs::PublishPhase3(trace);
  out_stats.phase3_seconds = trace.phase_seconds(obs::QueryTrace::kPhase3);
  out_stats.result_size = scored.size();
  return scored;
}

Result<std::vector<index::ObjectId>> PrqEngine::ExecuteParallel(
    const PrqQuery& query, const PrqOptions& options,
    const EvaluatorFactory& factory, size_t num_threads,
    PrqStats* stats) const {
  if (!factory) {
    return Status::InvalidArgument("evaluator factory must not be null");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PrqStats local_stats;
  PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = PrqStats();

  FilterOutcome outcome;
  GPRQ_RETURN_NOT_OK(RunFilterPhases(query, options, &outcome, &out_stats));
  if (outcome.expired) {
    // Like Execute: this API promises a complete answer, so a control that
    // fired during the filter phases surfaces as its stop status.
    return options.control.StopStatus();
  }
  if (outcome.proved_empty) return std::vector<index::ObjectId>{};

  // Nothing survived to Phase 3: return the inner-accepted objects without
  // constructing evaluators or waking a single worker thread.
  if (outcome.survivors.empty()) {
    std::vector<index::ObjectId> result;
    result.reserve(outcome.accepted.size());
    for (const auto& [point, id] : outcome.accepted) result.push_back(id);
    out_stats.result_size = result.size();
    return result;
  }

  // ---- Phase 3, delegated to a one-shot worker pool. ----------------------
  // More workers than survivors would only idle; cap at one per survivor.
  const size_t workers = std::min(num_threads, outcome.survivors.size());
  auto executor = exec::BatchExecutor::Create(this, factory, workers);
  if (!executor.ok()) return executor.status();
  if (!options.control.Unbounded()) {
    // Honor the control between Phase-3 decisions too; a degraded run
    // surfaces as its stop status (this API cannot mark the unresolved
    // remainder — ExecuteBounded or SubmitBounded can).
    auto bounded = (*executor)->IntegrateOutcomeBounded(
        query, std::move(outcome), options.control, &out_stats, nullptr,
        options.pool_variant);
    if (!bounded.ok()) return bounded.status();
    if (!bounded->status.ok()) return bounded->status;
    return std::move(bounded->ids);
  }
  return (*executor)->IntegrateOutcome(query, std::move(outcome), &out_stats,
                                       nullptr, options.pool_variant);
}

}  // namespace gprq::core
