#ifndef GPRQ_CORE_ENGINE_H_
#define GPRQ_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/alpha_catalog.h"
#include "core/filters.h"
#include "core/prq.h"
#include "core/radius_catalog.h"
#include "geom/rect.h"
#include "index/rstar_tree.h"
#include "mc/pool_variant.h"
#include "mc/probability_evaluator.h"
#include "obs/trace.h"

namespace gprq::core {

/// Query criticality levels for overload admission (exec::OverloadPolicy):
/// under pressure the serving layer sheds lower priorities first. Plain
/// ints so callers can define intermediate levels; only the order matters.
inline constexpr int kPriorityBackground = 0;
inline constexpr int kPriorityNormal = 1;
inline constexpr int kPriorityCritical = 2;

/// Engine-level options selecting strategies and catalog behavior.
struct PrqOptions {
  /// Which filtering strategies to combine (Section V-A evaluates RR, BF,
  /// RR+BF, RR+OR, BF+OR and ALL).
  StrategyMask strategies = kStrategyAll;

  /// true: θ-region radii and BF α radii come from precomputed U-catalog
  /// tables with the paper's conservative rounding (the paper's setup);
  /// false: they are solved exactly at query time.
  bool use_catalogs = true;

  /// The paper applies the RR fringe filter only for d = 2; the
  /// distance-to-box formulation used here is valid in any dimension.
  /// Set false to restrict it to d = 2 for paper-faithful candidate counts.
  bool fringe_filter_any_dim = true;

  /// Extension (off by default to keep the paper's six combinations
  /// comparable): exact per-axis marginal pruning in the eigen frame
  /// (see core::MarginalFilter). Sound in any dimension; most effective
  /// where the paper reports the classic filters struggling (Section VI's
  /// medium-dimensional anisotropic queries).
  bool use_marginal_filter = false;

  /// Deadline/cancellation for this query. Unbounded by default (one flag
  /// check of overhead). Checked at phase boundaries and between Phase-3
  /// Wilson blocks; when it fires, ExecuteBounded degrades to a sound
  /// partial PrqResult while the complete-answer APIs (Execute,
  /// ExecuteParallel) fail with the control's StopStatus — they have no way
  /// to mark the unresolved remainder and must not guess.
  common::QueryControl control;

  /// Criticality under overload (kPriorityBackground/Normal/Critical).
  /// Ignored unless the query goes through a BatchExecutor with an
  /// OverloadPolicy installed; then the load shedder rejects
  /// lower-priority queries first when watermarks are crossed.
  int priority = kPriorityNormal;

  /// How sampling evaluators draw the per-query Phase-3 sample pool:
  /// the paper's pseudo-random importance sampling (default) or the
  /// randomized-Halton QMC variant (see mc::PoolVariant). Ignored by exact
  /// evaluators. Result-changing — part of cache::FilterConfigBits.
  mc::PoolVariant pool_variant = mc::PoolVariant::kPseudoRandom;
};

/// Three-phase processor for probabilistic range queries over an R*-tree of
/// exact points (Section III-B): (1) index-based search on a rectilinear
/// region, (2) analytical filtering, (3) numerical integration for the
/// survivors. The engine owns the per-dimension U-catalogs and builds them
/// lazily on first use.
class PrqEngine {
 public:
  /// The engine references (not owns) the tree. Object ids reported in
  /// results are the ids stored in the tree.
  explicit PrqEngine(const index::RStarTree* tree);

  /// Product of Phases 1-2: objects already accepted via the BF inner radius,
  /// and the candidates whose qualification probability Phase 3 must settle.
  /// Exposed so Phase-3 drivers (Execute variants here, exec::BatchExecutor)
  /// can share one filter implementation.
  struct FilterOutcome {
    std::vector<std::pair<la::Vector, index::ObjectId>> accepted;
    std::vector<std::pair<la::Vector, index::ObjectId>> survivors;
    bool proved_empty = false;
    /// The query's control fired during the filter phases. Phase 2 was then
    /// skipped and every Phase-1 candidate moved to `survivors` (a
    /// conservative superset — filtering only removes *certain*
    /// non-qualifiers, so skipping it is sound); drivers must surface the
    /// survivors as undecided instead of integrating them.
    bool expired = false;
    /// The rectilinear Phase-1 search region (RR box ∩ BF box, BF box, or
    /// the OR bounding box — see RunFilterPhases). Every object that can
    /// qualify lies inside it, which is what makes it a sound containment
    /// key for the semantic result cache: a cached answer whose box contains
    /// a narrower query's box covers every point the narrower query could
    /// return. Meaningful only when !proved_empty and !expired-before-prep.
    geom::Rect search_box = geom::Rect::Empty(0);
  };

  /// Runs validation, preparation and Phases 1-2; fills `outcome` with the
  /// inner-accepted ids and the candidates needing integration, and `stats`
  /// with the prep/phase1/phase2 timings, candidate counts and the
  /// per-filter prune breakdown. Phase 3 — deciding the survivors — is the
  /// caller's job (exec::BatchExecutor fans it over a worker pool; Execute
  /// runs it inline).
  ///
  /// Every call publishes its filter-phase counters and timings to the
  /// global obs::MetricRegistry (`gprq.engine.*`). If `trace` is non-null
  /// it is reset and receives the same per-query record, with the Phase-3
  /// fields left for the driver to fill.
  Status RunFilterPhases(const PrqQuery& query, const PrqOptions& options,
                         FilterOutcome* outcome, PrqStats* stats,
                         obs::QueryTrace* trace = nullptr) const;

  /// RunFilterPhases with Phase 1 replaced by a scan of `candidates`:
  /// validation, preparation and Phase 2 are identical, but instead of
  /// querying the index the phase keeps the given points that fall inside
  /// the query's search box. Sound whenever `candidates` is a superset of
  /// the search box's index answer — the semantic result cache uses it to
  /// serve a narrower repeat query from a cached wider answer without
  /// touching the tree.
  Status FilterCandidateSet(
      const PrqQuery& query, const PrqOptions& options,
      const std::vector<std::pair<la::Vector, index::ObjectId>>& candidates,
      FilterOutcome* outcome, PrqStats* stats,
      obs::QueryTrace* trace = nullptr) const;

  /// Runs PRQ(q, δ, θ). `evaluator` supplies Phase-3 probabilities
  /// (Monte-Carlo or exact). If `stats` is non-null it receives phase
  /// timings and candidate counts. Returns the qualifying object ids
  /// (unordered).
  Result<std::vector<index::ObjectId>> Execute(
      const PrqQuery& query, const PrqOptions& options,
      mc::ProbabilityEvaluator* evaluator, PrqStats* stats = nullptr) const;

  /// Deadline/cancellation-aware Execute: runs PRQ(q, δ, θ) under
  /// options.control and degrades gracefully when it fires. The returned
  /// PrqResult's `ids` are exact (bit-identical to what an unbounded run
  /// decides for those candidates — the control truncates work, never
  /// alters it); candidates the stopped query could not resolve are listed
  /// in `undecided` and `status` carries DeadlineExceeded/Cancelled. A
  /// control that is already stopped on entry short-circuits before
  /// evaluator or pool construction. An error Result is returned only for
  /// invalid arguments, never for an expired deadline.
  Result<PrqResult> ExecuteBounded(const PrqQuery& query,
                                   const PrqOptions& options,
                                   mc::ProbabilityEvaluator* evaluator,
                                   PrqStats* stats = nullptr) const;

  /// Builds one evaluator per Phase-3 worker thread. Each worker needs its
  /// own instance because evaluators carry mutable state (RNG streams);
  /// give Monte-Carlo workers distinct seeds derived from `worker`.
  using EvaluatorFactory =
      std::function<std::unique_ptr<mc::ProbabilityEvaluator>(size_t worker)>;

  /// Like Execute, but Phase 3 fans the surviving candidates out over
  /// `num_threads` workers. Phases 1-2 and all filtering semantics are
  /// identical; the result set (as a set) matches Execute with an
  /// equivalent evaluator. The numerical integrations are embarrassingly
  /// parallel, and Phase 3 dominates query cost (paper Section V-B: at
  /// least 97% of processing time), so speedup is near-linear.
  ///
  /// This is the one-shot convenience form: it builds a worker pool and the
  /// per-worker evaluators per call, and tears them down afterwards. A
  /// worker exception surfaces as Status::Internal. Query streams should
  /// hold an exec::BatchExecutor instead, which keeps threads and
  /// evaluators alive across queries.
  Result<std::vector<index::ObjectId>> ExecuteParallel(
      const PrqQuery& query, const PrqOptions& options,
      const EvaluatorFactory& factory, size_t num_threads,
      PrqStats* stats = nullptr) const;

  /// Like Execute, but each qualifying object comes with its qualification
  /// probability (sorted descending). Inner-accepted objects are evaluated
  /// too (their probability is wanted, even though their membership was
  /// already certain), so Phase 3 runs one evaluation per result instead
  /// of one per surviving candidate only — use an exact evaluator unless
  /// sampling noise in the reported scores is acceptable.
  Result<std::vector<std::pair<index::ObjectId, double>>> ExecuteScored(
      const PrqQuery& query, const PrqOptions& options,
      mc::ProbabilityEvaluator* evaluator, PrqStats* stats = nullptr) const;

  /// The effective θ-region radius the engine would use for this θ —
  /// table-rounded when `use_catalogs`, exact otherwise, and 0 for
  /// θ >= 1/2 (see RrRegion::Compute). Exposed for the region benches.
  double EffectiveThetaRadius(double theta, bool use_catalogs) const;

  /// The engine's catalogs (built on demand); exposed for benches/tests.
  const RadiusCatalog& radius_catalog() const;
  const AlphaCatalog& alpha_catalog() const;

  /// The indexed dataset; exposed so admission control can derive a
  /// dataset-density cost proxy (exec::EstimateQueryCost).
  const index::RStarTree& tree() const { return *tree_; }

 private:
  /// Shared body of RunFilterPhases / FilterCandidateSet: `gather` produces
  /// the Phase-1 candidate set for the computed search box (index range
  /// query or cached-candidate scan); everything else is identical.
  using CandidateGatherer = std::function<void(
      const geom::Rect& search_box,
      std::vector<std::pair<la::Vector, index::ObjectId>>* candidates,
      obs::QueryTrace* trace)>;
  Status RunFilterPhasesImpl(const PrqQuery& query, const PrqOptions& options,
                             const CandidateGatherer& gather,
                             FilterOutcome* outcome, PrqStats* stats,
                             obs::QueryTrace* trace) const;

  const index::RStarTree* tree_;
  // Lazily built per-engine (the tree fixes the dimension); mutable because
  // catalog construction does not affect logical query results.
  mutable std::unique_ptr<RadiusCatalog> radius_catalog_;
  mutable std::unique_ptr<AlphaCatalog> alpha_catalog_;
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_ENGINE_H_
