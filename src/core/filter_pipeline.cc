#include "core/filter_pipeline.h"

#include <algorithm>
#include <cmath>

namespace gprq::core {

Status ValidatePrq(const PrqQuery& query, const PrqOptions& options,
                   size_t dim) {
  if (query.query_object.dim() != dim) {
    return Status::InvalidArgument("query dimension does not match index");
  }
  if (!(query.delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  if (!(query.theta > 0.0 && query.theta < 1.0)) {
    // θ = 0 would select every object (a Gaussian has infinite spread);
    // θ = 1 can never be met (Section III-A).
    return Status::InvalidArgument("theta must be in (0, 1)");
  }
  if ((options.strategies & kStrategyAll) == 0) {
    return Status::InvalidArgument("at least one strategy must be enabled");
  }
  return Status::OK();
}

QueryGeometry PrepareQueryGeometry(const PrqQuery& query,
                                   const PrqOptions& options, size_t dim,
                                   const RadiusCatalog* radius_catalog,
                                   const AlphaCatalog* alpha_catalog) {
  const GaussianDistribution& g = query.query_object;
  QueryGeometry geometry;
  geometry.use_rr = options.strategies & kStrategyRR;
  geometry.use_or = options.strategies & kStrategyOR;
  geometry.use_bf = options.strategies & kStrategyBF;

  double r_theta = 0.0;
  if (query.theta < 0.5) {
    r_theta = (options.use_catalogs && radius_catalog != nullptr)
                  ? radius_catalog->LookupRadius(query.theta)
                  : RadiusCatalog::ExactRadius(dim, query.theta);
  }
  if (geometry.use_rr || geometry.use_or) {
    geometry.rr = RrRegion::Compute(g, query.delta, r_theta);
  }
  if (geometry.use_or) {
    geometry.oreg = OrRegion::Compute(g, query.delta, r_theta);
  }
  if (geometry.use_bf) {
    geometry.bf =
        BfBounds::Compute(g, query.delta, query.theta,
                          options.use_catalogs ? alpha_catalog : nullptr);
    if (geometry.bf.nothing_qualifies) geometry.proved_empty = true;
  }
  return geometry;
}

bool ComputeSearchBox(const QueryGeometry& geometry, const PrqQuery& query,
                      size_t dim, geom::Rect* search_box) {
  const GaussianDistribution& g = query.query_object;
  if (geometry.use_rr) {
    *search_box = geometry.rr.search_box;
    if (geometry.use_bf) {
      const geom::Rect bf_box =
          geom::Rect::CenteredUniform(g.mean(), geometry.bf.alpha_outer);
      la::Vector lo(dim), hi(dim);
      for (size_t i = 0; i < dim; ++i) {
        lo[i] = std::max(search_box->lo()[i], bf_box.lo()[i]);
        hi[i] = std::min(search_box->hi()[i], bf_box.hi()[i]);
        if (lo[i] > hi[i]) {
          // Disjoint boxes: nothing can qualify.
          return false;
        }
      }
      *search_box = geom::Rect(std::move(lo), std::move(hi));
    }
  } else if (geometry.use_bf) {
    *search_box =
        geom::Rect::CenteredUniform(g.mean(), geometry.bf.alpha_outer);
  } else {
    *search_box = geometry.oreg.BoundingBox(g);
  }
  return true;
}

void RunPhase2(const PrqQuery& query, const PrqOptions& options,
               const QueryGeometry& geometry,
               std::vector<std::pair<la::Vector, index::ObjectId>>&& candidates,
               PrqEngine::FilterOutcome* outcome, Phase2Counts* counts) {
  const GaussianDistribution& g = query.query_object;
  const double delta = query.delta;
  const size_t d = g.dim();
  outcome->survivors.reserve(outcome->survivors.size() + candidates.size());
  const bool apply_fringe =
      geometry.use_rr && (options.fringe_filter_any_dim || d == 2);
  const MarginalFilter marginal =
      MarginalFilter::Compute(delta, query.theta);

  for (auto& [point, id] : candidates) {
    if (apply_fringe && !geometry.rr.PassesFringe(point, delta)) {
      ++counts->pruned_rr_fringe;
      continue;
    }
    if (geometry.use_bf) {
      const double dist_sq = la::SquaredDistance(point, g.mean());
      if (dist_sq > geometry.bf.alpha_outer * geometry.bf.alpha_outer) {
        ++counts->pruned_bf_outer;
        continue;
      }
      if (geometry.bf.has_inner &&
          dist_sq <= geometry.bf.alpha_inner * geometry.bf.alpha_inner) {
        // Guaranteed qualifier (lower-bounding function): accept without
        // numerical integration (Algorithm 2, line 9).
        outcome->accepted.emplace_back(point, id);
        ++counts->accepted_bf_inner;
        continue;
      }
    }
    if (geometry.use_or && !geometry.oreg.Contains(g, point)) {
      ++counts->pruned_or;
      continue;
    }
    if (options.use_marginal_filter && !marginal.Passes(g, point)) {
      ++counts->pruned_marginal;
      continue;
    }
    outcome->survivors.emplace_back(std::move(point), id);
  }
}

}  // namespace gprq::core
