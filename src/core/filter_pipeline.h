#ifndef GPRQ_CORE_FILTER_PIPELINE_H_
#define GPRQ_CORE_FILTER_PIPELINE_H_

// The query-side filter pipeline shared by every execution surface: the
// in-memory PrqEngine, the paged single-tree path (core/paged_prq) and the
// sharded scatter-gather engine (shard/sharded_engine). One implementation
// of validation, per-query filter geometry, the Phase-1 search box and the
// Phase-2 filter loop means the three paths cannot drift apart — the
// differential suites compare them id-for-id, and the sharded engine routes
// queries with the *same* search box the single-tree engine searches with.

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/alpha_catalog.h"
#include "core/engine.h"
#include "core/filters.h"
#include "core/prq.h"
#include "core/radius_catalog.h"
#include "geom/rect.h"
#include "index/rstar_tree.h"
#include "la/vector.h"

namespace gprq::core {

/// The argument checks every execution path performs before touching an
/// index: dimension match, δ > 0, θ ∈ (0, 1), at least one strategy.
Status ValidatePrq(const PrqQuery& query, const PrqOptions& options,
                   size_t dim);

/// Per-query filter geometry: which strategies are active and their
/// precomputed regions. Built once per query by PrepareQueryGeometry; read
/// concurrently by any number of shard tasks (immutable after build).
struct QueryGeometry {
  bool use_rr = false;
  bool use_or = false;
  bool use_bf = false;
  RrRegion rr;
  OrRegion oreg;
  BfBounds bf;
  /// The BF lower bound proved nothing can qualify — before any index
  /// access (Algorithm 2's early exit).
  bool proved_empty = false;
};

/// Computes the per-query regions for the enabled strategies. Catalogs are
/// consulted only when options.use_catalogs (pass null otherwise); a null
/// catalog with use_catalogs falls back to the exact solve, matching
/// PrqEngine::EffectiveThetaRadius's contract of never dereferencing a
/// catalog it was not given.
QueryGeometry PrepareQueryGeometry(const PrqQuery& query,
                                   const PrqOptions& options, size_t dim,
                                   const RadiusCatalog* radius_catalog,
                                   const AlphaCatalog* alpha_catalog);

/// The Phase-1 search region (paper Algorithms 1-2): the RR box when RR is
/// enabled — intersected with the BF outer box when both are on, since both
/// are supersets of the qualifying set — the BF outer box for BF-only, and
/// the oblique region's bounding box for pure OR. Returns false when the RR
/// and BF boxes are disjoint (nothing can qualify; `search_box` is then
/// meaningless). This box is also the shard-routing primitive: a shard
/// whose MBR misses it cannot contribute a candidate.
bool ComputeSearchBox(const QueryGeometry& geometry, const PrqQuery& query,
                      size_t dim, geom::Rect* search_box);

/// Per-filter prune attribution of one Phase-2 pass; a candidate counts
/// toward the *first* filter that dropped it (RR-fringe, BF-outer, OR,
/// marginal — the engine's order).
struct Phase2Counts {
  uint64_t pruned_rr_fringe = 0;
  uint64_t pruned_bf_outer = 0;
  uint64_t pruned_or = 0;
  uint64_t pruned_marginal = 0;
  uint64_t accepted_bf_inner = 0;
};

/// The Phase-2 analytical filter loop: moves each candidate into
/// outcome->accepted (BF inner radius — certain qualifier, no integration
/// needed) or outcome->survivors (needs Phase 3), or drops it. Appends to
/// the outcome so shard-parallel callers can merge per-shard passes into
/// one union outcome.
void RunPhase2(const PrqQuery& query, const PrqOptions& options,
               const QueryGeometry& geometry,
               std::vector<std::pair<la::Vector, index::ObjectId>>&& candidates,
               PrqEngine::FilterOutcome* outcome, Phase2Counts* counts);

}  // namespace gprq::core

#endif  // GPRQ_CORE_FILTER_PIPELINE_H_
