#include "core/filters.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/special.h"

namespace gprq::core {

RrRegion RrRegion::Compute(const GaussianDistribution& g, double delta,
                           double r_theta) {
  assert(delta > 0.0);
  assert(r_theta >= 0.0);
  const size_t d = g.dim();
  la::Vector half(d);
  for (size_t i = 0; i < d; ++i) half[i] = g.Sigma(i) * r_theta;
  RrRegion region;
  region.r_theta = r_theta;
  region.core_box = geom::Rect::Centered(g.mean(), half);
  region.search_box = region.core_box.Inflated(delta);
  return region;
}

OrRegion OrRegion::Compute(const GaussianDistribution& g, double delta,
                           double r_theta) {
  assert(delta > 0.0);
  assert(r_theta >= 0.0);
  const size_t d = g.dim();
  OrRegion region;
  region.half_widths = la::Vector(d);
  for (size_t i = 0; i < d; ++i) {
    // s_i·r_θ + δ, with s_i = 1/sqrt(λ_i(Σ⁻¹)) (Fig. 7).
    region.half_widths[i] = g.axis_scales()[i] * r_theta + delta;
  }
  return region;
}

bool OrRegion::Contains(const GaussianDistribution& g,
                        const la::Vector& object) const {
  const la::Vector y = g.ToEigenFrame(object);
  for (size_t i = 0; i < y.dim(); ++i) {
    if (std::abs(y[i]) > half_widths[i]) return false;
  }
  return true;
}

geom::Rect OrRegion::BoundingBox(const GaussianDistribution& g) const {
  // The oblique box spans ±Σ_j |E_ij|·w_j along world axis i.
  const size_t d = g.dim();
  const la::Matrix& e = g.eigen_basis();
  la::Vector half(d);
  for (size_t i = 0; i < d; ++i) {
    double extent = 0.0;
    for (size_t j = 0; j < d; ++j) {
      extent += std::abs(e(i, j)) * half_widths[j];
    }
    half[i] = extent;
  }
  return geom::Rect::Centered(g.mean(), half);
}

bool MarginalFilter::Passes(const GaussianDistribution& g,
                            const la::Vector& object) const {
  return UpperBound(g, object) >= theta;
}

double MarginalFilter::UpperBound(const GaussianDistribution& g,
                                  const la::Vector& object) const {
  const la::Vector c = g.ToEigenFrame(object);
  double bound = 1.0;
  for (size_t i = 0; i < c.dim(); ++i) {
    const double s = g.axis_scales()[i];
    const double marginal = stats::StandardNormalCdf((c[i] + delta) / s) -
                            stats::StandardNormalCdf((c[i] - delta) / s);
    bound = std::min(bound, marginal);
  }
  return bound;
}

namespace {

/// (λ_ref)^{d/2}·|Σ|^{1/2} = Π_i (s_i / s_ref), computed in log space so
/// narrow high-dimensional distributions (paper Section VI, Eqs. 36-37)
/// cannot underflow.
double ScaleFactor(const la::Vector& scales, double s_ref) {
  double log_factor = 0.0;
  for (size_t i = 0; i < scales.dim(); ++i) {
    log_factor += std::log(scales[i] / s_ref);
  }
  return std::exp(log_factor);
}

}  // namespace

BfBounds BfBounds::Compute(const GaussianDistribution& g, double delta,
                           double theta, const AlphaCatalog* catalog) {
  assert(delta > 0.0);
  assert(theta > 0.0 && theta < 1.0);
  const la::Vector& scales = g.axis_scales();
  const double s_min = scales[0];
  const double s_max = scales[scales.dim() - 1];

  BfBounds bounds;

  // ---- Outer radius α∥ (Eqs. 29/32, with λ∥ = 1/s_max²). -------------
  {
    const double scaled_delta = delta / s_max;              // √λ∥ · δ
    const double scaled_theta = ScaleFactor(scales, s_max) * theta;
    AlphaLookup lookup;
    if (catalog != nullptr) {
      lookup = catalog->LookupOuter(scaled_delta, scaled_theta);
      if (lookup.kind == AlphaLookup::Kind::kUnavailable) {
        lookup = AlphaCatalog::Exact(g.dim(), scaled_delta, scaled_theta);
        bounds.outer_used_exact_fallback = true;
      }
    } else {
      lookup = AlphaCatalog::Exact(g.dim(), scaled_delta, scaled_theta);
    }
    if (lookup.kind == AlphaLookup::Kind::kNothingQualifies) {
      bounds.nothing_qualifies = true;
      return bounds;
    }
    bounds.alpha_outer = lookup.alpha * s_max;               // β∥ / √λ∥
  }

  // ---- Inner radius α⊥ (Eqs. 30-31/33, with λ⊥ = 1/s_min²). ----------
  {
    const double scaled_theta = ScaleFactor(scales, s_min) * theta;
    if (scaled_theta < 1.0) {
      const double scaled_delta = delta / s_min;             // √λ⊥ · δ
      AlphaLookup lookup;
      if (catalog != nullptr) {
        lookup = catalog->LookupInner(scaled_delta, scaled_theta);
        // An out-of-grid inner lookup simply forfeits the optimization; no
        // exact fallback is required for correctness, but it is cheap and
        // strictly improves filtering, so take it.
        if (lookup.kind == AlphaLookup::Kind::kUnavailable) {
          lookup = AlphaCatalog::Exact(g.dim(), scaled_delta, scaled_theta);
        }
      } else {
        lookup = AlphaCatalog::Exact(g.dim(), scaled_delta, scaled_theta);
      }
      if (lookup.kind == AlphaLookup::Kind::kValue) {
        bounds.has_inner = true;
        bounds.alpha_inner = lookup.alpha * s_min;           // β⊥ / √λ⊥
      }
    }
    // scaled_theta >= 1: the lower-bounding function cannot reach θ
    // anywhere — no "internal hole" (paper Eq. 37 discussion).
  }
  return bounds;
}

}  // namespace gprq::core
