#ifndef GPRQ_CORE_FILTERS_H_
#define GPRQ_CORE_FILTERS_H_

#include "core/alpha_catalog.h"
#include "core/gaussian.h"
#include "geom/rect.h"
#include "la/vector.h"

namespace gprq::core {

/// Per-query geometry of the Rectilinear-Region-based strategy (Section
/// IV-A). The θ-region's axis-aligned bounding box (half-widths σ_i·r_θ,
/// Property 2) is Minkowski-expanded by δ for the index search (Fig. 4);
/// the fringe test discards candidates in the corners of the expanded box.
struct RrRegion {
  geom::Rect core_box;    // bounding box of the θ-region (Fig. 2)
  geom::Rect search_box;  // core box inflated by δ (Fig. 4)
  double r_theta = 0.0;

  /// Computes the regions. `r_theta` is the (possibly table-rounded)
  /// Mahalanobis radius; pass 0 for θ >= 1/2, where the θ-region degenerates
  /// to the mean (any object farther than δ from q then has qualification
  /// probability < 1/2 <= θ by the half-space argument).
  static RrRegion Compute(const GaussianDistribution& g, double delta,
                          double r_theta);

  /// The fringe filter: a point belongs to the Minkowski sum of the core
  /// box and a δ-ball iff its distance to the core box is <= δ. The paper
  /// applies this only for d = 2 (Algorithm 1, Phase 2) because it
  /// constructs the fringe region explicitly; the distance form used here
  /// is equivalent in d = 2 and valid in any dimension.
  bool PassesFringe(const la::Vector& object, double delta) const {
    return core_box.MinSquaredDistance(object) <= delta * delta;
  }
};

/// Per-query geometry of the Oblique-Region-based strategy (Section IV-B):
/// the box aligned with the θ-region's eigen axes, expanded by δ
/// (Fig. 7: |y_i| <= s_i·r_θ + δ in the rotated frame y = Eᵀ(x − q)).
struct OrRegion {
  la::Vector half_widths;  // per eigen axis, ascending-scale order

  static OrRegion Compute(const GaussianDistribution& g, double delta,
                          double r_theta);

  /// True if the object is inside the oblique box (Property 3 transform).
  bool Contains(const GaussianDistribution& g,
                const la::Vector& object) const;

  /// Axis-aligned bounding box of the oblique region, usable for a Phase-1
  /// index search when no rectilinear/BF region is available (pure-OR mode;
  /// the paper notes this box "is generally large").
  geom::Rect BoundingBox(const GaussianDistribution& g) const;
};

/// Per-query state of the *marginal filter* (this library's extension
/// toward the paper's Section-VII call for better medium/high-dimensional
/// filtering). In the eigen frame the event ‖x−o‖ <= δ implies the 1-D
/// event |s_i z_i − c_i| <= δ on every axis, whose probability is an exact
/// Φ difference. Hence
///
///   Pr(‖x−o‖ <= δ)  <=  min_i [ Φ((c_i+δ)/s_i) − Φ((c_i−δ)/s_i) ],
///
/// and an object whose smallest axis marginal is below θ can be pruned
/// with no false dismissals. This dominates the OR box: the OR bounds are
/// the |c_i| beyond which the same marginal falls below θ-ish mass, but
/// the marginal filter uses the exact per-axis probability and also prunes
/// objects whose coordinates are moderately large on *several* axes.
/// Cost: one eigen-frame rotation (shared with OR) plus 2d Φ evaluations.
struct MarginalFilter {
  double delta = 0.0;
  double theta = 0.0;

  static MarginalFilter Compute(double delta, double theta) {
    return MarginalFilter{delta, theta};
  }

  /// True if the object survives (no axis marginal falls below θ).
  bool Passes(const GaussianDistribution& g, const la::Vector& object) const;

  /// The bound itself: min over axes of the 1-D marginal probability.
  double UpperBound(const GaussianDistribution& g,
                    const la::Vector& object) const;
};

/// Per-query radii of the Bounding-Function-based strategy (Section IV-C):
/// objects farther than `alpha_outer` from q cannot qualify (upper-bounding
/// function p∥), objects within `alpha_inner` qualify for sure
/// (lower-bounding function p⊥) and skip numerical integration.
struct BfBounds {
  /// The outer lookup proved that no object can reach θ: the result is
  /// empty and no index search is needed.
  bool nothing_qualifies = false;

  double alpha_outer = 0.0;  // always valid unless nothing_qualifies

  bool has_inner = false;    // the "internal hole" of Fig. 9 may not exist
  double alpha_inner = 0.0;

  /// True when a table lookup fell outside the grid and the exact solver
  /// was used instead (reported in benches).
  bool outer_used_exact_fallback = false;

  /// Computes α∥ (and α⊥ if it exists) per Eqs. (28)–(33). Pass
  /// `catalog == nullptr` to bypass the table and solve exactly.
  static BfBounds Compute(const GaussianDistribution& g, double delta,
                          double theta, const AlphaCatalog* catalog);
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_FILTERS_H_
