#include "core/gaussian.h"

#include <cassert>
#include <cmath>

#include "la/eigen_sym.h"

namespace gprq::core {

Result<GaussianDistribution> GaussianDistribution::Create(la::Vector mean,
                                                          la::Matrix cov) {
  if (mean.dim() == 0) {
    return Status::InvalidArgument("mean must have dimension >= 1");
  }
  if (cov.rows() != mean.dim() || cov.cols() != mean.dim()) {
    return Status::InvalidArgument("covariance must be d x d");
  }
  auto chol = la::Cholesky::Factor(cov);
  if (!chol.ok()) return chol.status();
  auto eigen = la::DecomposeSymmetric(cov);
  if (!eigen.ok()) return eigen.status();

  la::Vector scales(mean.dim());
  for (size_t i = 0; i < mean.dim(); ++i) {
    const double ev = eigen->eigenvalues[i];
    if (ev <= 0.0) {
      return Status::NumericalError("covariance has non-positive eigenvalue");
    }
    scales[i] = std::sqrt(ev);
  }
  return GaussianDistribution(std::move(mean), std::move(cov),
                              std::move(*chol), std::move(scales),
                              std::move(eigen->eigenvectors));
}

GaussianDistribution::GaussianDistribution(la::Vector mean, la::Matrix cov,
                                           la::Cholesky chol,
                                           la::Vector axis_scales,
                                           la::Matrix eigen_basis)
    : mean_(std::move(mean)),
      cov_(std::move(cov)),
      chol_(std::move(chol)),
      axis_scales_(std::move(axis_scales)),
      eigen_basis_(std::move(eigen_basis)) {
  determinant_ = chol_.Determinant();
  const double d = static_cast<double>(dim());
  log_norm_constant_ =
      -0.5 * d * std::log(2.0 * M_PI) - 0.5 * chol_.LogDeterminant();
}

double GaussianDistribution::MahalanobisSquared(const la::Vector& x) const {
  assert(x.dim() == dim());
  return chol_.InverseQuadraticForm(x - mean_);
}

double GaussianDistribution::LogPdf(const la::Vector& x) const {
  return log_norm_constant_ - 0.5 * MahalanobisSquared(x);
}

double GaussianDistribution::Pdf(const la::Vector& x) const {
  return std::exp(LogPdf(x));
}

double GaussianDistribution::Sigma(size_t i) const {
  assert(i < dim());
  return std::sqrt(cov_(i, i));
}

la::Vector GaussianDistribution::ToEigenFrame(const la::Vector& x) const {
  assert(x.dim() == dim());
  const la::Vector shifted = x - mean_;
  la::Vector y(dim());
  for (size_t j = 0; j < dim(); ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < dim(); ++i) sum += eigen_basis_(i, j) * shifted[i];
    y[j] = sum;
  }
  return y;
}

void GaussianDistribution::TransformStandard(const la::Vector& z,
                                             la::Vector& out) const {
  const size_t d = dim();
  assert(z.dim() == d);
  if (out.dim() != d) out = la::Vector(d);
  for (size_t i = 0; i < d; ++i) out[i] = mean_[i];
  const la::Matrix& l = chol_.lower();
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = j; i < d; ++i) out[i] += l(i, j) * z[j];
  }
}

void GaussianDistribution::Sample(rng::Random& random, la::Vector& out) const {
  const size_t d = dim();
  if (out.dim() != d) out = la::Vector(d);
  for (size_t i = 0; i < d; ++i) out[i] = mean_[i];
  const la::Matrix& l = chol_.lower();
  for (size_t j = 0; j < d; ++j) {
    const double z = random.NextGaussian();
    for (size_t i = j; i < d; ++i) out[i] += l(i, j) * z;
  }
}

}  // namespace gprq::core
