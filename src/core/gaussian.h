#ifndef GPRQ_CORE_GAUSSIAN_H_
#define GPRQ_CORE_GAUSSIAN_H_

#include "common/status.h"
#include "la/cholesky.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "rng/random.h"

namespace gprq::core {

/// The imprecise location of a query object: a d-dimensional Gaussian
/// N(q, Σ) (paper Definition 1). Construction factors Σ once (Cholesky +
/// spectral decomposition), so the per-query quantities every strategy
/// needs — marginal std-deviations σ_i, eigen axes E, axis scales
/// s_i = √eig_i(Σ), |Σ| — are all O(1) afterwards.
class GaussianDistribution {
 public:
  /// Builds the distribution; fails unless `cov` is symmetric
  /// positive-definite and shaped d × d for d = mean.dim().
  static Result<GaussianDistribution> Create(la::Vector mean,
                                             la::Matrix cov);

  size_t dim() const { return mean_.dim(); }
  const la::Vector& mean() const { return mean_; }
  const la::Matrix& covariance() const { return cov_; }

  /// Density p_q(x) of Eq. (1).
  double Pdf(const la::Vector& x) const;
  double LogPdf(const la::Vector& x) const;

  /// (x − q)ᵀ Σ⁻¹ (x − q).
  double MahalanobisSquared(const la::Vector& x) const;

  /// Marginal standard deviation σ_i = sqrt(Σ_ii) (Property 2).
  double Sigma(size_t i) const;

  /// det(Σ).
  double Determinant() const { return determinant_; }

  /// s_i = sqrt(eigenvalue_i(Σ)), ascending. The eigenvalues of Σ⁻¹ are
  /// 1/s_i² with the same eigenvectors, so the paper's λ∥ = min eig(Σ⁻¹)
  /// is 1/MaxAxisScale()² and λ⊥ = max eig(Σ⁻¹) is 1/MinAxisScale()².
  const la::Vector& axis_scales() const { return axis_scales_; }
  double MinAxisScale() const { return axis_scales_[0]; }
  double MaxAxisScale() const { return axis_scales_[dim() - 1]; }

  /// Eigenvector basis of Σ (columns, matching axis_scales()).
  const la::Matrix& eigen_basis() const { return eigen_basis_; }

  /// Rotates into the eigen frame: y = Eᵀ (x − q) (paper Property 3; the
  /// transform behind the OR filter).
  la::Vector ToEigenFrame(const la::Vector& x) const;

  /// Draws a sample x = q + L·z (z iid standard normal) into `out`.
  void Sample(rng::Random& random, la::Vector& out) const;

  /// Applies the affine transform x = q + L·z for a caller-supplied
  /// standard-normal vector z (L = the Cholesky factor of Σ). This is the
  /// hook for quasi-Monte-Carlo sampling, where z comes from a quantile-
  /// transformed low-discrepancy sequence instead of a PRNG.
  void TransformStandard(const la::Vector& z, la::Vector& out) const;

 private:
  GaussianDistribution(la::Vector mean, la::Matrix cov, la::Cholesky chol,
                       la::Vector axis_scales, la::Matrix eigen_basis);

  la::Vector mean_;
  la::Matrix cov_;
  la::Cholesky chol_;
  la::Vector axis_scales_;
  la::Matrix eigen_basis_;
  double determinant_;
  double log_norm_constant_;  // −(d/2)·log(2π) − ½·log|Σ|
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_GAUSSIAN_H_
