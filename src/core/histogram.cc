#include "core/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/filters.h"
#include "core/radius_catalog.h"

namespace gprq::core {

namespace {

constexpr size_t kMaxCells = size_t{1} << 24;

}  // namespace

Result<GridHistogram> GridHistogram::Build(
    const std::vector<la::Vector>& points, size_t cells_per_dim) {
  if (points.empty()) {
    return Status::InvalidArgument("cannot build a histogram of nothing");
  }
  if (cells_per_dim < 1) {
    return Status::InvalidArgument("cells_per_dim must be >= 1");
  }
  const size_t d = points.front().dim();
  double total_cells = 1.0;
  for (size_t i = 0; i < d; ++i) total_cells *= static_cast<double>(cells_per_dim);
  if (total_cells > static_cast<double>(kMaxCells)) {
    return Status::InvalidArgument(
        "grid too large; reduce cells_per_dim for this dimensionality");
  }

  geom::Rect bounds = geom::Rect::Empty(d);
  for (const auto& p : points) {
    if (p.dim() != d) {
      return Status::InvalidArgument("inconsistent point dimensions");
    }
    bounds.ExpandToInclude(p);
  }
  la::Vector lo = bounds.lo();
  la::Vector widths(d);
  for (size_t i = 0; i < d; ++i) {
    const double extent = bounds.hi()[i] - lo[i];
    // Degenerate extents (all points share a coordinate) get a unit width
    // so indexing stays well-defined.
    widths[i] = (extent > 0.0) ? extent / static_cast<double>(cells_per_dim)
                               : 1.0;
  }

  std::vector<uint32_t> counts(static_cast<size_t>(total_cells), 0);
  GridHistogram histogram(std::move(lo), std::move(widths), cells_per_dim,
                          std::move(counts), points.size());
  for (const auto& p : points) {
    size_t index = 0;
    for (size_t i = 0; i < d; ++i) {
      index = index * cells_per_dim + histogram.CellOf(i, p[i]);
    }
    ++histogram.counts_[index];
  }
  return histogram;
}

size_t GridHistogram::CellOf(size_t dim_index, double coordinate) const {
  const double offset = (coordinate - lo_[dim_index]) / widths_[dim_index];
  const auto cell = static_cast<long>(std::floor(offset));
  return static_cast<size_t>(
      std::clamp<long>(cell, 0, static_cast<long>(cells_per_dim_) - 1));
}

geom::Rect GridHistogram::CellBox(const std::vector<size_t>& cell) const {
  const size_t d = dim();
  la::Vector lo(d), hi(d);
  for (size_t i = 0; i < d; ++i) {
    lo[i] = lo_[i] + widths_[i] * static_cast<double>(cell[i]);
    hi[i] = lo[i] + widths_[i];
  }
  return geom::Rect(std::move(lo), std::move(hi));
}

la::Vector GridHistogram::CellCenter(const std::vector<size_t>& cell) const {
  const size_t d = dim();
  la::Vector center(d);
  for (size_t i = 0; i < d; ++i) {
    center[i] =
        lo_[i] + widths_[i] * (static_cast<double>(cell[i]) + 0.5);
  }
  return center;
}

uint32_t GridHistogram::CountAt(const std::vector<size_t>& cell) const {
  size_t index = 0;
  for (size_t i = 0; i < dim(); ++i) {
    index = index * cells_per_dim_ + cell[i];
  }
  return counts_[index];
}

namespace {

/// Iterates all grid cells whose box intersects [cell_lo, cell_hi] ranges,
/// invoking fn(cell indices).
template <typename Fn>
void ForEachCellInRange(const std::vector<size_t>& lo,
                        const std::vector<size_t>& hi, Fn&& fn) {
  const size_t d = lo.size();
  std::vector<size_t> cell = lo;
  for (;;) {
    fn(cell);
    size_t i = d;
    while (i > 0) {
      --i;
      if (cell[i] < hi[i]) {
        ++cell[i];
        for (size_t j = i + 1; j < d; ++j) cell[j] = lo[j];
        break;
      }
      if (i == 0) return;
    }
  }
}

double OverlapFraction(const geom::Rect& cell, const geom::Rect& box) {
  const double cell_volume = cell.Volume();
  if (cell_volume <= 0.0) {
    return box.Contains(cell.Center()) ? 1.0 : 0.0;
  }
  return cell.IntersectionVolume(box) / cell_volume;
}

}  // namespace

double GridHistogram::EstimateInRect(const geom::Rect& box) const {
  assert(box.dim() == dim());
  const size_t d = dim();
  std::vector<size_t> cell_lo(d), cell_hi(d);
  for (size_t i = 0; i < d; ++i) {
    cell_lo[i] = CellOf(i, box.lo()[i]);
    cell_hi[i] = CellOf(i, box.hi()[i]);
  }
  double estimate = 0.0;
  ForEachCellInRange(cell_lo, cell_hi, [&](const std::vector<size_t>& cell) {
    const uint32_t count = CountAt(cell);
    if (count == 0) return;
    estimate += count * OverlapFraction(CellBox(cell), box);
  });
  return estimate;
}

Result<PrqCandidateEstimate> EstimatePrqCandidates(
    const GridHistogram& histogram, const GaussianDistribution& g,
    double delta, double theta, StrategyMask strategies) {
  if (g.dim() != histogram.dim()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  if (!(delta > 0.0) || !(theta > 0.0 && theta < 1.0)) {
    return Status::InvalidArgument("invalid delta/theta");
  }
  if ((strategies & kStrategyAll) == 0) {
    return Status::InvalidArgument("at least one strategy required");
  }
  const size_t d = histogram.dim();
  const bool use_rr = strategies & kStrategyRR;
  const bool use_or = strategies & kStrategyOR;
  const bool use_bf = strategies & kStrategyBF;

  const double r_theta =
      (theta < 0.5) ? RadiusCatalog::ExactRadius(d, theta) : 0.0;
  RrRegion rr;
  OrRegion oreg;
  BfBounds bf;
  if (use_rr || use_or) rr = RrRegion::Compute(g, delta, r_theta);
  if (use_or) oreg = OrRegion::Compute(g, delta, r_theta);
  PrqCandidateEstimate estimate;
  if (use_bf) {
    bf = BfBounds::Compute(g, delta, theta, /*catalog=*/nullptr);
    if (bf.nothing_qualifies) {
      estimate.proved_empty = true;
      return estimate;
    }
  }

  // The same search box the engine would use.
  geom::Rect search_box = geom::Rect::Empty(d);
  if (use_rr) {
    search_box = rr.search_box;
    if (use_bf) {
      const geom::Rect bf_box =
          geom::Rect::CenteredUniform(g.mean(), bf.alpha_outer);
      la::Vector lo(d), hi(d);
      for (size_t i = 0; i < d; ++i) {
        lo[i] = std::max(search_box.lo()[i], bf_box.lo()[i]);
        hi[i] = std::min(search_box.hi()[i], bf_box.hi()[i]);
        if (lo[i] > hi[i]) {
          estimate.proved_empty = true;
          return estimate;
        }
      }
      search_box = geom::Rect(std::move(lo), std::move(hi));
    }
  } else if (use_bf) {
    search_box = geom::Rect::CenteredUniform(g.mean(), bf.alpha_outer);
  } else {
    search_box = oreg.BoundingBox(g);
  }

  std::vector<size_t> cell_lo(d), cell_hi(d);
  for (size_t i = 0; i < d; ++i) {
    cell_lo[i] = histogram.CellOf(i, search_box.lo()[i]);
    cell_hi[i] = histogram.CellOf(i, search_box.hi()[i]);
  }
  ForEachCellInRange(cell_lo, cell_hi, [&](const std::vector<size_t>& cell) {
    const uint32_t count = histogram.CountAt(cell);
    if (count == 0) return;
    const geom::Rect cell_box = histogram.CellBox(cell);
    const double mass = count * OverlapFraction(cell_box, search_box);
    if (mass <= 0.0) return;
    estimate.index_candidates += mass;

    // Phase-2 membership judged at the cell center (the estimator's
    // granularity limit).
    const la::Vector center = histogram.CellCenter(cell);
    if (use_rr && !rr.PassesFringe(center, delta)) return;
    if (use_bf) {
      const double dist_sq = la::SquaredDistance(center, g.mean());
      if (dist_sq > bf.alpha_outer * bf.alpha_outer) return;
      if (bf.has_inner && dist_sq <= bf.alpha_inner * bf.alpha_inner) {
        estimate.accepted_free += mass;
        return;
      }
    }
    if (use_or && !oreg.Contains(g, center)) return;
    estimate.integration_candidates += mass;
  });
  return estimate;
}

}  // namespace gprq::core
