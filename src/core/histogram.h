#ifndef GPRQ_CORE_HISTOGRAM_H_
#define GPRQ_CORE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gaussian.h"
#include "core/prq.h"
#include "geom/rect.h"
#include "la/vector.h"

namespace gprq::core {

class GridHistogram;
struct PrqCandidateEstimate;
Result<PrqCandidateEstimate> EstimatePrqCandidates(
    const GridHistogram& histogram, const GaussianDistribution& g,
    double delta, double theta, StrategyMask strategies);

/// An equi-width d-dimensional grid histogram over a point set — the
/// classic selectivity-estimation structure, here used to predict PRQ
/// candidate counts *without running the query*. Since Phase 3 cost is
/// proportional to the number of integration candidates (paper Tables
/// I/II), the estimate doubles as a query cost model.
class GridHistogram {
 public:
  /// Builds a histogram with `cells_per_dim` buckets per dimension over
  /// the bounding box of `points`. Total cells = cells_per_dim^d; capped
  /// at 2^24 (fails with InvalidArgument beyond — lower the resolution for
  /// high dimensions).
  static Result<GridHistogram> Build(const std::vector<la::Vector>& points,
                                     size_t cells_per_dim);

  size_t dim() const { return lo_.dim(); }
  size_t cells_per_dim() const { return cells_per_dim_; }
  size_t total_points() const { return total_points_; }

  /// Estimated number of points inside `box` (closed), assuming uniform
  /// density within each cell (fractional cell overlap).
  double EstimateInRect(const geom::Rect& box) const;

 private:
  friend Result<PrqCandidateEstimate> EstimatePrqCandidates(
      const GridHistogram& histogram, const GaussianDistribution& g,
      double delta, double theta, StrategyMask strategies);

  GridHistogram(la::Vector lo, la::Vector widths, size_t cells_per_dim,
                std::vector<uint32_t> counts, size_t total_points)
      : lo_(std::move(lo)),
        widths_(std::move(widths)),
        cells_per_dim_(cells_per_dim),
        counts_(std::move(counts)),
        total_points_(total_points) {}

  /// Cell index along one dimension for a coordinate (clamped).
  size_t CellOf(size_t dim_index, double coordinate) const;
  geom::Rect CellBox(const std::vector<size_t>& cell) const;
  la::Vector CellCenter(const std::vector<size_t>& cell) const;
  uint32_t CountAt(const std::vector<size_t>& cell) const;

  la::Vector lo_;       // grid origin
  la::Vector widths_;   // per-dimension cell width
  size_t cells_per_dim_;
  std::vector<uint32_t> counts_;  // row-major over dimensions
  size_t total_points_;
};

/// Estimated Phase-1/2 outcomes for a PRQ under a strategy combination.
struct PrqCandidateEstimate {
  double index_candidates = 0.0;        // Phase-1 search-box content
  double integration_candidates = 0.0;  // after the Phase-2 filters
  double accepted_free = 0.0;           // BF inner-ball auto-accepts
  /// The BF outer bound proves the result empty (no search needed).
  bool proved_empty = false;
};

// EstimatePrqCandidates (declared above): predicts the candidate counts the
// engine would report for PRQ(g, δ, θ) under `strategies`, by sweeping the
// histogram cells that overlap the Phase-1 search region and applying the
// Phase-2 filters at cell granularity (fractional box overlap, membership
// at the cell center). Uses exact (not table) radii. Typical accuracy is
// ~10-30% at 64x64 cells on clustered 2-D data — good enough to rank
// strategies and to size Phase-3 budgets ahead of execution.

}  // namespace gprq::core

#endif  // GPRQ_CORE_HISTOGRAM_H_
