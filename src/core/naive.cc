#include "core/naive.h"

namespace gprq::core {

Result<std::vector<index::ObjectId>> NaivePrq(
    const std::vector<la::Vector>& points, const PrqQuery& query,
    mc::ProbabilityEvaluator* evaluator) {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  if (!(query.delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  if (!(query.theta > 0.0 && query.theta < 1.0)) {
    return Status::InvalidArgument("theta must be in (0, 1)");
  }
  std::vector<index::ObjectId> result;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].dim() != query.query_object.dim()) {
      return Status::InvalidArgument("point dimension mismatch");
    }
    if (evaluator->QualificationDecision(query.query_object, points[i],
                                         query.delta, query.theta)) {
      result.push_back(static_cast<index::ObjectId>(i));
    }
  }
  return result;
}

}  // namespace gprq::core
