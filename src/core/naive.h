#ifndef GPRQ_CORE_NAIVE_H_
#define GPRQ_CORE_NAIVE_H_

#include <vector>

#include "common/status.h"
#include "core/prq.h"
#include "index/rstar_tree.h"
#include "la/vector.h"
#include "mc/probability_evaluator.h"

namespace gprq::core {

/// Brute-force PRQ baseline: evaluates the qualification probability of
/// every object in the dataset and keeps those reaching θ. No index, no
/// filtering — this is the correctness oracle for the engine's strategies
/// (none of which may dismiss an object the oracle keeps) and the "no
/// filtering" baseline in the benchmarks.
Result<std::vector<index::ObjectId>> NaivePrq(
    const std::vector<la::Vector>& points, const PrqQuery& query,
    mc::ProbabilityEvaluator* evaluator);

}  // namespace gprq::core

#endif  // GPRQ_CORE_NAIVE_H_
