#include "core/one_dim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/special.h"

namespace gprq::core {

OneDimensionalPrq::OneDimensionalPrq(std::vector<double> values) {
  sorted_.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    sorted_.emplace_back(values[i], static_cast<index::ObjectId>(i));
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double OneDimensionalPrq::QualificationProbability(double q, double sigma,
                                                   double value,
                                                   double delta) {
  assert(sigma > 0.0);
  assert(delta >= 0.0);
  const double m = value - q;
  return stats::StandardNormalCdf((m + delta) / sigma) -
         stats::StandardNormalCdf((m - delta) / sigma);
}

double OneDimensionalPrq::QualifyingHalfWidth(double sigma, double delta,
                                              double theta) {
  assert(sigma > 0.0 && delta > 0.0);
  assert(theta > 0.0 && theta < 1.0);
  const double peak = QualificationProbability(0.0, sigma, 0.0, delta);
  if (peak < theta) return -1.0;
  if (peak == theta) return 0.0;

  // f(m) is strictly decreasing for m >= 0 and tends to 0; bracket then
  // bisect. f(m) <= Φ((m−δ)/σ) complement tail, so m = δ + σ·z covers it.
  double lo = 0.0;
  double hi = delta + sigma;
  while (QualificationProbability(0.0, sigma, hi, delta) > theta) {
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (QualificationProbability(0.0, sigma, mid, delta) >= theta) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-13 * std::max(1.0, hi)) break;
  }
  // Return the outer edge so boundary values (f == θ exactly) qualify.
  return hi;
}

Result<std::vector<index::ObjectId>> OneDimensionalPrq::Query(
    double q, double sigma, double delta, double theta) const {
  if (!(sigma > 0.0)) {
    return Status::InvalidArgument("sigma must be > 0");
  }
  if (!(delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  if (!(theta > 0.0 && theta < 1.0)) {
    return Status::InvalidArgument("theta must be in (0, 1)");
  }
  std::vector<index::ObjectId> result;
  const double half_width = QualifyingHalfWidth(sigma, delta, theta);
  if (half_width < 0.0) return result;

  const auto begin = std::lower_bound(
      sorted_.begin(), sorted_.end(),
      std::make_pair(q - half_width, index::ObjectId{0}));
  for (auto it = begin; it != sorted_.end() && it->first <= q + half_width;
       ++it) {
    // The bisection edge can overshoot by one ulp-scale step; re-check the
    // exact probability so the interval rounding never admits a
    // non-qualifying value.
    if (QualificationProbability(q, sigma, it->first, delta) >= theta) {
      result.push_back(it->second);
    }
  }
  return result;
}

}  // namespace gprq::core
