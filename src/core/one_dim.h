#ifndef GPRQ_CORE_ONE_DIM_H_
#define GPRQ_CORE_ONE_DIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/rstar_tree.h"

namespace gprq::core {

/// The d = 1 case the paper sets aside as "trivial ... can be implemented
/// using a simple algorithm" (Section I). This module makes that concrete:
/// with x ~ N(q, σ²) the qualification probability of a point o is
///
///   f(o) = Φ((o − q + δ)/σ) − Φ((o − q − δ)/σ),
///
/// an even function of o − q, strictly decreasing in |o − q|. Hence the
/// qualifying set is exactly the interval [q − m*, q + m*] where m* solves
/// f(q + m*) = θ (empty when even f(q) = 2Φ(δ/σ) − 1 < θ). No numerical
/// integration, no spatial index beyond a sorted array.
class OneDimensionalPrq {
 public:
  /// Indexes the values; ids are the original positions.
  explicit OneDimensionalPrq(std::vector<double> values);

  size_t size() const { return sorted_.size(); }

  /// Exact qualification probability of a single value.
  static double QualificationProbability(double q, double sigma, double value,
                                         double delta);

  /// The query half-width m*: values within [q − m*, q + m*] qualify.
  /// Returns a negative value when nothing can qualify (θ unreachable).
  static double QualifyingHalfWidth(double sigma, double delta, double theta);

  /// Runs PRQ(q, σ, δ, θ); returns the ids of qualifying values
  /// (unordered). Fails on non-positive σ/δ or θ outside (0, 1).
  Result<std::vector<index::ObjectId>> Query(double q, double sigma,
                                             double delta,
                                             double theta) const;

 private:
  std::vector<std::pair<double, index::ObjectId>> sorted_;
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_ONE_DIM_H_
