#include "core/paged_prq.h"

#include <cmath>

#include "common/stopwatch.h"
#include "core/filter_pipeline.h"
#include "core/filters.h"

namespace gprq::core {

Result<std::vector<index::ObjectId>> ExecutePagedPrq(
    const index::PagedRStarTree& tree, const PrqQuery& query,
    const PrqOptions& options, mc::ProbabilityEvaluator* evaluator,
    const RadiusCatalog* radius_catalog, const AlphaCatalog* alpha_catalog,
    PrqStats* stats) {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  GPRQ_RETURN_NOT_OK(ValidatePrq(query, options, tree.dim()));
  if (options.use_catalogs &&
      (radius_catalog == nullptr || alpha_catalog == nullptr)) {
    return Status::InvalidArgument(
        "use_catalogs requires prebuilt radius and alpha catalogs");
  }

  const GaussianDistribution& g = query.query_object;
  const double delta = query.delta;
  const double theta = query.theta;
  const size_t d = tree.dim();

  PrqStats local_stats;
  PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = PrqStats();
  Stopwatch phase_timer;

  // ---- Preparation (the shared pipeline — same radii as PrqEngine). ------
  const QueryGeometry geometry =
      PrepareQueryGeometry(query, options, d, radius_catalog, alpha_catalog);
  if (geometry.proved_empty) {
    out_stats.proved_empty = true;
    return std::vector<index::ObjectId>{};
  }
  out_stats.prep_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 1: paged index search. ---------------------------------------
  geom::Rect search_box = geom::Rect::Empty(d);
  if (!ComputeSearchBox(geometry, query, d, &search_box)) {
    out_stats.proved_empty = true;
    return std::vector<index::ObjectId>{};
  }

  const uint64_t misses_before = tree.pool_stats().misses;
  const uint64_t hits_before = tree.pool_stats().hits;
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  GPRQ_RETURN_NOT_OK(tree.RangeQuery(
      search_box, [&candidates](const la::Vector& point,
                                index::ObjectId id) {
        candidates.emplace_back(point, id);
      }));
  // Logical node accesses = pool hits + misses during the query.
  out_stats.node_reads = (tree.pool_stats().misses - misses_before) +
                         (tree.pool_stats().hits - hits_before);
  out_stats.index_candidates = candidates.size();
  out_stats.phase1_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 2: analytical filtering (identical to PrqEngine). -----------
  PrqEngine::FilterOutcome outcome;
  Phase2Counts counts;
  RunPhase2(query, options, geometry, std::move(candidates), &outcome,
            &counts);
  std::vector<index::ObjectId> result;
  result.reserve(outcome.accepted.size());
  for (const auto& [point, id] : outcome.accepted) result.push_back(id);
  out_stats.accepted_without_integration = counts.accepted_bf_inner;
  out_stats.pruned_rr_fringe = counts.pruned_rr_fringe;
  out_stats.pruned_bf_outer = counts.pruned_bf_outer;
  out_stats.pruned_or = counts.pruned_or;
  out_stats.pruned_marginal = counts.pruned_marginal;
  out_stats.integration_candidates = outcome.survivors.size();
  out_stats.phase2_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 3: probability computation. ----------------------------------
  for (const auto& [point, id] : outcome.survivors) {
    if (evaluator->QualificationDecision(g, point, delta, theta)) {
      result.push_back(id);
    }
  }
  out_stats.phase3_seconds = phase_timer.ElapsedSeconds();
  out_stats.result_size = result.size();
  return result;
}

}  // namespace gprq::core
