#include "core/paged_prq.h"

#include <cmath>

#include "common/stopwatch.h"
#include "core/filters.h"

namespace gprq::core {

Result<std::vector<index::ObjectId>> ExecutePagedPrq(
    const index::PagedRStarTree& tree, const PrqQuery& query,
    const PrqOptions& options, mc::ProbabilityEvaluator* evaluator,
    const RadiusCatalog* radius_catalog, const AlphaCatalog* alpha_catalog,
    PrqStats* stats) {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  if (query.query_object.dim() != tree.dim()) {
    return Status::InvalidArgument("query dimension does not match index");
  }
  if (!(query.delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  if (!(query.theta > 0.0 && query.theta < 1.0)) {
    return Status::InvalidArgument("theta must be in (0, 1)");
  }
  if ((options.strategies & kStrategyAll) == 0) {
    return Status::InvalidArgument("at least one strategy must be enabled");
  }
  if (options.use_catalogs &&
      (radius_catalog == nullptr || alpha_catalog == nullptr)) {
    return Status::InvalidArgument(
        "use_catalogs requires prebuilt radius and alpha catalogs");
  }

  const GaussianDistribution& g = query.query_object;
  const double delta = query.delta;
  const double theta = query.theta;
  const size_t d = tree.dim();
  const bool use_rr = options.strategies & kStrategyRR;
  const bool use_or = options.strategies & kStrategyOR;
  const bool use_bf = options.strategies & kStrategyBF;

  PrqStats local_stats;
  PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = PrqStats();
  Stopwatch phase_timer;

  // ---- Preparation (same radii as the in-memory engine). -----------------
  double r_theta = 0.0;
  if (theta < 0.5) {
    r_theta = options.use_catalogs
                  ? radius_catalog->LookupRadius(theta)
                  : RadiusCatalog::ExactRadius(d, theta);
  }
  RrRegion rr;
  OrRegion oreg;
  BfBounds bf;
  if (use_rr || use_or) rr = RrRegion::Compute(g, delta, r_theta);
  if (use_or) oreg = OrRegion::Compute(g, delta, r_theta);
  if (use_bf) {
    bf = BfBounds::Compute(g, delta, theta,
                           options.use_catalogs ? alpha_catalog : nullptr);
    if (bf.nothing_qualifies) {
      out_stats.proved_empty = true;
      return std::vector<index::ObjectId>{};
    }
  }
  out_stats.prep_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 1: paged index search. ---------------------------------------
  geom::Rect search_box = geom::Rect::Empty(d);
  if (use_rr) {
    search_box = rr.search_box;
    if (use_bf) {
      const geom::Rect bf_box =
          geom::Rect::CenteredUniform(g.mean(), bf.alpha_outer);
      la::Vector lo(d), hi(d);
      for (size_t i = 0; i < d; ++i) {
        lo[i] = std::max(search_box.lo()[i], bf_box.lo()[i]);
        hi[i] = std::min(search_box.hi()[i], bf_box.hi()[i]);
        if (lo[i] > hi[i]) {
          out_stats.proved_empty = true;
          return std::vector<index::ObjectId>{};
        }
      }
      search_box = geom::Rect(std::move(lo), std::move(hi));
    }
  } else if (use_bf) {
    search_box = geom::Rect::CenteredUniform(g.mean(), bf.alpha_outer);
  } else {
    search_box = oreg.BoundingBox(g);
  }

  const uint64_t misses_before = tree.pool_stats().misses;
  const uint64_t hits_before = tree.pool_stats().hits;
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  GPRQ_RETURN_NOT_OK(tree.RangeQuery(
      search_box, [&candidates](const la::Vector& point,
                                index::ObjectId id) {
        candidates.emplace_back(point, id);
      }));
  // Logical node accesses = pool hits + misses during the query.
  out_stats.node_reads = (tree.pool_stats().misses - misses_before) +
                         (tree.pool_stats().hits - hits_before);
  out_stats.index_candidates = candidates.size();
  out_stats.phase1_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 2: analytical filtering (identical to PrqEngine). -----------
  std::vector<index::ObjectId> result;
  std::vector<std::pair<la::Vector, index::ObjectId>> survivors;
  survivors.reserve(candidates.size());
  const bool apply_fringe =
      use_rr && (options.fringe_filter_any_dim || d == 2);
  for (auto& [point, id] : candidates) {
    if (apply_fringe && !rr.PassesFringe(point, delta)) continue;
    if (use_bf) {
      const double dist_sq = la::SquaredDistance(point, g.mean());
      if (dist_sq > bf.alpha_outer * bf.alpha_outer) continue;
      if (bf.has_inner && dist_sq <= bf.alpha_inner * bf.alpha_inner) {
        result.push_back(id);
        ++out_stats.accepted_without_integration;
        continue;
      }
    }
    if (use_or && !oreg.Contains(g, point)) continue;
    survivors.emplace_back(std::move(point), id);
  }
  out_stats.integration_candidates = survivors.size();
  out_stats.phase2_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // ---- Phase 3: probability computation. ----------------------------------
  for (const auto& [point, id] : survivors) {
    if (evaluator->QualificationDecision(g, point, delta, theta)) {
      result.push_back(id);
    }
  }
  out_stats.phase3_seconds = phase_timer.ElapsedSeconds();
  out_stats.result_size = result.size();
  return result;
}

}  // namespace gprq::core
