#ifndef GPRQ_CORE_PAGED_PRQ_H_
#define GPRQ_CORE_PAGED_PRQ_H_

#include <vector>

#include "common/status.h"
#include "core/alpha_catalog.h"
#include "core/engine.h"
#include "core/prq.h"
#include "core/radius_catalog.h"
#include "index/paged_tree.h"
#include "mc/probability_evaluator.h"

namespace gprq::core {

/// Runs the paper's three-phase PRQ over a disk-resident tree snapshot
/// instead of the in-memory R*-tree — the storage setting the paper's
/// experiments model (1 KB node pages). Phase 1 issues a paged range query
/// through the snapshot's buffer pool; Phases 2-3 are identical to
/// PrqEngine's, so results match the in-memory engine exactly for the same
/// evaluator.
///
/// Catalog arguments mirror PrqEngine's lazy members: pass prebuilt tables
/// for `options.use_catalogs == true` (both must be non-null and match the
/// tree's dimension), or null with `use_catalogs == false` for exact
/// per-query radii.
Result<std::vector<index::ObjectId>> ExecutePagedPrq(
    const index::PagedRStarTree& tree, const PrqQuery& query,
    const PrqOptions& options, mc::ProbabilityEvaluator* evaluator,
    const RadiusCatalog* radius_catalog, const AlphaCatalog* alpha_catalog,
    PrqStats* stats = nullptr);

}  // namespace gprq::core

#endif  // GPRQ_CORE_PAGED_PRQ_H_
