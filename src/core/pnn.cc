#include "core/pnn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/stopwatch.h"
#include "rng/random.h"

namespace gprq::core {

Result<std::vector<PnnCandidate>> ProbabilisticNearestNeighbor(
    const index::RStarTree& tree, const GaussianDistribution& query,
    uint64_t samples, uint64_t seed, PnnStats* stats) {
  if (query.dim() != tree.dim()) {
    return Status::InvalidArgument("query dimension does not match index");
  }
  if (samples == 0) {
    return Status::InvalidArgument("samples must be >= 1");
  }
  if (tree.empty()) {
    return Status::InvalidArgument("PNN over an empty dataset is undefined");
  }
  PnnStats local;
  PnnStats& out = (stats != nullptr) ? *stats : local;
  out = PnnStats();
  Stopwatch timer;
  const uint64_t node_reads_before = tree.stats().node_reads;

  rng::Random random(seed);
  la::Vector x;
  std::vector<std::pair<double, index::ObjectId>> nearest;
  std::unordered_map<index::ObjectId, uint64_t> wins;
  for (uint64_t i = 0; i < samples; ++i) {
    query.Sample(random, x);
    tree.KnnQuery(x, 1, &nearest);
    ++wins[nearest.front().second];
  }

  std::vector<PnnCandidate> result;
  result.reserve(wins.size());
  const double n = static_cast<double>(samples);
  for (const auto& [id, count] : wins) {
    PnnCandidate candidate;
    candidate.id = id;
    candidate.probability = static_cast<double>(count) / n;
    candidate.std_error = std::sqrt(
        candidate.probability * (1.0 - candidate.probability) / n);
    result.push_back(candidate);
  }
  std::sort(result.begin(), result.end(),
            [](const PnnCandidate& a, const PnnCandidate& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.id < b.id;  // deterministic tie order
            });

  out.samples = samples;
  out.node_reads = tree.stats().node_reads - node_reads_before;
  out.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gprq::core
