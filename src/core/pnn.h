#ifndef GPRQ_CORE_PNN_H_
#define GPRQ_CORE_PNN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gaussian.h"
#include "index/rstar_tree.h"

namespace gprq::core {

/// One probabilistic-nearest-neighbor candidate: the object and the
/// estimated probability that it is the nearest neighbor of the imprecise
/// query object.
struct PnnCandidate {
  index::ObjectId id = 0;
  double probability = 0.0;
  double std_error = 0.0;  // binomial standard error of the estimate
};

struct PnnStats {
  uint64_t samples = 0;      // query-location samples drawn
  uint64_t node_reads = 0;   // R*-tree node accesses across NN lookups
  double seconds = 0.0;
};

/// Probabilistic nearest-neighbor query — the first item of the paper's
/// future work (Section VII). For an imprecise query location x ~ N(q, Σ),
/// the PNN probability of object o is the Gaussian measure of o's Voronoi
/// cell:
///
///   P(o is NN) = Pr( ‖x − o‖ < ‖x − o'‖  for all o' ≠ o ).
///
/// Voronoi cells have no tractable closed form in general position, but the
/// measure is estimated consistently by sampling x from the query Gaussian
/// and answering an exact 1-NN query per sample (best-first search on the
/// R*-tree, microseconds each). Returns every object that ever won a
/// sample, with its frequency estimate and binomial standard error, sorted
/// by probability descending. Probabilities sum to 1 across the result.
///
/// Deterministic for a given seed.
Result<std::vector<PnnCandidate>> ProbabilisticNearestNeighbor(
    const index::RStarTree& tree, const GaussianDistribution& query,
    uint64_t samples, uint64_t seed, PnnStats* stats = nullptr);

}  // namespace gprq::core

#endif  // GPRQ_CORE_PNN_H_
