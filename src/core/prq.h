#ifndef GPRQ_CORE_PRQ_H_
#define GPRQ_CORE_PRQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/gaussian.h"
#include "index/rstar_tree.h"

namespace gprq::core {

/// A probabilistic range query PRQ(q, δ, θ) (paper Definition 2): return
/// every object whose qualification probability Pr(‖x − o‖² <= δ²) is at
/// least θ, where x ~ N(q, Σ) is the imprecise query location.
struct PrqQuery {
  GaussianDistribution query_object;
  double delta = 0.0;  // distance threshold, > 0
  double theta = 0.0;  // probability threshold, in (0, 1)
};

/// Filtering strategies of Section IV, combinable as a bitmask. The paper
/// evaluates RR, BF, RR+BF, RR+OR, BF+OR and ALL (OR is only useful as a
/// filter, so it never appears alone in the paper; this library additionally
/// supports a pure-OR mode that searches the oblique region's bounding box).
using StrategyMask = uint32_t;

// rectilinear θ-region box + Minkowski fringe
inline constexpr StrategyMask kStrategyRR = 1u << 0;
// oblique (eigen-frame) box filter
inline constexpr StrategyMask kStrategyOR = 1u << 1;
// spherical bounding-function radii α∥ / α⊥
inline constexpr StrategyMask kStrategyBF = 1u << 2;

inline constexpr StrategyMask kStrategyAll =
    kStrategyRR | kStrategyOR | kStrategyBF;

/// "RR", "BF", "RR+BF", "RR+OR", "BF+OR", "ALL", ...
std::string StrategyName(StrategyMask mask);

/// Answer of a deadline/cancellation-aware PRQ — possibly partial, always
/// *sound*: `ids` holds only objects whose qualification was actually
/// proven (never guesses), and when the query's QueryControl stopped it
/// early, the candidates it never resolved are surfaced in `undecided`
/// instead of being silently dropped or misclassified.
///
/// `status` annotates how the query ended: OK for a complete answer,
/// DeadlineExceeded / Cancelled for a degraded one, Internal when a worker
/// failed mid-batch (its chunk's candidates are in `undecided`). A control
/// that fires before the index search yields an empty degraded result —
/// nothing was identified, so there are no candidates to report undecided.
struct PrqResult {
  std::vector<index::ObjectId> ids;        // proven qualifiers (unordered)
  std::vector<index::ObjectId> undecided;  // unresolved when stopped
  Status status;                           // OK iff the answer is complete

  bool complete() const { return status.ok() && undecided.empty(); }
};

/// Per-query execution statistics, the quantities reported in the paper's
/// Tables I-III.
struct PrqStats {
  /// Candidates returned by the Phase-1 index search.
  size_t index_candidates = 0;
  /// Candidates remaining after Phase-2 filtering — the number of numerical
  /// integrations Phase 3 must perform (the paper's Table II/III metric).
  size_t integration_candidates = 0;
  /// Objects accepted without integration via the BF inner radius α⊥.
  size_t accepted_without_integration = 0;

  /// Phase-2 prune breakdown: which filter dropped each index candidate.
  /// A candidate counts against the *first* filter that rejects it (the
  /// engine applies RR-fringe, then BF, then OR, then the marginal
  /// extension), so the four counts plus accepted_without_integration plus
  /// integration_candidates always sum to index_candidates.
  size_t pruned_rr_fringe = 0;
  size_t pruned_bf_outer = 0;
  size_t pruned_or = 0;
  size_t pruned_marginal = 0;
  /// Final result cardinality (the paper's ANS column).
  size_t result_size = 0;
  /// R*-tree node reads during Phase 1.
  uint64_t node_reads = 0;
  /// True when the BF outer lookup proved the result empty without search.
  bool proved_empty = false;

  /// Per-query preparation (θ-region radius, BF radii; includes the
  /// one-time lazy U-catalog construction on an engine's first query).
  double prep_seconds = 0.0;
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double phase3_seconds = 0.0;
  double total_seconds() const {
    return prep_seconds + phase1_seconds + phase2_seconds + phase3_seconds;
  }
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_PRQ_H_
