#include "core/radius_catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "stats/chi_squared.h"

namespace gprq::core {

RadiusCatalog RadiusCatalog::Build(size_t dim, size_t entries,
                                   double theta_floor) {
  assert(dim >= 1);
  assert(entries >= 2);
  assert(theta_floor > 0.0 && theta_floor < 0.5);
  const double r_max = stats::ThetaRegionRadius(dim, theta_floor);
  std::vector<double> radii(entries);
  std::vector<double> thetas(entries);
  for (size_t i = 0; i < entries; ++i) {
    const double r = r_max * static_cast<double>(i) /
                     static_cast<double>(entries - 1);
    radii[i] = r;
    thetas[i] = 0.5 * (1.0 - stats::GaussianBallMass(dim, r));
  }
  return RadiusCatalog(dim, std::move(radii), std::move(thetas));
}

double RadiusCatalog::LookupRadius(double theta) const {
  assert(theta > 0.0 && theta < 0.5);
  // thetas_ is descending; find the first entry with θ(r) <= theta
  // (i.e. the smallest tabulated radius at least as large as exact r_θ).
  auto it = std::lower_bound(thetas_.begin(), thetas_.end(), theta,
                             [](double tab, double query) {
                               return tab > query;
                             });
  if (it == thetas_.end()) {
    // theta is below the table floor; fall back to the exact inverse.
    return ExactRadius(dim_, theta);
  }
  return radii_[static_cast<size_t>(it - thetas_.begin())];
}

double RadiusCatalog::ExactRadius(size_t dim, double theta) {
  return stats::ThetaRegionRadius(dim, theta);
}

namespace {

constexpr uint64_t kRadiusCatalogMagic = 0x47505251524B4154ULL;  // "GPRQRCAT"

}  // namespace

Status RadiusCatalog::Save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "'");
  }
  const uint64_t header[3] = {kRadiusCatalogMagic,
                              static_cast<uint64_t>(dim_),
                              static_cast<uint64_t>(radii_.size())};
  bool ok = std::fwrite(header, sizeof(header), 1, file) == 1;
  ok = ok && std::fwrite(radii_.data(), sizeof(double), radii_.size(),
                         file) == radii_.size();
  ok = ok && std::fwrite(thetas_.data(), sizeof(double), thetas_.size(),
                         file) == thetas_.size();
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<RadiusCatalog> RadiusCatalog::Load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  uint64_t header[3];
  if (std::fread(header, sizeof(header), 1, file) != 1) {
    std::fclose(file);
    return Status::IoError("truncated catalog file");
  }
  if (header[0] != kRadiusCatalogMagic) {
    std::fclose(file);
    return Status::IoError("not a radius catalog (bad magic)");
  }
  const size_t dim = static_cast<size_t>(header[1]);
  const size_t entries = static_cast<size_t>(header[2]);
  if (dim < 1 || entries < 2 || entries > (size_t{1} << 30)) {
    std::fclose(file);
    return Status::IoError("corrupt catalog header");
  }
  std::vector<double> radii(entries), thetas(entries);
  const bool ok =
      std::fread(radii.data(), sizeof(double), entries, file) == entries &&
      std::fread(thetas.data(), sizeof(double), entries, file) == entries;
  std::fclose(file);
  if (!ok) return Status::IoError("truncated catalog file");
  for (size_t i = 1; i < entries; ++i) {
    if (radii[i] <= radii[i - 1] || thetas[i] >= thetas[i - 1]) {
      return Status::IoError("corrupt catalog: tables not monotone");
    }
  }
  return RadiusCatalog(dim, std::move(radii), std::move(thetas));
}

}  // namespace gprq::core
