#ifndef GPRQ_CORE_RADIUS_CATALOG_H_
#define GPRQ_CORE_RADIUS_CATALOG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace gprq::core {

/// The paper's U-catalog for θ-regions: a precomputed table of
/// (r, θ(r)) pairs with θ(r) = (1 − P(χ²_d <= r²)) / 2, so that at query
/// time the Mahalanobis radius r_θ of Definition 3 (mass 1−2θ) is a table
/// lookup instead of a root-finding problem. Lookups are conservative, as
/// required for correctness: the returned radius is the smallest tabulated
/// r with θ(r) <= θ, which is always >= the exact r_θ ("may increase the
/// number of target objects for numerical integration, [but] the
/// correctness of the result is retained", Section IV-A.3).
class RadiusCatalog {
 public:
  /// Builds a table for dimension `dim` with `entries` radii, uniformly
  /// spaced in r from 0 to the radius at θ = theta_floor (default 1e-9).
  static RadiusCatalog Build(size_t dim, size_t entries = 1024,
                             double theta_floor = 1e-9);

  size_t dim() const { return dim_; }
  size_t size() const { return radii_.size(); }

  /// Conservative table lookup of r_θ; requires 0 < theta < 0.5. Falls back
  /// to the exact inverse if theta lies below the table floor (returning the
  /// exact value keeps the result correct; it cannot under-approximate
  /// because the table covers everything above the floor).
  double LookupRadius(double theta) const;

  /// Exact r_θ = sqrt(InvChi2Cdf_d(1 − 2θ)) without a table.
  static double ExactRadius(size_t dim, double theta);

  /// The tabulated θ value at index i (decreasing in i); for tests.
  double ThetaAt(size_t i) const { return thetas_[i]; }
  double RadiusAt(size_t i) const { return radii_[i]; }

  /// Persists the table (a production system ships precomputed U-catalogs
  /// rather than rebuilding them per process; cf. the paper's Section
  /// IV-A.3 preparation step).
  Status Save(const std::string& path) const;
  static Result<RadiusCatalog> Load(const std::string& path);

 private:
  RadiusCatalog(size_t dim, std::vector<double> radii,
                std::vector<double> thetas)
      : dim_(dim), radii_(std::move(radii)), thetas_(std::move(thetas)) {}

  size_t dim_;
  std::vector<double> radii_;   // ascending
  std::vector<double> thetas_;  // descending, thetas_[i] = θ(radii_[i])
};

}  // namespace gprq::core

#endif  // GPRQ_CORE_RADIUS_CATALOG_H_
