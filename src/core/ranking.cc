#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/stopwatch.h"
#include "stats/noncentral_chi_squared.h"

namespace gprq::core {

double RankingUpperBound(const GaussianDistribution& query, double delta,
                         double dist) {
  // ∫_ball p∥ = [Π(s_i/s_max)]⁻¹ · P(χ'²_d((r/s_max)²) <= (δ/s_max)²);
  // see Section IV-C (p∥ scales the normalized Gaussian by |Σ|^{-1/2}
  // relative to an isotropic density with scale s_max).
  const la::Vector& scales = query.axis_scales();
  const double s_max = scales[scales.dim() - 1];
  double log_scale = 0.0;
  for (size_t i = 0; i < scales.dim(); ++i) {
    log_scale += std::log(scales[i] / s_max);
  }
  const double mass = stats::NoncentralChiSquaredCdf(
      query.dim(), (dist / s_max) * (dist / s_max),
      (delta / s_max) * (delta / s_max));
  return std::min(1.0, mass * std::exp(-log_scale));
}

Result<std::vector<RankedObject>> TopKProbableRangeMembers(
    const index::RStarTree& tree, const GaussianDistribution& query,
    double delta, size_t k, mc::ProbabilityEvaluator* evaluator,
    RankingStats* stats) {
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator must not be null");
  }
  if (query.dim() != tree.dim()) {
    return Status::InvalidArgument("query dimension does not match index");
  }
  if (!(delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  RankingStats local;
  RankingStats& out = (stats != nullptr) ? *stats : local;
  out = RankingStats();
  Stopwatch timer;

  std::vector<RankedObject> result;
  if (k == 0) return result;

  // Min-heap of the current top-k probabilities.
  auto cmp = [](const RankedObject& a, const RankedObject& b) {
    return a.probability > b.probability;
  };
  std::priority_queue<RankedObject, std::vector<RankedObject>, decltype(cmp)>
      top(cmp);

  index::NearestNeighborIterator it(tree, query.mean());
  double dist_sq = 0.0;
  index::ObjectId id = 0;
  la::Vector point;
  while (it.Next(&dist_sq, &id, &point)) {
    ++out.objects_streamed;
    const double dist = std::sqrt(dist_sq);
    if (top.size() == k &&
        RankingUpperBound(query, delta, dist) < top.top().probability) {
      break;  // no farther object can beat the current k-th best
    }
    const double probability =
        evaluator->QualificationProbability(query, point, delta);
    ++out.evaluations;
    if (top.size() < k) {
      top.push(RankedObject{id, probability});
    } else if (probability > top.top().probability) {
      top.pop();
      top.push(RankedObject{id, probability});
    }
  }

  result.reserve(top.size());
  while (!top.empty()) {
    result.push_back(top.top());
    top.pop();
  }
  std::reverse(result.begin(), result.end());  // descending probability
  out.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gprq::core
