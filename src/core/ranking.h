#ifndef GPRQ_CORE_RANKING_H_
#define GPRQ_CORE_RANKING_H_

#include <vector>

#include "common/status.h"
#include "core/prq.h"
#include "index/rstar_tree.h"
#include "mc/probability_evaluator.h"

namespace gprq::core {

/// A ranked query answer: object id plus its qualification probability.
struct RankedObject {
  index::ObjectId id = 0;
  double probability = 0.0;
};

/// Statistics for a top-k ranking query.
struct RankingStats {
  size_t objects_streamed = 0;   // points pulled from the NN iterator
  size_t evaluations = 0;        // exact probability computations
  double seconds = 0.0;
};

/// Top-k probabilistic ranking (the paper's Section VII names probabilistic
/// nearest-neighbor queries as future work; this is the threshold-free
/// variant): return the k objects with the highest qualification
/// probability Pr(‖x − o‖ <= δ).
///
/// Algorithm: stream objects from the R*-tree in increasing Euclidean
/// distance from q (incremental NN) and evaluate each exactly. The
/// spherical upper-bounding function p∥ of Section IV-C gives a bound on
/// the qualification probability that is monotone in the distance from q,
/// so the stream can stop as soon as that bound for the next-closest
/// object falls below the current k-th best probability — even though the
/// true probability is not monotone in distance for anisotropic Σ.
///
/// Results are sorted by probability, descending.
Result<std::vector<RankedObject>> TopKProbableRangeMembers(
    const index::RStarTree& tree, const GaussianDistribution& query,
    double delta, size_t k, mc::ProbabilityEvaluator* evaluator,
    RankingStats* stats = nullptr);

/// The distance-monotone upper bound used for termination: the mass of the
/// δ-ball at distance `dist` from q under the upper-bounding function p∥.
/// Exposed for tests (must dominate the exact probability everywhere).
double RankingUpperBound(const GaussianDistribution& query, double delta,
                         double dist);

}  // namespace gprq::core

#endif  // GPRQ_CORE_RANKING_H_
