#include "core/uncertain_targets.h"

#include <cmath>

#include "common/stopwatch.h"
#include "core/alpha_catalog.h"
#include "core/filters.h"
#include "mc/exact_evaluator.h"

namespace gprq::core {

namespace {

/// Builds the combined Gaussian N(q − o, Σ_q + Σ_o) for one target.
Result<GaussianDistribution> CombinedGaussian(
    const GaussianDistribution& query, const UncertainTarget& target) {
  if (target.mean.dim() != query.dim()) {
    return Status::InvalidArgument("target dimension mismatch");
  }
  if (target.cov.rows() != query.dim() || target.cov.cols() != query.dim()) {
    return Status::InvalidArgument("target covariance must be d x d");
  }
  return GaussianDistribution::Create(query.mean() - target.mean,
                                      query.covariance() + target.cov);
}

}  // namespace

Result<double> UncertainTargetProbability(const GaussianDistribution& query,
                                          const UncertainTarget& target,
                                          double delta) {
  if (!(delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  auto combined = CombinedGaussian(query, target);
  if (!combined.ok()) return combined.status();
  mc::ImhofEvaluator evaluator;
  // Pr(‖y‖ <= δ) with y ~ combined: the "object" sits at the origin.
  return evaluator.QualificationProbability(*combined,
                                            la::Vector(query.dim()), delta);
}

Result<std::vector<size_t>> UncertainTargetPrq(
    const GaussianDistribution& query,
    const std::vector<UncertainTarget>& targets, double delta, double theta,
    UncertainPrqStats* stats) {
  if (!(delta > 0.0)) {
    return Status::InvalidArgument("delta must be > 0");
  }
  if (!(theta > 0.0 && theta < 1.0)) {
    return Status::InvalidArgument("theta must be in (0, 1)");
  }
  UncertainPrqStats local;
  UncertainPrqStats& out = (stats != nullptr) ? *stats : local;
  out = UncertainPrqStats();
  Stopwatch timer;

  mc::ImhofEvaluator evaluator;
  const la::Vector origin(query.dim());
  std::vector<size_t> result;
  for (size_t i = 0; i < targets.size(); ++i) {
    auto combined = CombinedGaussian(query, targets[i]);
    if (!combined.ok()) return combined.status();

    // Conservative prescreen: objects whose mean offset exceeds the BF
    // outer radius of the combined distribution cannot qualify.
    const BfBounds bounds =
        BfBounds::Compute(*combined, delta, theta, /*catalog=*/nullptr);
    if (bounds.nothing_qualifies ||
        la::SquaredNorm(combined->mean()) >
            bounds.alpha_outer * bounds.alpha_outer) {
      ++out.pruned_by_bound;
      continue;
    }
    if (bounds.has_inner &&
        la::SquaredNorm(combined->mean()) <=
            bounds.alpha_inner * bounds.alpha_inner) {
      result.push_back(i);  // guaranteed qualifier, no integration
      continue;
    }

    const double probability =
        evaluator.QualificationProbability(*combined, origin, delta);
    ++out.evaluations;
    if (probability >= theta) result.push_back(i);
  }
  out.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gprq::core
