#ifndef GPRQ_CORE_UNCERTAIN_TARGETS_H_
#define GPRQ_CORE_UNCERTAIN_TARGETS_H_

#include <vector>

#include "common/status.h"
#include "core/gaussian.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace gprq::core {

/// A target object whose own location is Gaussian-uncertain: N(mean, cov).
struct UncertainTarget {
  la::Vector mean;
  la::Matrix cov;
};

struct UncertainPrqStats {
  size_t pruned_by_bound = 0;  // skipped via the combined BF outer radius
  size_t evaluations = 0;      // exact probability computations
  double seconds = 0.0;
};

/// PRQ where *both* the query object and the targets are
/// Gaussian-uncertain — the environment the paper's Section VII lists as
/// future work. The key identity: for independent x_q ~ N(q, Σ_q) and
/// x_o ~ N(o, Σ_o), the difference x_q − x_o is N(q − o, Σ_q + Σ_o), so
///
///   Pr(‖x_q − x_o‖ <= δ) = Pr(‖y‖ <= δ),  y ~ N(q − o, Σ_q + Σ_o),
///
/// which is exactly the quadratic form this library already evaluates. Each
/// target is first screened with the BF outer radius of the *combined*
/// covariance (a conservative distance bound); survivors get an exact
/// Imhof evaluation.
///
/// Returns the indices (into `targets`) of the qualifying objects.
Result<std::vector<size_t>> UncertainTargetPrq(
    const GaussianDistribution& query,
    const std::vector<UncertainTarget>& targets, double delta, double theta,
    UncertainPrqStats* stats = nullptr);

/// The exact qualification probability for a single uncertain target.
Result<double> UncertainTargetProbability(const GaussianDistribution& query,
                                          const UncertainTarget& target,
                                          double delta);

}  // namespace gprq::core

#endif  // GPRQ_CORE_UNCERTAIN_TARGETS_H_
