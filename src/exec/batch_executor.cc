#include "exec/batch_executor.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "mc/sample_pool.h"

namespace gprq::exec {
namespace {

// Sampling counters recorded at the source by mc::SamplePool; read here as
// deltas to attribute per-query sample usage to a trace.
struct SampleCounters {
  obs::Counter* samples_used;
  obs::Counter* early_stops;
  obs::Counter* undecided;

  static const SampleCounters& Get() {
    static const SampleCounters counters = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return SampleCounters{r.GetCounter("gprq.mc.samples_used"),
                            r.GetCounter("gprq.mc.early_stops"),
                            r.GetCounter("gprq.mc.undecided")};
    }();
    return counters;
  }
};

uint64_t CounterDelta(uint64_t now, uint64_t before) {
  return now >= before ? now - before : 0;
}

}  // namespace

void BatchExecutor::ErrorCollector::Record(std::string msg) {
  std::lock_guard<std::mutex> lock(mutex);
  if (failed) return;
  failed = true;
  message = std::move(msg);
}

Status BatchExecutor::ErrorCollector::ToStatus() const {
  // No lock: read after the fan-out's latch, when workers are done writing.
  if (!failed) return Status::OK();
  return Status::Internal("worker evaluator failed: " + message);
}

BatchExecutor::BatchExecutor(
    const core::PrqEngine* engine,
    std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators)
    : engine_(engine),
      pool_(evaluators.size()),
      evaluators_(std::move(evaluators)) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  metrics_.queries = registry.GetCounter("gprq.exec.queries");
  metrics_.integrations = registry.GetCounter("gprq.exec.integrations");
  metrics_.accepted_without_integration =
      registry.GetCounter("gprq.exec.accepted_without_integration");
  metrics_.results = registry.GetCounter("gprq.exec.results");
  metrics_.queue_depth = registry.GetGauge("gprq.exec.queue_depth");
  metrics_.num_workers = registry.GetGauge("gprq.exec.num_workers");
  metrics_.phase3_nanos = registry.GetHistogram("gprq.exec.phase3_nanos");
  metrics_.worker_integrations.reserve(pool_.num_workers());
  for (size_t w = 0; w < pool_.num_workers(); ++w) {
    metrics_.worker_integrations.push_back(registry.GetCounter(
        "gprq.exec.worker." + std::to_string(w) + ".integrations"));
  }
  // The counters are process-wide and monotonic; remember where they stood
  // so Snapshot() can report this executor's own traffic.
  metrics_.baseline_queries = metrics_.queries->Value();
  metrics_.baseline_integrations = metrics_.integrations->Value();
  metrics_.baseline_accepted =
      metrics_.accepted_without_integration->Value();
  metrics_.baseline_results = metrics_.results->Value();
  metrics_.num_workers->Set(static_cast<double>(pool_.num_workers()));
}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::Create(
    const core::PrqEngine* engine,
    const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (!factory) {
    return Status::InvalidArgument("evaluator factory must not be null");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  // Seed the per-worker evaluators exactly once, before any thread starts;
  // after this, worker w owns evaluators[w] for the executor's lifetime.
  std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators;
  evaluators.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    try {
      evaluators.push_back(factory(w));
    } catch (const std::exception& e) {
      return Status::Internal(std::string("evaluator factory threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("evaluator factory threw");
    }
    if (evaluators.back() == nullptr) {
      return Status::InvalidArgument("factory returned a null evaluator");
    }
  }
  return std::unique_ptr<BatchExecutor>(
      new BatchExecutor(engine, std::move(evaluators)));
}

size_t BatchExecutor::Phase3ChunkCount(size_t survivors) const {
  return std::min(pool_.num_workers(), survivors);
}

std::shared_ptr<const mc::SamplePool> BatchExecutor::MakeQueryPool(
    const core::PrqQuery& query) {
  return evaluators_[0]->MakeSamplePool(query.query_object);
}

void BatchExecutor::EnqueuePhase3(
    const core::PrqQuery& query,
    const std::vector<std::pair<la::Vector, index::ObjectId>>& survivors,
    std::shared_ptr<const mc::SamplePool> pool,
    std::vector<index::ObjectId>* merged, std::mutex* merge_mutex,
    CountdownLatch* latch, ErrorCollector* errors) {
  const size_t n = survivors.size();
  const size_t chunks = Phase3ChunkCount(n);
  for (size_t c = 0; c < chunks; ++c) {
    // Static block partition: integrations have similar cost, so this
    // balances well without synchronization.
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    pool_.Submit([this, &query, &survivors, pool, begin, end, merged,
                  merge_mutex, latch, errors](size_t worker) {
      try {
        mc::ProbabilityEvaluator* evaluator = evaluators_[worker].get();
        // One batched call per chunk against the query's shared read-only
        // pool (null pool ⇒ the evaluator's per-candidate fallback).
        const size_t count = end - begin;
        std::vector<const la::Vector*> objects(count);
        for (size_t i = 0; i < count; ++i) {
          objects[i] = &survivors[begin + i].first;
        }
        std::vector<char> decisions(count, 0);
        evaluator->DecideBatch(query.query_object, objects.data(), count,
                               query.delta, query.theta, pool.get(),
                               decisions.data());
        // Collect locally and merge once after the chunk: the workers never
        // write interleaved into adjacent heap blocks, so there is no
        // false sharing on the result cache lines (and only one lock
        // acquisition per chunk).
        std::vector<index::ObjectId> local;
        for (size_t i = 0; i < count; ++i) {
          if (decisions[i]) local.push_back(survivors[begin + i].second);
        }
        metrics_.integrations->Add(count);
        metrics_.worker_integrations[worker]->Add(count);
        std::lock_guard<std::mutex> lock(*merge_mutex);
        merged->insert(merged->end(), local.begin(), local.end());
      } catch (const std::exception& e) {
        errors->Record(e.what());
      } catch (...) {
        errors->Record("unknown exception");
      }
      latch->CountDown();
    });
  }
}

Result<std::vector<index::ObjectId>> BatchExecutor::IntegrateOutcome(
    const core::PrqQuery& query, core::PrqEngine::FilterOutcome outcome,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  // Sampling counters are recorded at the source (mc::SamplePool); the
  // deltas around the fan-out attribute them to this query's trace.
  const SampleCounters& samples = SampleCounters::Get();
  const uint64_t samples_before =
      (trace != nullptr) ? samples.samples_used->Value() : 0;
  const uint64_t early_before =
      (trace != nullptr) ? samples.early_stops->Value() : 0;
  const uint64_t undecided_before =
      (trace != nullptr) ? samples.undecided->Value() : 0;

  ScopedTimer phase_timer(metrics_.phase3_nanos);
  std::vector<index::ObjectId> result;
  result.reserve(outcome.accepted.size() + outcome.survivors.size());
  for (const auto& [point, id] : outcome.accepted) result.push_back(id);

  if (!outcome.survivors.empty()) {
    std::mutex merge_mutex;
    ErrorCollector errors;
    CountdownLatch latch(Phase3ChunkCount(outcome.survivors.size()));
    EnqueuePhase3(query, outcome.survivors, MakeQueryPool(query), &result,
                  &merge_mutex, &latch, &errors);
    latch.Wait();
    GPRQ_RETURN_NOT_OK(errors.ToStatus());
  }
  const uint64_t phase3_nanos = phase_timer.Stop();

  metrics_.queries->Add(1);
  metrics_.accepted_without_integration->Add(outcome.accepted.size());
  metrics_.results->Add(result.size());
  if (stats != nullptr) {
    stats->phase3_seconds = phase3_nanos * 1e-9;
    stats->result_size = result.size();
  }
  if (trace != nullptr) {
    trace->phase_nanos[obs::QueryTrace::kPhase3] += phase3_nanos;
    trace->integrations += outcome.survivors.size();
    trace->result_size = result.size();
    trace->samples_used +=
        CounterDelta(samples.samples_used->Value(), samples_before);
    trace->early_stops +=
        CounterDelta(samples.early_stops->Value(), early_before);
    trace->undecided +=
        CounterDelta(samples.undecided->Value(), undecided_before);
  }
  return result;
}

Result<std::vector<index::ObjectId>> BatchExecutor::Submit(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();

  core::PrqEngine::FilterOutcome outcome;
  GPRQ_RETURN_NOT_OK(
      engine_->RunFilterPhases(query, options, &outcome, &out_stats, trace));
  if (outcome.proved_empty) {
    metrics_.queries->Add(1);
    return std::vector<index::ObjectId>{};
  }
  return IntegrateOutcome(query, std::move(outcome), &out_stats, trace);
}

Result<std::vector<std::vector<index::ObjectId>>> BatchExecutor::SubmitBatch(
    const std::vector<core::PrqQuery>& queries,
    const core::PrqOptions& options, std::vector<core::PrqStats>* stats) {
  const size_t nq = queries.size();
  if (stats != nullptr) {
    stats->assign(nq, core::PrqStats());
  }

  // Phases 1-2 for every query up front, on this thread. The per-query
  // sample pools are built here too: evaluator 0's pool stream may only be
  // touched while no fan-out is in flight, and after the first enqueue
  // below, worker 0 may already be running.
  std::vector<core::PrqEngine::FilterOutcome> outcomes(nq);
  std::vector<std::shared_ptr<const mc::SamplePool>> pools(nq);
  size_t total_chunks = 0;
  for (size_t q = 0; q < nq; ++q) {
    core::PrqStats local_stats;
    core::PrqStats& out_stats =
        (stats != nullptr) ? (*stats)[q] : local_stats;
    GPRQ_RETURN_NOT_OK(
        engine_->RunFilterPhases(queries[q], options, &outcomes[q],
                                 &out_stats));
    if (!outcomes[q].proved_empty) {
      total_chunks += Phase3ChunkCount(outcomes[q].survivors.size());
      if (!outcomes[q].survivors.empty()) {
        pools[q] = MakeQueryPool(queries[q]);
      }
    }
  }

  // One fan-out for the whole batch: every query's chunks are in flight
  // together, so workers drain query i+1 while stragglers finish query i.
  std::vector<std::vector<index::ObjectId>> results(nq);
  std::vector<std::unique_ptr<std::mutex>> merge_mutexes;
  merge_mutexes.reserve(nq);
  for (size_t q = 0; q < nq; ++q) {
    merge_mutexes.push_back(std::make_unique<std::mutex>());
  }
  ErrorCollector errors;
  CountdownLatch latch(total_chunks);
  Stopwatch phase_timer;
  for (size_t q = 0; q < nq; ++q) {
    if (outcomes[q].proved_empty) continue;
    for (const auto& [point, id] : outcomes[q].accepted) {
      results[q].push_back(id);
    }
    metrics_.accepted_without_integration->Add(outcomes[q].accepted.size());
    EnqueuePhase3(queries[q], outcomes[q].survivors, std::move(pools[q]),
                  &results[q], merge_mutexes[q].get(), &latch, &errors);
  }
  latch.Wait();
  GPRQ_RETURN_NOT_OK(errors.ToStatus());

  const uint64_t phase3_nanos = phase_timer.ElapsedNanos();
  metrics_.phase3_nanos->Record(phase3_nanos);
  const double phase3_seconds = phase3_nanos * 1e-9;
  metrics_.queries->Add(nq);
  for (size_t q = 0; q < nq; ++q) {
    metrics_.results->Add(results[q].size());
    if (stats != nullptr) {
      (*stats)[q].phase3_seconds = phase3_seconds;
      (*stats)[q].result_size = results[q].size();
    }
  }
  return results;
}

ExecStats BatchExecutor::Snapshot() const {
  // Counters are process-wide; subtracting the construction-time baselines
  // recovers this executor's own traffic.
  ExecStats snapshot;
  snapshot.queries =
      CounterDelta(metrics_.queries->Value(), metrics_.baseline_queries);
  snapshot.integrations = CounterDelta(metrics_.integrations->Value(),
                                       metrics_.baseline_integrations);
  snapshot.accepted_without_integration =
      CounterDelta(metrics_.accepted_without_integration->Value(),
                   metrics_.baseline_accepted);
  snapshot.results =
      CounterDelta(metrics_.results->Value(), metrics_.baseline_results);
  snapshot.uptime_seconds = uptime_.ElapsedSeconds();
  snapshot.queue_depth = pool_.QueueDepth();
  snapshot.num_workers = pool_.num_workers();
  metrics_.queue_depth->Set(static_cast<double>(snapshot.queue_depth));
  return snapshot;
}

}  // namespace gprq::exec
