#include "exec/batch_executor.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "mc/sample_pool.h"

namespace gprq::exec {

void BatchExecutor::ErrorCollector::Record(std::string msg) {
  std::lock_guard<std::mutex> lock(mutex);
  if (failed) return;
  failed = true;
  message = std::move(msg);
}

Status BatchExecutor::ErrorCollector::ToStatus() const {
  // No lock: read after the fan-out's latch, when workers are done writing.
  if (!failed) return Status::OK();
  return Status::Internal("worker evaluator failed: " + message);
}

BatchExecutor::BatchExecutor(
    const core::PrqEngine* engine,
    std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators)
    : engine_(engine),
      pool_(evaluators.size()),
      evaluators_(std::move(evaluators)) {}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::Create(
    const core::PrqEngine* engine,
    const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (!factory) {
    return Status::InvalidArgument("evaluator factory must not be null");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  // Seed the per-worker evaluators exactly once, before any thread starts;
  // after this, worker w owns evaluators[w] for the executor's lifetime.
  std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators;
  evaluators.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    try {
      evaluators.push_back(factory(w));
    } catch (const std::exception& e) {
      return Status::Internal(std::string("evaluator factory threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("evaluator factory threw");
    }
    if (evaluators.back() == nullptr) {
      return Status::InvalidArgument("factory returned a null evaluator");
    }
  }
  return std::unique_ptr<BatchExecutor>(
      new BatchExecutor(engine, std::move(evaluators)));
}

size_t BatchExecutor::Phase3ChunkCount(size_t survivors) const {
  return std::min(pool_.num_workers(), survivors);
}

std::shared_ptr<const mc::SamplePool> BatchExecutor::MakeQueryPool(
    const core::PrqQuery& query) {
  return evaluators_[0]->MakeSamplePool(query.query_object);
}

void BatchExecutor::EnqueuePhase3(
    const core::PrqQuery& query,
    const std::vector<std::pair<la::Vector, index::ObjectId>>& survivors,
    std::shared_ptr<const mc::SamplePool> pool,
    std::vector<index::ObjectId>* merged, std::mutex* merge_mutex,
    CountdownLatch* latch, ErrorCollector* errors) {
  const size_t n = survivors.size();
  const size_t chunks = Phase3ChunkCount(n);
  for (size_t c = 0; c < chunks; ++c) {
    // Static block partition: integrations have similar cost, so this
    // balances well without synchronization.
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    pool_.Submit([this, &query, &survivors, pool, begin, end, merged,
                  merge_mutex, latch, errors](size_t worker) {
      try {
        mc::ProbabilityEvaluator* evaluator = evaluators_[worker].get();
        // One batched call per chunk against the query's shared read-only
        // pool (null pool ⇒ the evaluator's per-candidate fallback).
        const size_t count = end - begin;
        std::vector<const la::Vector*> objects(count);
        for (size_t i = 0; i < count; ++i) {
          objects[i] = &survivors[begin + i].first;
        }
        std::vector<char> decisions(count, 0);
        evaluator->DecideBatch(query.query_object, objects.data(), count,
                               query.delta, query.theta, pool.get(),
                               decisions.data());
        // Collect locally and merge once after the chunk: the workers never
        // write interleaved into adjacent heap blocks, so there is no
        // false sharing on the result cache lines (and only one lock
        // acquisition per chunk).
        std::vector<index::ObjectId> local;
        for (size_t i = 0; i < count; ++i) {
          if (decisions[i]) local.push_back(survivors[begin + i].second);
        }
        integrations_.fetch_add(count, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(*merge_mutex);
        merged->insert(merged->end(), local.begin(), local.end());
      } catch (const std::exception& e) {
        errors->Record(e.what());
      } catch (...) {
        errors->Record("unknown exception");
      }
      latch->CountDown();
    });
  }
}

Result<std::vector<index::ObjectId>> BatchExecutor::IntegrateOutcome(
    const core::PrqQuery& query, core::PrqEngine::FilterOutcome outcome,
    core::PrqStats* stats) {
  Stopwatch phase_timer;
  std::vector<index::ObjectId> result;
  result.reserve(outcome.accepted.size() + outcome.survivors.size());
  for (const auto& [point, id] : outcome.accepted) result.push_back(id);

  if (!outcome.survivors.empty()) {
    std::mutex merge_mutex;
    ErrorCollector errors;
    CountdownLatch latch(Phase3ChunkCount(outcome.survivors.size()));
    EnqueuePhase3(query, outcome.survivors, MakeQueryPool(query), &result,
                  &merge_mutex, &latch, &errors);
    latch.Wait();
    GPRQ_RETURN_NOT_OK(errors.ToStatus());
  }

  queries_.fetch_add(1, std::memory_order_relaxed);
  accepted_without_integration_.fetch_add(outcome.accepted.size(),
                                          std::memory_order_relaxed);
  results_.fetch_add(result.size(), std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->phase3_seconds = phase_timer.ElapsedSeconds();
    stats->result_size = result.size();
  }
  return result;
}

Result<std::vector<index::ObjectId>> BatchExecutor::Submit(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats) {
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();

  core::PrqEngine::FilterOutcome outcome;
  GPRQ_RETURN_NOT_OK(
      engine_->RunFilterPhases(query, options, &outcome, &out_stats));
  if (outcome.proved_empty) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    return std::vector<index::ObjectId>{};
  }
  return IntegrateOutcome(query, std::move(outcome), &out_stats);
}

Result<std::vector<std::vector<index::ObjectId>>> BatchExecutor::SubmitBatch(
    const std::vector<core::PrqQuery>& queries,
    const core::PrqOptions& options, std::vector<core::PrqStats>* stats) {
  const size_t nq = queries.size();
  if (stats != nullptr) {
    stats->assign(nq, core::PrqStats());
  }

  // Phases 1-2 for every query up front, on this thread. The per-query
  // sample pools are built here too: evaluator 0's pool stream may only be
  // touched while no fan-out is in flight, and after the first enqueue
  // below, worker 0 may already be running.
  std::vector<core::PrqEngine::FilterOutcome> outcomes(nq);
  std::vector<std::shared_ptr<const mc::SamplePool>> pools(nq);
  size_t total_chunks = 0;
  for (size_t q = 0; q < nq; ++q) {
    core::PrqStats local_stats;
    core::PrqStats& out_stats =
        (stats != nullptr) ? (*stats)[q] : local_stats;
    GPRQ_RETURN_NOT_OK(
        engine_->RunFilterPhases(queries[q], options, &outcomes[q],
                                 &out_stats));
    if (!outcomes[q].proved_empty) {
      total_chunks += Phase3ChunkCount(outcomes[q].survivors.size());
      if (!outcomes[q].survivors.empty()) {
        pools[q] = MakeQueryPool(queries[q]);
      }
    }
  }

  // One fan-out for the whole batch: every query's chunks are in flight
  // together, so workers drain query i+1 while stragglers finish query i.
  std::vector<std::vector<index::ObjectId>> results(nq);
  std::vector<std::unique_ptr<std::mutex>> merge_mutexes;
  merge_mutexes.reserve(nq);
  for (size_t q = 0; q < nq; ++q) {
    merge_mutexes.push_back(std::make_unique<std::mutex>());
  }
  ErrorCollector errors;
  CountdownLatch latch(total_chunks);
  Stopwatch phase_timer;
  for (size_t q = 0; q < nq; ++q) {
    if (outcomes[q].proved_empty) continue;
    for (const auto& [point, id] : outcomes[q].accepted) {
      results[q].push_back(id);
    }
    accepted_without_integration_.fetch_add(outcomes[q].accepted.size(),
                                            std::memory_order_relaxed);
    EnqueuePhase3(queries[q], outcomes[q].survivors, std::move(pools[q]),
                  &results[q], merge_mutexes[q].get(), &latch, &errors);
  }
  latch.Wait();
  GPRQ_RETURN_NOT_OK(errors.ToStatus());

  const double phase3_seconds = phase_timer.ElapsedSeconds();
  queries_.fetch_add(nq, std::memory_order_relaxed);
  for (size_t q = 0; q < nq; ++q) {
    results_.fetch_add(results[q].size(), std::memory_order_relaxed);
    if (stats != nullptr) {
      (*stats)[q].phase3_seconds = phase3_seconds;
      (*stats)[q].result_size = results[q].size();
    }
  }
  return results;
}

ExecStats BatchExecutor::Snapshot() const {
  ExecStats snapshot;
  snapshot.queries = queries_.load(std::memory_order_relaxed);
  snapshot.integrations = integrations_.load(std::memory_order_relaxed);
  snapshot.accepted_without_integration =
      accepted_without_integration_.load(std::memory_order_relaxed);
  snapshot.results = results_.load(std::memory_order_relaxed);
  snapshot.uptime_seconds = uptime_.ElapsedSeconds();
  snapshot.queue_depth = pool_.QueueDepth();
  snapshot.num_workers = pool_.num_workers();
  return snapshot;
}

}  // namespace gprq::exec
