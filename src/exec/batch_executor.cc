#include "exec/batch_executor.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "fault/failpoint.h"
#include "mc/sample_pool.h"

namespace gprq::exec {
namespace {

// Sampling counters recorded at the source by mc::SamplePool; read here as
// deltas to attribute per-query sample usage to a trace.
struct SampleCounters {
  obs::Counter* samples_used;
  obs::Counter* early_stops;
  obs::Counter* undecided;

  static const SampleCounters& Get() {
    static const SampleCounters counters = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return SampleCounters{r.GetCounter("gprq.mc.samples_used"),
                            r.GetCounter("gprq.mc.early_stops"),
                            r.GetCounter("gprq.mc.undecided")};
    }();
    return counters;
  }
};

// Degradation counters, shared by name with the engine's bounded path (the
// engine publishes them through obs::PublishPhase3; the executor increments
// directly because its Phase-3 metrics live under `gprq.exec.*`).
struct DeadlineMetrics {
  obs::Counter* expired_queries;
  obs::Counter* undecided_candidates;

  static const DeadlineMetrics& Get() {
    static const DeadlineMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return DeadlineMetrics{
          r.GetCounter("gprq.deadline.expired_queries"),
          r.GetCounter("gprq.deadline.undecided_candidates")};
    }();
    return metrics;
  }
};

uint64_t CounterDelta(uint64_t now, uint64_t before) {
  return now >= before ? now - before : 0;
}

bool IsStopStatus(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

// The annotation for a degraded result; Internal when the control claims it
// never fired (defensive — undecided candidates must never go unexplained).
Status DegradedStatus(const common::QueryControl& control) {
  Status status = control.StopStatus();
  if (!status.ok()) return status;
  if (control.sample_budget > 0) {
    // Brownout: the per-candidate sample budget ran out before the
    // confidence interval separated. Decided ids are exact; the remainder
    // is explicit.
    return Status::ResourceExhausted(
        "Phase-3 sample budget exhausted; undecided candidates remain");
  }
  return Status::Internal(
      "candidates left undecided without a stop condition");
}

}  // namespace

void BatchExecutor::ErrorCollector::Record(std::string msg) {
  std::lock_guard<std::mutex> lock(mutex);
  if (failed) return;
  failed = true;
  message = std::move(msg);
}

Status BatchExecutor::ErrorCollector::ToStatus() const {
  // No lock: read after the fan-out's latch, when workers are done writing.
  if (!failed) return Status::OK();
  return Status::Internal("worker evaluator failed: " + message);
}

BatchExecutor::BatchExecutor(
    const core::PrqEngine* engine,
    std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators)
    : engine_(engine),
      pool_(evaluators.size()),
      evaluators_(std::move(evaluators)) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  metrics_.queries = registry.GetCounter("gprq.exec.queries");
  metrics_.integrations = registry.GetCounter("gprq.exec.integrations");
  metrics_.accepted_without_integration =
      registry.GetCounter("gprq.exec.accepted_without_integration");
  metrics_.results = registry.GetCounter("gprq.exec.results");
  metrics_.num_workers = registry.GetGauge("gprq.exec.num_workers");
  metrics_.phase3_nanos = registry.GetHistogram("gprq.exec.phase3_nanos");
  metrics_.worker_integrations.reserve(pool_.num_workers());
  for (size_t w = 0; w < pool_.num_workers(); ++w) {
    metrics_.worker_integrations.push_back(registry.GetCounter(
        "gprq.exec.worker." + std::to_string(w) + ".integrations"));
  }
  // The counters are process-wide and monotonic; remember where they stood
  // so Snapshot() can report this executor's own traffic.
  metrics_.baseline_queries = metrics_.queries->Value();
  metrics_.baseline_integrations = metrics_.integrations->Value();
  metrics_.baseline_accepted =
      metrics_.accepted_without_integration->Value();
  metrics_.baseline_results = metrics_.results->Value();
  metrics_.num_workers->Set(static_cast<double>(pool_.num_workers()));
}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::Create(
    const core::PrqEngine* engine,
    const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (!factory) {
    return Status::InvalidArgument("evaluator factory must not be null");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  // Seed the per-worker evaluators exactly once, before any thread starts;
  // after this, worker w owns evaluators[w] for the executor's lifetime.
  std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators;
  evaluators.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    try {
      evaluators.push_back(factory(w));
    } catch (const std::exception& e) {
      return Status::Internal(std::string("evaluator factory threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("evaluator factory threw");
    }
    if (evaluators.back() == nullptr) {
      return Status::InvalidArgument("factory returned a null evaluator");
    }
  }
  return std::unique_ptr<BatchExecutor>(
      new BatchExecutor(engine, std::move(evaluators)));
}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::Create(
    const core::PrqEngine* engine,
    const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads,
    const OverloadPolicy& policy) {
  Result<std::unique_ptr<BatchExecutor>> executor =
      Create(engine, factory, num_threads);
  if (!executor.ok()) return executor;
  GPRQ_RETURN_NOT_OK((*executor)->SetOverloadPolicy(policy));
  return executor;
}

Result<std::unique_ptr<BatchExecutor>> BatchExecutor::CreateDetached(
    const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads) {
  if (!factory) {
    return Status::InvalidArgument("evaluator factory must not be null");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators;
  evaluators.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    try {
      evaluators.push_back(factory(w));
    } catch (const std::exception& e) {
      return Status::Internal(std::string("evaluator factory threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("evaluator factory threw");
    }
    if (evaluators.back() == nullptr) {
      return Status::InvalidArgument("factory returned a null evaluator");
    }
  }
  return std::unique_ptr<BatchExecutor>(
      new BatchExecutor(nullptr, std::move(evaluators)));
}

Status BatchExecutor::EnableResultCache(
    const cache::ResultCacheOptions& options) {
  if (options.max_entries == 0) {
    return Status::InvalidArgument("cache max_entries must be >= 1");
  }
  if (options.max_bytes == 0) {
    return Status::InvalidArgument("cache max_bytes must be >= 1");
  }
  cache_ = std::make_unique<cache::ResultCache>(options);
  return Status::OK();
}

Status BatchExecutor::SetOverloadPolicy(const OverloadPolicy& policy) {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "detached executor has no engine; overload governance lives in the "
        "sharded engine's submit path");
  }
  GPRQ_RETURN_NOT_OK(policy.Validate());
  // Density is a property of the dataset; computing it here keeps the
  // per-query cost estimate to a handful of multiplications.
  dataset_density_ = DatasetDensity(engine_->tree());
  overload_ = std::make_unique<OverloadController>(policy);
  return Status::OK();
}

size_t BatchExecutor::Phase3ChunkCount(size_t survivors) const {
  return std::min(pool_.num_workers(), survivors);
}

std::shared_ptr<const mc::SamplePool> BatchExecutor::MakeQueryPool(
    const core::PrqQuery& query, mc::PoolVariant pool_variant) {
  return evaluators_[0]->MakeSamplePool(query.query_object, pool_variant);
}

Status BatchExecutor::RunTasks(std::vector<WorkerPool::Task> tasks) {
  if (tasks.empty()) return Status::OK();
  ErrorCollector errors;
  CountdownLatch latch(tasks.size());
  for (WorkerPool::Task& task : tasks) {
    pool_.Submit([task = std::move(task), &errors, &latch](size_t worker) {
      try {
        task(worker);
      } catch (const std::exception& e) {
        errors.Record(e.what());
      } catch (...) {
        errors.Record("unknown exception");
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  if (!errors.failed) return Status::OK();
  return Status::Internal("task failed: " + errors.message);
}

void BatchExecutor::EnqueuePhase3(
    const core::PrqQuery& query,
    const std::vector<std::pair<la::Vector, index::ObjectId>>& survivors,
    std::shared_ptr<const mc::SamplePool> pool,
    const common::QueryControl& control, QuerySlot* slot,
    CountdownLatch* latch) {
  const size_t n = survivors.size();
  const size_t chunks = Phase3ChunkCount(n);
  for (size_t c = 0; c < chunks; ++c) {
    // Static block partition: integrations have similar cost, so this
    // balances well without synchronization.
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    pool_.Submit([this, &query, &survivors, pool, control, begin, end, slot,
                  latch](size_t worker) {
      const size_t count = end - begin;
      // Degrade, never guess: a chunk that fails (injected fault or
      // evaluator exception) surfaces all its candidates as undecided in
      // this query's slot — the other queries of the fan-out, and this
      // query's other chunks, are untouched.
      const auto fail_chunk = [&](std::string message) {
        std::lock_guard<std::mutex> lock(slot->merge_mutex);
        slot->errors.Record(std::move(message));
        for (size_t i = 0; i < count; ++i) {
          slot->undecided.push_back(survivors[begin + i].second);
        }
      };
      try {
        const Status injected = GPRQ_FAILPOINT("exec.batch_executor.chunk");
        if (!injected.ok()) {
          fail_chunk(injected.ToString());
        } else {
          mc::ProbabilityEvaluator* evaluator = evaluators_[worker].get();
          // One batched call per chunk against the query's shared read-only
          // pool (null pool ⇒ the evaluator's per-candidate fallback).
          std::vector<const la::Vector*> objects(count);
          for (size_t i = 0; i < count; ++i) {
            objects[i] = &survivors[begin + i].first;
          }
          std::vector<char> states(count, 0);
          if (control.Unbounded()) {
            // The exact pre-deadline path; 0/1 match the DecideState pair.
            evaluator->DecideBatch(query.query_object, objects.data(), count,
                                   query.delta, query.theta, pool.get(),
                                   states.data());
          } else {
            evaluator->DecideBatchBounded(query.query_object, objects.data(),
                                          count, query.delta, query.theta,
                                          pool.get(), control, states.data());
          }
          // Collect locally and merge once after the chunk: the workers
          // never write interleaved into adjacent heap blocks, so there is
          // no false sharing on the result cache lines (and only one lock
          // acquisition per chunk).
          std::vector<index::ObjectId> local;
          std::vector<index::ObjectId> local_undecided;
          for (size_t i = 0; i < count; ++i) {
            if (states[i] == mc::kDecideIncluded) {
              local.push_back(survivors[begin + i].second);
            } else if (states[i] == mc::kDecideUndecided) {
              local_undecided.push_back(survivors[begin + i].second);
            }
          }
          const size_t decided = count - local_undecided.size();
          metrics_.integrations->Add(decided);
          metrics_.worker_integrations[worker]->Add(decided);
          std::lock_guard<std::mutex> lock(slot->merge_mutex);
          slot->merged.insert(slot->merged.end(), local.begin(), local.end());
          slot->undecided.insert(slot->undecided.end(),
                                 local_undecided.begin(),
                                 local_undecided.end());
        }
      } catch (const std::exception& e) {
        fail_chunk(e.what());
      } catch (...) {
        fail_chunk("unknown exception");
      }
      latch->CountDown();
    });
  }
}

Result<core::PrqResult> BatchExecutor::IntegrateOutcomeBounded(
    const core::PrqQuery& query, core::PrqEngine::FilterOutcome outcome,
    const common::QueryControl& control, core::PrqStats* stats,
    obs::QueryTrace* trace, mc::PoolVariant pool_variant) {
  // Sampling counters are recorded at the source (mc::SamplePool); the
  // deltas around the fan-out attribute them to this query's trace.
  const SampleCounters& samples = SampleCounters::Get();
  const uint64_t samples_before =
      (trace != nullptr) ? samples.samples_used->Value() : 0;
  const uint64_t early_before =
      (trace != nullptr) ? samples.early_stops->Value() : 0;
  const uint64_t undecided_before =
      (trace != nullptr) ? samples.undecided->Value() : 0;

  ScopedTimer phase_timer(metrics_.phase3_nanos);
  core::PrqResult result;
  result.ids.reserve(outcome.accepted.size() + outcome.survivors.size());
  for (const auto& [point, id] : outcome.accepted) result.ids.push_back(id);

  if (outcome.expired || (!control.Unbounded() && control.ShouldStop())) {
    // Fired during the filter phases or before the fan-out: every survivor
    // is unresolved, without building a pool or waking a worker. The
    // inner-accepted ids stay — they were proven before the stop.
    result.undecided.reserve(outcome.survivors.size());
    for (const auto& [point, id] : outcome.survivors) {
      result.undecided.push_back(id);
    }
    result.status = DegradedStatus(control);
  } else if (!outcome.survivors.empty()) {
    QuerySlot slot;
    CountdownLatch latch(Phase3ChunkCount(outcome.survivors.size()));
    EnqueuePhase3(query, outcome.survivors,
                  MakeQueryPool(query, pool_variant), control, &slot, &latch);
    latch.Wait();
    // After the latch no worker writes to the slot; reads need no lock.
    result.ids.insert(result.ids.end(), slot.merged.begin(),
                      slot.merged.end());
    result.undecided = std::move(slot.undecided);
    if (slot.errors.failed) {
      result.status = slot.errors.ToStatus();
    } else if (!result.undecided.empty()) {
      result.status = DegradedStatus(control);
    }
  }
  const uint64_t phase3_nanos = phase_timer.Stop();

  metrics_.queries->Add(1);
  metrics_.accepted_without_integration->Add(outcome.accepted.size());
  metrics_.results->Add(result.ids.size());
  if (IsStopStatus(result.status)) {
    DeadlineMetrics::Get().expired_queries->Add(1);
    DeadlineMetrics::Get().undecided_candidates->Add(
        result.undecided.size());
  }
  if (stats != nullptr) {
    stats->phase3_seconds = phase3_nanos * 1e-9;
    stats->result_size = result.ids.size();
  }
  if (trace != nullptr) {
    trace->phase_nanos[obs::QueryTrace::kPhase3] += phase3_nanos;
    trace->integrations +=
        outcome.survivors.size() - result.undecided.size();
    trace->result_size = result.ids.size();
    trace->deadline_expired = IsStopStatus(result.status);
    trace->deadline_undecided = result.undecided.size();
    trace->samples_used +=
        CounterDelta(samples.samples_used->Value(), samples_before);
    trace->early_stops +=
        CounterDelta(samples.early_stops->Value(), early_before);
    trace->undecided +=
        CounterDelta(samples.undecided->Value(), undecided_before);
  }
  return result;
}

Result<std::vector<index::ObjectId>> BatchExecutor::IntegrateOutcome(
    const core::PrqQuery& query, core::PrqEngine::FilterOutcome outcome,
    core::PrqStats* stats, obs::QueryTrace* trace,
    mc::PoolVariant pool_variant) {
  Result<core::PrqResult> bounded = IntegrateOutcomeBounded(
      query, std::move(outcome), common::QueryControl::Unlimited(), stats,
      trace, pool_variant);
  if (!bounded.ok()) return bounded.status();
  // Unbounded runs only degrade on worker failure; the complete-answer API
  // surfaces that as the error it always did.
  if (!bounded->status.ok()) return bounded->status;
  return std::move(bounded->ids);
}

Result<core::PrqResult> BatchExecutor::IntegrateAndPublish(
    const core::PrqQuery& query, const core::PrqOptions& options,
    uint64_t config_bits, core::PrqEngine::FilterOutcome outcome,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  // Snapshot what an eventual cache entry needs before the outcome is
  // consumed: the candidate superset for future containment serves is
  // accepted ∪ survivors (see cache::CachedEntry for why that set is sound
  // for every θ' ≥ θ). The copy is only paid when the cache is on.
  const bool cacheable = cache_ != nullptr && !outcome.expired;
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  geom::Rect search_box;
  if (cacheable) {
    candidates.reserve(outcome.accepted.size() + outcome.survivors.size());
    candidates.insert(candidates.end(), outcome.accepted.begin(),
                      outcome.accepted.end());
    candidates.insert(candidates.end(), outcome.survivors.begin(),
                      outcome.survivors.end());
    search_box = outcome.search_box;
  }
  Result<core::PrqResult> result =
      IntegrateOutcomeBounded(query, std::move(outcome), options.control,
                              stats, trace, options.pool_variant);
  if (cacheable && result.ok() && result->status.ok() &&
      result->undecided.empty()) {
    // Only complete answers are published: a degraded result (deadline,
    // brownout, worker failure) is truncated work, not the query's answer.
    cache_->Insert(query, config_bits, search_box, std::move(candidates),
                   result->ids);
  }
  return result;
}

Result<core::PrqResult> BatchExecutor::SubmitBoundedImpl(
    const core::PrqQuery& query, const core::PrqOptions& options,
    AdmissionTicket* ticket, core::PrqStats* stats, obs::QueryTrace* trace) {
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();

  const uint64_t config_bits =
      (cache_ != nullptr) ? cache::FilterConfigBits(options) : 0;
  if (cache_ != nullptr) {
    const cache::ResultCache::Lookup hit = cache_->Find(query, config_bits);
    if (hit.kind == cache::ResultCache::HitKind::kExact) {
      // The stored answer is complete and deterministic — serve it
      // verbatim. No filter phases, no pool, no fan-out; strictly better
      // than any degraded execution, so deadlines and brownout budgets
      // need not apply.
      if (ticket != nullptr) overload_->Refine(ticket, 0.0);
      metrics_.queries->Add(1);
      metrics_.results->Add(hit.entry->ids.size());
      core::PrqResult result;
      result.ids = hit.entry->ids;
      out_stats.result_size = result.ids.size();
      if (trace != nullptr) {
        *trace = obs::QueryTrace();
        trace->cache_hit_exact = true;
        trace->result_size = result.ids.size();
      }
      return result;
    }
    if (hit.kind == cache::ResultCache::HitKind::kSemantic) {
      // Containment serve: Phases 1-2 re-run over the cached candidate
      // superset (no index visit), Phase 3 runs normally — the per-query
      // pool is a pure function of (seed, query), so the decided ids are
      // identical to a fresh execution's.
      core::PrqEngine::FilterOutcome outcome;
      GPRQ_RETURN_NOT_OK(engine_->FilterCandidateSet(
          query, options, hit.entry->candidates, &outcome, &out_stats,
          trace));
      if (trace != nullptr) trace->cache_hit_semantic = true;
      if (ticket != nullptr) {
        overload_->Refine(ticket,
                          static_cast<double>(outcome.survivors.size()));
      }
      if (outcome.proved_empty) {
        metrics_.queries->Add(1);
        return core::PrqResult{};
      }
      return IntegrateAndPublish(query, options, config_bits,
                                 std::move(outcome), &out_stats, trace);
    }
  }

  core::PrqEngine::FilterOutcome outcome;
  GPRQ_RETURN_NOT_OK(
      engine_->RunFilterPhases(query, options, &outcome, &out_stats, trace));
  if (ticket != nullptr) {
    // Phase 2 knows the true cost; replace the admission-time estimate so
    // over-estimated budget frees for queued submitters right away.
    overload_->Refine(ticket, static_cast<double>(outcome.survivors.size()));
  }
  if (outcome.proved_empty) {
    metrics_.queries->Add(1);
    return core::PrqResult{};
  }
  return IntegrateAndPublish(query, options, config_bits, std::move(outcome),
                             &out_stats, trace);
}

Result<core::PrqResult> BatchExecutor::SubmitBounded(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "detached executor cannot run filter phases; submit through the "
        "sharded engine");
  }
  if (overload_ == nullptr) {
    return SubmitBoundedImpl(query, options, nullptr, stats, trace);
  }

  // Governed path: admission first (cheap, and shed queries never touch
  // the submit mutex), then the single-submitter execution section.
  AdmissionTicket ticket = overload_->Admit(
      EstimateQueryCost(*engine_, query, options, dataset_density_),
      options.priority, options.control);
  if (!ticket.admitted) {
    if (trace != nullptr) {
      *trace = obs::QueryTrace();
      trace->shed = true;
      trace->admission_wait_nanos =
          static_cast<uint64_t>(ticket.queue_wait_seconds * 1e9);
      trace->cost_estimate = ticket.cost;
    }
    if (stats != nullptr) *stats = core::PrqStats();
    core::PrqResult rejected;
    rejected.status = std::move(ticket.rejection);
    return rejected;
  }

  core::PrqOptions effective = options;
  if (ticket.brownout) overload_->ApplyBrownout(&effective);

  Result<core::PrqResult> result = core::PrqResult{};
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    result = SubmitBoundedImpl(query, effective, &ticket, stats, trace);
  }
  overload_->Release(ticket);
  if (trace != nullptr) {
    trace->browned_out = ticket.brownout;
    trace->admission_wait_nanos =
        static_cast<uint64_t>(ticket.queue_wait_seconds * 1e9);
    trace->cost_estimate = ticket.cost;
  }
  return result;
}

Result<std::vector<index::ObjectId>> BatchExecutor::Submit(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "detached executor cannot run filter phases; submit through the "
        "sharded engine");
  }
  if (overload_ != nullptr || cache_ != nullptr ||
      !options.control.Unbounded()) {
    // The complete-answer API cannot express a partial result; a degraded
    // run surfaces as its stop status instead of dropping the undecided
    // remainder (under overload governance: a shed or browned-out query
    // surfaces as ResourceExhausted). Callers that want the partial answer
    // use SubmitBounded. With the cache enabled the bounded path is also
    // the cache-aware path.
    Result<core::PrqResult> bounded =
        SubmitBounded(query, options, stats, trace);
    if (!bounded.ok()) return bounded.status();
    if (!bounded->status.ok()) return bounded->status;
    return std::move(bounded->ids);
  }
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();

  core::PrqEngine::FilterOutcome outcome;
  GPRQ_RETURN_NOT_OK(
      engine_->RunFilterPhases(query, options, &outcome, &out_stats, trace));
  if (outcome.proved_empty) {
    metrics_.queries->Add(1);
    return std::vector<index::ObjectId>{};
  }
  return IntegrateOutcome(query, std::move(outcome), &out_stats, trace);
}

Result<std::vector<core::PrqResult>> BatchExecutor::SubmitBatchBounded(
    const std::vector<core::PrqQuery>& queries,
    const core::PrqOptions& options,
    const std::vector<common::QueryControl>* controls,
    std::vector<core::PrqStats>* stats) {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "detached executor cannot run filter phases; submit through the "
        "sharded engine");
  }
  const size_t nq = queries.size();
  if (controls != nullptr && controls->size() != nq) {
    return Status::InvalidArgument(
        "controls must be empty or match queries in size");
  }
  if (stats != nullptr) {
    stats->assign(nq, core::PrqStats());
  }

  // Phases 1-2 for every query up front, on this thread; a query that fails
  // validation or whose control already fired degrades *its own* result and
  // nothing else. The per-query sample pools are built here too: evaluator
  // state may only be touched while no fan-out is in flight, and after the
  // first enqueue below, worker 0 may already be running.
  std::vector<core::PrqResult> results(nq);
  std::vector<core::PrqEngine::FilterOutcome> outcomes(nq);
  std::vector<std::shared_ptr<const mc::SamplePool>> pools(nq);
  std::vector<std::unique_ptr<QuerySlot>> slots(nq);
  std::vector<common::QueryControl> query_controls(nq);
  size_t total_chunks = 0;
  for (size_t q = 0; q < nq; ++q) {
    core::PrqOptions q_options = options;
    if (controls != nullptr) q_options.control = (*controls)[q];
    query_controls[q] = q_options.control;

    core::PrqStats local_stats;
    core::PrqStats& out_stats =
        (stats != nullptr) ? (*stats)[q] : local_stats;
    Status filtered = engine_->RunFilterPhases(queries[q], q_options,
                                               &outcomes[q], &out_stats);
    if (!filtered.ok()) {
      results[q].status = std::move(filtered);
      continue;
    }
    if (outcomes[q].proved_empty) continue;

    results[q].ids.reserve(outcomes[q].accepted.size());
    for (const auto& [point, id] : outcomes[q].accepted) {
      results[q].ids.push_back(id);
    }
    metrics_.accepted_without_integration->Add(outcomes[q].accepted.size());

    const common::QueryControl& control = query_controls[q];
    if (outcomes[q].expired ||
        (!control.Unbounded() && control.ShouldStop())) {
      results[q].undecided.reserve(outcomes[q].survivors.size());
      for (const auto& [point, id] : outcomes[q].survivors) {
        results[q].undecided.push_back(id);
      }
      results[q].status = DegradedStatus(control);
      continue;
    }
    if (outcomes[q].survivors.empty()) continue;
    pools[q] = MakeQueryPool(queries[q], options.pool_variant);
    slots[q] = std::make_unique<QuerySlot>();
    total_chunks += Phase3ChunkCount(outcomes[q].survivors.size());
  }

  // One fan-out for the whole batch: every query's chunks are in flight
  // together, so workers drain query i+1 while stragglers finish query i.
  CountdownLatch latch(total_chunks);
  Stopwatch phase_timer;
  for (size_t q = 0; q < nq; ++q) {
    if (slots[q] == nullptr) continue;
    EnqueuePhase3(queries[q], outcomes[q].survivors, std::move(pools[q]),
                  query_controls[q], slots[q].get(), &latch);
  }
  latch.Wait();

  const uint64_t phase3_nanos = phase_timer.ElapsedNanos();
  metrics_.phase3_nanos->Record(phase3_nanos);
  const double phase3_seconds = phase3_nanos * 1e-9;
  metrics_.queries->Add(nq);
  for (size_t q = 0; q < nq; ++q) {
    if (slots[q] != nullptr) {
      results[q].ids.insert(results[q].ids.end(), slots[q]->merged.begin(),
                            slots[q]->merged.end());
      results[q].undecided = std::move(slots[q]->undecided);
      if (slots[q]->errors.failed) {
        results[q].status = slots[q]->errors.ToStatus();
      } else if (!results[q].undecided.empty()) {
        results[q].status = DegradedStatus(query_controls[q]);
      }
    }
    if (IsStopStatus(results[q].status)) {
      DeadlineMetrics::Get().expired_queries->Add(1);
      DeadlineMetrics::Get().undecided_candidates->Add(
          results[q].undecided.size());
    }
    metrics_.results->Add(results[q].ids.size());
    if (stats != nullptr) {
      (*stats)[q].phase3_seconds = phase3_seconds;
      (*stats)[q].result_size = results[q].ids.size();
    }
  }
  return results;
}

Result<std::vector<std::vector<index::ObjectId>>> BatchExecutor::SubmitBatch(
    const std::vector<core::PrqQuery>& queries,
    const core::PrqOptions& options, std::vector<core::PrqStats>* stats) {
  Result<std::vector<core::PrqResult>> bounded =
      SubmitBatchBounded(queries, options, nullptr, stats);
  if (!bounded.ok()) return bounded.status();
  std::vector<std::vector<index::ObjectId>> results;
  results.reserve(bounded->size());
  // Compat: this API cannot express per-query failure, so the first
  // degraded query fails the whole batch (the bounded API keeps the other
  // queries' answers).
  for (core::PrqResult& r : *bounded) {
    if (!r.status.ok()) return r.status;
    results.push_back(std::move(r.ids));
  }
  return results;
}

ExecStats BatchExecutor::Snapshot() const {
  // Counters are process-wide; subtracting the construction-time baselines
  // recovers this executor's own traffic.
  ExecStats snapshot;
  snapshot.queries =
      CounterDelta(metrics_.queries->Value(), metrics_.baseline_queries);
  snapshot.integrations = CounterDelta(metrics_.integrations->Value(),
                                       metrics_.baseline_integrations);
  snapshot.accepted_without_integration =
      CounterDelta(metrics_.accepted_without_integration->Value(),
                   metrics_.baseline_accepted);
  snapshot.results =
      CounterDelta(metrics_.results->Value(), metrics_.baseline_results);
  snapshot.uptime_seconds = uptime_.ElapsedSeconds();
  // The gprq.exec.queue_depth gauge is maintained live by the WorkerPool
  // at enqueue/dequeue; snapshotting is a pure read with no side effects.
  snapshot.queue_depth = pool_.QueueDepth();
  snapshot.num_workers = pool_.num_workers();
  return snapshot;
}

Status BatchExecutor::Drain(double timeout_seconds) {
  // Ungoverned executors have no in-flight ledger: their single-submitter
  // contract means the caller *is* the in-flight query, so returning from
  // SubmitBounded already implies idleness.
  if (overload_ == nullptr) return Status::OK();
  return overload_->WaitIdle(timeout_seconds);
}

}  // namespace gprq::exec
