#ifndef GPRQ_EXEC_BATCH_EXECUTOR_H_
#define GPRQ_EXEC_BATCH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "exec/overload.h"
#include "exec/worker_pool.h"
#include "mc/probability_evaluator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gprq::exec {

/// Executor-level throughput counters, aggregated over every query an
/// executor has served. PrqStats describes one query; ExecStats describes
/// the serving process — the figure of merit for a sustained query stream
/// (Bernecker et al. / von Looz & Meyerhenke measure their probabilistic
/// query engines the same way).
///
/// Since the obs subsystem landed, this struct is a *view* over the global
/// obs::MetricRegistry (`gprq.exec.*` counters): Snapshot() reads the
/// registry and subtracts the values captured at executor construction, so
/// the numbers stay per-executor while the registry remains the single
/// source of truth for exporters and benches.
struct ExecStats {
  /// Queries completed (Submit counts 1, SubmitBatch counts its size).
  uint64_t queries = 0;
  /// Phase-3 numerical integrations performed across all queries.
  uint64_t integrations = 0;
  /// Objects accepted via the BF inner radius, i.e. integrations avoided.
  uint64_t accepted_without_integration = 0;
  /// Total result cardinality across all queries.
  uint64_t results = 0;
  /// Seconds since the executor was constructed.
  double uptime_seconds = 0.0;
  /// Phase-3 tasks waiting in the pool queue when the snapshot was taken.
  size_t queue_depth = 0;
  /// Worker threads (and evaluators) owned by the executor.
  size_t num_workers = 0;

  double queries_per_second() const {
    return uptime_seconds > 0.0 ? static_cast<double>(queries) / uptime_seconds
                                : 0.0;
  }
  double integrations_per_second() const {
    return uptime_seconds > 0.0
               ? static_cast<double>(integrations) / uptime_seconds
               : 0.0;
  }
};

/// Persistent Phase-3 executor for query streams.
///
/// Construction starts a WorkerPool and builds exactly one evaluator per
/// worker through the factory (seeded once, e.g. with the worker index);
/// both live until the executor is destroyed. The evaluator-lifetime
/// contract: evaluator `w` is only ever touched by pool worker `w`, one
/// task at a time, so evaluators keep their mutable state (RNG streams,
/// adaptive-sampling statistics) across queries without synchronization —
/// and a Monte-Carlo worker's stream advances across the whole query
/// stream instead of being re-seeded per query.
///
/// Submit runs Phases 1-2 on the calling thread (they are cheap — the paper
/// attributes >= 97% of query time to Phase 3) and fans the surviving
/// integrations across the pool. SubmitBatch does the same for a whole
/// batch, interleaving every query's Phase-3 chunks in one fan-out so the
/// pool never idles between queries.
///
/// Phase 3 is pooled: before the fan-out, evaluator 0 builds one read-only
/// mc::SamplePool per query on the submitting thread (sampling evaluators
/// only; exact evaluators return none), and every candidate chunk is decided
/// with one batched DecideBatch call against that shared pool. The
/// O(samples · d²) Gaussian draw is paid once per query instead of once per
/// candidate, and — since the samples no longer come from whichever worker's
/// RNG happens to evaluate a candidate — Phase-3 results are bit-identical
/// regardless of the worker count (see tests/determinism_test.cc).
///
/// An exception thrown by an evaluator inside a worker is captured and
/// surfaced as Status::Internal from the submitting call; it never reaches
/// std::terminate.
///
/// Thread-compatible: one thread submits at a time (the workers are the
/// parallelism). Snapshot() may be called concurrently with submissions.
/// Exception: with an OverloadPolicy installed, Submit/SubmitBounded are
/// fully thread-safe — admission control serializes execution internally
/// (clients blocked at admission are exactly the bounded submission
/// queue), so any number of client threads may call them concurrently.
class BatchExecutor {
 public:
  /// Builds the pool and one evaluator per worker. Fails with
  /// InvalidArgument if the factory is null, returns a null evaluator, or
  /// `num_threads` is 0, and with Internal if the factory throws.
  static Result<std::unique_ptr<BatchExecutor>> Create(
      const core::PrqEngine* engine,
      const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads);

  /// Like Create, but with overload protection installed from the start:
  /// Submit/SubmitBounded go through admission control (see overload.h).
  /// Fails with InvalidArgument if the policy does not validate.
  static Result<std::unique_ptr<BatchExecutor>> Create(
      const core::PrqEngine* engine,
      const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads,
      const OverloadPolicy& policy);

  /// An executor with no engine of its own: the pool, evaluators and the
  /// Phase-3 entry points (IntegrateOutcome/IntegrateOutcomeBounded,
  /// RunTasks) work as usual, but the engine-routed entry points
  /// (Submit*/SetOverloadPolicy) fail with InvalidArgument. The sharded
  /// engine uses this form — it owns one engine per shard and the executor
  /// only supplies shared workers and per-worker evaluators.
  static Result<std::unique_ptr<BatchExecutor>> CreateDetached(
      const core::PrqEngine::EvaluatorFactory& factory, size_t num_threads);

  /// Runs one query; result-set semantics identical to PrqEngine::Execute
  /// with an equivalent evaluator (order may differ; compare as sets).
  ///
  /// If `trace` is non-null it receives the full per-query record: filter
  /// phase spans and prune breakdown from the engine, plus the Phase-3
  /// integration count, result size, and sampling counters. The sampling
  /// fields (samples_used / early_stops / undecided) are measured as
  /// registry deltas around the fan-out, so they are exact when this
  /// executor is the only sampler in flight (the serving configuration:
  /// one submitter per executor, one executor per process).
  Result<std::vector<index::ObjectId>> Submit(
      const core::PrqQuery& query, const core::PrqOptions& options,
      core::PrqStats* stats = nullptr, obs::QueryTrace* trace = nullptr);

  /// Deadline/cancellation-aware Submit: honors options.control and
  /// degrades to a sound partial core::PrqResult when it fires (decided
  /// candidates are exact, the unresolved remainder is listed in
  /// `undecided`, `status` carries DeadlineExceeded/Cancelled). A worker
  /// exception degrades the same way: the failing chunk's candidates
  /// surface as undecided with status Internal. An error Result is returned
  /// only for invalid queries.
  ///
  /// With an OverloadPolicy installed this is the governed, thread-safe
  /// entry point: the query passes admission control first and may come
  /// back immediately with `status` ResourceExhausted (shed or rejected —
  /// the message carries a retry_after_ms hint, see
  /// exec::RetryAfterSeconds), or run with brownout-degraded budgets, in
  /// which case unresolved candidates are listed in `undecided` and
  /// `status` is ResourceExhausted while `ids` stay exact.
  Result<core::PrqResult> SubmitBounded(const core::PrqQuery& query,
                                        const core::PrqOptions& options,
                                        core::PrqStats* stats = nullptr,
                                        obs::QueryTrace* trace = nullptr);

  /// Runs a batch; `results[i]` answers `queries[i]`. All queries' Phase-3
  /// chunks share one fan-out. If `stats` is non-null it is resized to the
  /// batch and `(*stats)[i]` receives query i's filter-phase timings and
  /// counts; phase3_seconds reports the shared fan-out's wall time (the
  /// per-query attribution does not exist when chunks interleave). Fails
  /// fast on the first query whose validation fails.
  Result<std::vector<std::vector<index::ObjectId>>> SubmitBatch(
      const std::vector<core::PrqQuery>& queries,
      const core::PrqOptions& options,
      std::vector<core::PrqStats>* stats = nullptr);

  /// Deadline/cancellation-aware batch with per-query fault isolation:
  /// `results[i]` answers `queries[i]`, and one query failing — invalid
  /// arguments, an evaluator exception in one of its chunks, its deadline
  /// firing — degrades only that query's PrqResult (status non-OK,
  /// unresolved candidates in `undecided`) while every other query
  /// completes exactly as if submitted alone. `controls` (optional) gives
  /// each query its own deadline/cancellation, overriding options.control;
  /// it must match `queries` in size. All queries still share one Phase-3
  /// fan-out. An error Result is returned only for a malformed call
  /// (mismatched `controls` size), never for a per-query failure.
  ///
  /// Batch submission bypasses admission control: a batch comes from one
  /// trusted caller that already chose its size, and per-query admission
  /// inside a shared fan-out would tear the batch apart. Open-loop query
  /// streams that need overload protection submit per query.
  Result<std::vector<core::PrqResult>> SubmitBatchBounded(
      const std::vector<core::PrqQuery>& queries,
      const core::PrqOptions& options,
      const std::vector<common::QueryControl>* controls = nullptr,
      std::vector<core::PrqStats>* stats = nullptr);

  /// Fans Phase 3 of an already-filtered query across the pool and returns
  /// accepted + qualifying ids. `stats` (if non-null) receives
  /// phase3_seconds and result_size on top of whatever the filter pass
  /// already wrote; `trace` (if non-null) receives the Phase-3 fields the
  /// same way. Used by PrqEngine::ExecuteParallel, which runs its own
  /// filter pass; stream callers normally use Submit.
  Result<std::vector<index::ObjectId>> IntegrateOutcome(
      const core::PrqQuery& query, core::PrqEngine::FilterOutcome outcome,
      core::PrqStats* stats = nullptr, obs::QueryTrace* trace = nullptr,
      mc::PoolVariant pool_variant = mc::PoolVariant::kPseudoRandom);

  /// Control-aware IntegrateOutcome: fans Phase 3 out under `control` and
  /// returns a (possibly partial) core::PrqResult instead of failing the
  /// whole query on a deadline or worker error. Used by SubmitBounded and
  /// PrqEngine::ExecuteParallel.
  Result<core::PrqResult> IntegrateOutcomeBounded(
      const core::PrqQuery& query, core::PrqEngine::FilterOutcome outcome,
      const common::QueryControl& control, core::PrqStats* stats = nullptr,
      obs::QueryTrace* trace = nullptr,
      mc::PoolVariant pool_variant = mc::PoolVariant::kPseudoRandom);

  /// Runs arbitrary tasks on the worker pool and blocks until all have
  /// finished. Each task receives its worker index; a task that throws is
  /// captured (first error wins, the rest still run) and surfaced as
  /// Status::Internal. The caller must not have a Phase-3 fan-out in
  /// flight, and the tasks must not touch the per-worker evaluators —
  /// this is the scatter primitive the sharded engine uses to run
  /// per-shard filter phases on the same threads that later run Phase 3.
  Status RunTasks(std::vector<WorkerPool::Task> tasks);

  /// Point-in-time throughput counters.
  ExecStats Snapshot() const;

  size_t num_workers() const { return pool_.num_workers(); }

  /// The engine Submit* routes through, or null for a detached executor.
  /// The network front-end reads dataset facts (dim, size) through it.
  const core::PrqEngine* engine() const { return engine_; }

  /// Drain hook for serving front-ends: blocks until every governed
  /// submission admitted through the OverloadController has been released
  /// (trivially immediate for an ungoverned executor, whose callers are
  /// the in-flight tracker). Returns DeadlineExceeded when queries are
  /// still in flight after `timeout_seconds`.
  Status Drain(double timeout_seconds = 5.0);

  /// Installs (or replaces) the overload policy after construction. Not
  /// safe to call while submissions are in flight; meant for startup
  /// configuration (tools, tests). Fails if the policy does not validate.
  Status SetOverloadPolicy(const OverloadPolicy& policy);

  /// Installs the semantic result cache (see cache::ResultCache). Like
  /// SetOverloadPolicy, a startup knob — not safe while submissions are in
  /// flight. Once enabled, Submit/SubmitBounded consult the cache before
  /// the filter phases and publish every complete answer into it; cached
  /// answers (exact or containment-served) are set-identical to fresh
  /// execution because Phase-3 sample pools are a pure function of
  /// (evaluator seed, query). Batch submissions bypass the cache — a batch
  /// shares one fan-out and its queries are typically all distinct.
  /// The executor owns the cache; it is valid for this executor's dataset
  /// and evaluator configuration only.
  Status EnableResultCache(const cache::ResultCacheOptions& options);

  /// The result cache, or null when not enabled. Exposed for observability
  /// and invalidation (the future online-update path calls
  /// result_cache()->Invalidate(region) after a dataset mutation).
  cache::ResultCache* result_cache() const { return cache_.get(); }

  /// The admission controller, or null when no policy is installed.
  /// Exposed for observability (state, in-flight cost) — benches and the
  /// CLI read it; clients should not Admit/Release through it directly.
  OverloadController* overload() const { return overload_.get(); }

 private:
  BatchExecutor(const core::PrqEngine* engine,
                std::vector<std::unique_ptr<mc::ProbabilityEvaluator>>
                    evaluators);

  /// Captures the first worker error of a fan-out.
  struct ErrorCollector {
    std::mutex mutex;
    bool failed = false;
    std::string message;

    void Record(std::string msg);
    Status ToStatus() const;
  };

  /// Per-query Phase-3 state of one fan-out. Each query gets its own slot —
  /// its own merge lock, undecided list, and error collector — so one
  /// query's worker exception or deadline can never poison the answers of
  /// the other queries sharing the fan-out.
  struct QuerySlot {
    std::vector<index::ObjectId> merged;
    std::vector<index::ObjectId> undecided;
    std::mutex merge_mutex;
    ErrorCollector errors;
  };

  /// Enqueues the Phase-3 chunk tasks for one query's survivors. `pool` is
  /// the query's shared sample pool from MakeQueryPool (may be null); each
  /// chunk task holds a reference until it finishes. Qualifying ids are
  /// appended to slot->merged and unresolved candidates (control fired,
  /// chunk failpoint, evaluator exception — the whole chunk in the latter
  /// two cases) to slot->undecided, both under slot->merge_mutex; counts
  /// `latch` down once per chunk (Phase3ChunkCount(survivors.size())
  /// chunks total). An unbounded `control` runs the exact pre-deadline
  /// decide path.
  void EnqueuePhase3(
      const core::PrqQuery& query,
      const std::vector<std::pair<la::Vector, index::ObjectId>>& survivors,
      std::shared_ptr<const mc::SamplePool> pool,
      const common::QueryControl& control, QuerySlot* slot,
      CountdownLatch* latch);

  /// Builds the query's shared read-only sample pool through evaluator 0
  /// (null for evaluators that don't sample). Must run on the submitting
  /// thread while no fan-out is in flight: it advances evaluator 0's
  /// dedicated pool stream, and the task-queue handoff orders that write
  /// before any worker touches the pool. Because the pool — not a worker's
  /// RNG — supplies every sample of the query, Phase-3 results are
  /// bit-identical for any GPRQ_THREADS.
  std::shared_ptr<const mc::SamplePool> MakeQueryPool(
      const core::PrqQuery& query, mc::PoolVariant pool_variant);

  size_t Phase3ChunkCount(size_t survivors) const;

  /// The ungoverned SubmitBounded body. When `ticket` is non-null its cost
  /// estimate is refined with the true survivor count after Phase 2.
  Result<core::PrqResult> SubmitBoundedImpl(const core::PrqQuery& query,
                                            const core::PrqOptions& options,
                                            AdmissionTicket* ticket,
                                            core::PrqStats* stats,
                                            obs::QueryTrace* trace);

  /// Phase 3 + cache publication for one query whose filter phases (fresh
  /// or cache-served) produced `outcome`: integrates the survivors under
  /// options.control and, when the cache is enabled and the answer came
  /// back complete, inserts it keyed at the query's (fingerprint, δ, θ,
  /// config). Shared by the miss path and the semantic-hit path of
  /// SubmitBoundedImpl.
  Result<core::PrqResult> IntegrateAndPublish(
      const core::PrqQuery& query, const core::PrqOptions& options,
      uint64_t config_bits, core::PrqEngine::FilterOutcome outcome,
      core::PrqStats* stats, obs::QueryTrace* trace);

  /// Registry-backed executor metrics (`gprq.exec.*`), resolved once at
  /// construction. `baseline_*` hold the counter values at construction so
  /// Snapshot() can report this executor's own traffic even though the
  /// counters are process-wide.
  struct Metrics {
    obs::Counter* queries;
    obs::Counter* integrations;
    obs::Counter* accepted_without_integration;
    obs::Counter* results;
    obs::Gauge* num_workers;
    obs::Histogram* phase3_nanos;
    // Per-worker integration counters (`gprq.exec.worker.<w>.integrations`
    // — the load-balance view the static chunk partition is judged by).
    std::vector<obs::Counter*> worker_integrations;
    uint64_t baseline_queries = 0;
    uint64_t baseline_integrations = 0;
    uint64_t baseline_accepted = 0;
    uint64_t baseline_results = 0;
  };

  const core::PrqEngine* engine_;
  WorkerPool pool_;
  // One per worker; evaluators_[w] is touched only by pool worker w.
  std::vector<std::unique_ptr<mc::ProbabilityEvaluator>> evaluators_;

  // Overload protection (null until a policy is installed). submit_mutex_
  // serializes governed submissions so concurrent clients respect the
  // single-submitter evaluator contract; the wait happens *after*
  // admission, so shed queries never contend for it.
  std::unique_ptr<OverloadController> overload_;
  std::mutex submit_mutex_;
  double dataset_density_ = 0.0;

  // Semantic result cache (null until enabled).
  std::unique_ptr<cache::ResultCache> cache_;

  Stopwatch uptime_;
  Metrics metrics_;
};

}  // namespace gprq::exec

#endif  // GPRQ_EXEC_BATCH_EXECUTOR_H_
