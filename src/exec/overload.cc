#include "exec/overload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "geom/rect.h"

namespace gprq::exec {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\n\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\n\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

const char* OverloadStateName(OverloadState state) {
  switch (state) {
    case OverloadState::kAccept:
      return "accept";
    case OverloadState::kBrownout:
      return "brownout";
    case OverloadState::kShed:
      return "shed";
  }
  return "unknown";
}

Status OverloadPolicy::Validate() const {
  if (!(max_inflight_cost > 0.0)) {
    return Status::InvalidArgument("max_inflight_cost must be > 0");
  }
  if (!(max_queue_wait_seconds > 0.0)) {
    return Status::InvalidArgument("max_queue_wait_seconds must be > 0");
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    return Status::InvalidArgument("ewma_alpha must be in (0, 1]");
  }
  if (!(brownout_watermark_seconds > 0.0)) {
    return Status::InvalidArgument("brownout_watermark_seconds must be > 0");
  }
  if (shed_watermark_seconds < brownout_watermark_seconds) {
    return Status::InvalidArgument(
        "shed_watermark_seconds must be >= brownout_watermark_seconds");
  }
  if (!(hysteresis_ratio > 0.0) || hysteresis_ratio > 1.0) {
    return Status::InvalidArgument("hysteresis_ratio must be in (0, 1]");
  }
  if (!(brownout_deadline_seconds > 0.0)) {
    return Status::InvalidArgument("brownout_deadline_seconds must be > 0");
  }
  if (retry_after_seconds < 0.0) {
    return Status::InvalidArgument("retry_after_seconds must be >= 0");
  }
  if (min_shed_priority < min_brownout_priority) {
    return Status::InvalidArgument(
        "min_shed_priority must be >= min_brownout_priority");
  }
  return Status::OK();
}

Result<OverloadPolicy> OverloadPolicy::FromSpec(const std::string& spec) {
  OverloadPolicy policy;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string entry = Trim(spec.substr(pos, sep - pos));
    pos = sep + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("overload spec entry missing '=': " +
                                     entry);
    }
    const std::string key = Trim(entry.substr(0, eq));
    const std::string value = Trim(entry.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("malformed overload spec entry: " +
                                     entry);
    }
    const double number = std::strtod(value.c_str(), nullptr);
    if (key == "max_inflight_cost") {
      policy.max_inflight_cost = number;
    } else if (key == "max_queue_depth") {
      policy.max_queue_depth = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "max_queue_wait_ms") {
      policy.max_queue_wait_seconds = number * 1e-3;
    } else if (key == "ewma_alpha") {
      policy.ewma_alpha = number;
    } else if (key == "brownout_watermark_ms") {
      policy.brownout_watermark_seconds = number * 1e-3;
    } else if (key == "shed_watermark_ms") {
      policy.shed_watermark_seconds = number * 1e-3;
    } else if (key == "hysteresis") {
      policy.hysteresis_ratio = number;
    } else if (key == "brownout_deadline_ms") {
      policy.brownout_deadline_seconds = number * 1e-3;
    } else if (key == "brownout_samples") {
      policy.brownout_sample_budget =
          std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "retry_after_ms") {
      policy.retry_after_seconds = number * 1e-3;
    } else if (key == "min_brownout_priority") {
      policy.min_brownout_priority = static_cast<int>(number);
    } else if (key == "min_shed_priority") {
      policy.min_shed_priority = static_cast<int>(number);
    } else {
      return Status::InvalidArgument("unknown overload spec key: " + key);
    }
  }
  GPRQ_RETURN_NOT_OK(policy.Validate());
  return policy;
}

// ---- LoadShedder -----------------------------------------------------------

LoadShedder::LoadShedder(const OverloadPolicy& policy)
    : alpha_(policy.ewma_alpha),
      brownout_watermark_(policy.brownout_watermark_seconds),
      shed_watermark_(policy.shed_watermark_seconds),
      hysteresis_(policy.hysteresis_ratio) {}

OverloadState LoadShedder::Observe(double wait_seconds) {
  ewma_ = alpha_ * wait_seconds + (1.0 - alpha_) * ewma_;
  OverloadState next = state_;
  switch (state_) {
    case OverloadState::kAccept:
      if (ewma_ >= shed_watermark_) {
        next = OverloadState::kShed;
      } else if (ewma_ >= brownout_watermark_) {
        next = OverloadState::kBrownout;
      }
      break;
    case OverloadState::kBrownout:
      if (ewma_ >= shed_watermark_) {
        next = OverloadState::kShed;
      } else if (ewma_ < hysteresis_ * brownout_watermark_) {
        next = OverloadState::kAccept;
      }
      break;
    case OverloadState::kShed:
      // Leaving Shed needs the signal to fall well below the watermark
      // that tripped it; it lands in Brownout unless it has also cleared
      // Brownout's own exit threshold.
      if (ewma_ < hysteresis_ * shed_watermark_) {
        next = ewma_ < hysteresis_ * brownout_watermark_
                   ? OverloadState::kAccept
                   : OverloadState::kBrownout;
      }
      break;
  }
  if (next != state_) {
    state_ = next;
    ++transitions_;
  }
  return state_;
}

// ---- OverloadController ----------------------------------------------------

OverloadController::OverloadController(const OverloadPolicy& policy)
    : policy_(policy), shedder_(policy) {
  obs::MetricRegistry& r = obs::MetricRegistry::Global();
  metrics_.admitted = r.GetCounter("gprq.overload.admitted");
  metrics_.brownouts = r.GetCounter("gprq.overload.brownouts");
  metrics_.shed = r.GetCounter("gprq.overload.shed");
  metrics_.rejected_queue_full =
      r.GetCounter("gprq.overload.rejected_queue_full");
  metrics_.rejected_timeout = r.GetCounter("gprq.overload.rejected_timeout");
  metrics_.transitions = r.GetCounter("gprq.overload.transitions");
  metrics_.state = r.GetGauge("gprq.overload.state");
  metrics_.inflight_cost = r.GetGauge("gprq.overload.inflight_cost");
  metrics_.admission_wait_nanos =
      r.GetHistogram("gprq.overload.admission_wait_nanos");
  metrics_.state->Set(static_cast<double>(shedder_.state()));
}

Status OverloadController::RejectionStatus(const char* reason,
                                           OverloadState state) const {
  char msg[160];
  std::snprintf(
      msg, sizeof(msg), "overload: %s (state=%s); retry_after_ms=%d", reason,
      OverloadStateName(state),
      std::max(1, static_cast<int>(policy_.retry_after_seconds * 1e3)));
  return Status::ResourceExhausted(msg);
}

void OverloadController::PublishStateLocked(OverloadState before,
                                            OverloadState after) {
  if (before == after) return;
  metrics_.transitions->Add(1);
  metrics_.state->Set(static_cast<double>(after));
}

AdmissionTicket OverloadController::Admit(
    double estimated_cost, int priority,
    const common::QueryControl& control) {
  AdmissionTicket ticket;
  // Every query costs at least one unit so even proved-empty floods are
  // bounded by max_inflight_cost admissions.
  ticket.cost = std::max(estimated_cost, 1.0);

  std::unique_lock<std::mutex> lock(mutex_);
  OverloadState state = shedder_.state();
  if (state != OverloadState::kAccept && inflight_queries_ == 0 &&
      queued_ == 0) {
    // Nothing in flight and nobody waiting: the backpressure signal is
    // provably zero. Feed that to the shedder so a spike that has fully
    // drained cannot pin the gate shut against low-priority traffic
    // forever; under genuine load something is always in flight or queued
    // and the gate stays on its fast path.
    const OverloadState before = state;
    state = shedder_.Observe(0.0);
    PublishStateLocked(before, state);
  }
  if ((state == OverloadState::kBrownout &&
       priority < policy_.min_brownout_priority) ||
      (state == OverloadState::kShed && priority < policy_.min_shed_priority)) {
    metrics_.shed->Add(1);
    ticket.rejection = RejectionStatus("load shed", state);
    return ticket;
  }

  // An idle controller admits anything: a single query whose estimate
  // exceeds the whole budget must run alone, not starve forever. Idleness
  // is the integer query count, not the float cost — Refine's estimate
  // swap can leave a harmless rounding residue in inflight_cost_.
  if (inflight_queries_ > 0 &&
      inflight_cost_ + ticket.cost > policy_.max_inflight_cost) {
    if (queued_ >= policy_.max_queue_depth) {
      metrics_.rejected_queue_full->Add(1);
      ticket.rejection = RejectionStatus("admission queue full", state);
      return ticket;
    }
    // Wait (bounded in depth above and in time below) for budget capacity.
    // The wait itself is the load signal: it feeds the shedder's EWMA on
    // the way out, whether admission succeeds or not.
    ++queued_;
    Stopwatch waited;
    bool give_up = false;
    while (inflight_queries_ > 0 &&
           inflight_cost_ + ticket.cost > policy_.max_inflight_cost) {
      if (!control.Unbounded() && control.ShouldStop()) {
        give_up = true;
        break;
      }
      if (waited.ElapsedSeconds() >= policy_.max_queue_wait_seconds) {
        give_up = true;
        break;
      }
      capacity_cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    --queued_;
    ticket.queue_wait_seconds = waited.ElapsedSeconds();
    if (give_up) {
      const OverloadState before = shedder_.state();
      const OverloadState after =
          shedder_.Observe(ticket.queue_wait_seconds);
      PublishStateLocked(before, after);
      metrics_.rejected_timeout->Add(1);
      const Status stop = control.StopStatus();
      ticket.rejection =
          stop.ok() ? RejectionStatus("admission queue wait timed out",
                                      after)
                    : stop;
      return ticket;
    }
  }

  const OverloadState before = shedder_.state();
  state = shedder_.Observe(ticket.queue_wait_seconds);
  PublishStateLocked(before, state);
  metrics_.admission_wait_nanos->Record(
      static_cast<uint64_t>(ticket.queue_wait_seconds * 1e9));
  inflight_cost_ += ticket.cost;
  ++inflight_queries_;
  metrics_.inflight_cost->Set(inflight_cost_);
  ticket.admitted = true;
  ticket.brownout = state != OverloadState::kAccept;
  metrics_.admitted->Add(1);
  if (ticket.brownout) metrics_.brownouts->Add(1);
  return ticket;
}

void OverloadController::Refine(AdmissionTicket* ticket, double actual_cost) {
  if (ticket == nullptr || !ticket->admitted) return;
  const double actual = std::max(actual_cost, 1.0);
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_cost_ = std::max(0.0, inflight_cost_ + actual - ticket->cost);
  const bool freed = actual < ticket->cost;
  ticket->cost = actual;
  metrics_.inflight_cost->Set(inflight_cost_);
  if (freed) capacity_cv_.notify_all();
}

void OverloadController::Release(const AdmissionTicket& ticket) {
  if (!ticket.admitted) return;
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_cost_ = std::max(0.0, inflight_cost_ - ticket.cost);
  if (inflight_queries_ > 0) --inflight_queries_;
  // Snap rounding residue from Refine's estimate/actual swaps to an exact
  // zero whenever the controller empties out.
  if (inflight_queries_ == 0) inflight_cost_ = 0.0;
  metrics_.inflight_cost->Set(inflight_cost_);
  capacity_cv_.notify_all();
}

Status OverloadController::WaitIdle(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool idle = capacity_cv_.wait_for(
      lock, std::chrono::duration<double>(std::max(0.0, timeout_seconds)),
      [this] { return inflight_queries_ == 0 && queued_ == 0; });
  if (idle) return Status::OK();
  return Status::DeadlineExceeded(
      "drain timed out with " + std::to_string(inflight_queries_) +
      " in-flight and " + std::to_string(queued_) + " queued queries");
}

void OverloadController::ApplyBrownout(core::PrqOptions* options) const {
  common::QueryControl& control = options->control;
  // The tighter deadline wins; a query already promising less keeps its
  // own.
  if (control.deadline.is_infinite() ||
      control.deadline.remaining_seconds() >
          policy_.brownout_deadline_seconds) {
    control.deadline =
        common::Deadline::After(policy_.brownout_deadline_seconds);
  }
  if (policy_.brownout_sample_budget > 0) {
    control.sample_budget =
        control.sample_budget == 0
            ? policy_.brownout_sample_budget
            : std::min(control.sample_budget,
                       policy_.brownout_sample_budget);
  }
}

OverloadState OverloadController::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shedder_.state();
}

double OverloadController::inflight_cost() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_cost_;
}

double OverloadController::smoothed_wait_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shedder_.smoothed_wait_seconds();
}

// ---- Cost proxy ------------------------------------------------------------

double EstimateQueryCost(const core::PrqEngine& engine,
                         const core::PrqQuery& query,
                         const core::PrqOptions& options,
                         double objects_per_unit_volume) {
  const core::GaussianDistribution& g = query.query_object;
  const double r_theta =
      engine.EffectiveThetaRadius(query.theta, options.use_catalogs);
  double volume = 1.0;
  for (size_t i = 0; i < g.dim(); ++i) {
    const double variance = std::max(g.covariance()(i, i), 0.0);
    volume *= 2.0 * (query.delta + r_theta * std::sqrt(variance));
  }
  const double cap =
      std::max(static_cast<double>(engine.tree().size()), 1.0);
  double cost = volume * objects_per_unit_volume;
  if (!std::isfinite(cost)) cost = cap;
  return std::clamp(cost, 1.0, cap);
}

double DatasetDensity(const index::RStarTree& tree) {
  if (tree.size() == 0) return 0.0;
  const geom::Rect bounds = tree.Bounds();
  double volume = 1.0;
  for (size_t i = 0; i < tree.dim(); ++i) {
    volume *= std::max(bounds.hi()[i] - bounds.lo()[i], 1e-12);
  }
  return static_cast<double>(tree.size()) / volume;
}

double RetryAfterSeconds(const Status& status, double fallback) {
  static constexpr char kTag[] = "retry_after_ms=";
  // The hint is advisory and the message is attacker-ish input (it may have
  // been relayed through logs or another process), so the parse is a strict
  // manual digit scan, not strtol: no sign, no leading whitespace, no silent
  // LONG_MAX saturation. Anything malformed — no digits after the tag, a
  // zero hint, or a value past the 1-hour sanity cap (where strtol overflow
  // garbage would land) — yields the caller's fallback, never 0 and never
  // a wild sleep.
  static constexpr uint64_t kMaxRetryMs = 3'600'000;  // 1 hour
  const std::string& message = status.message();
  const size_t at = message.find(kTag);
  if (at == std::string::npos) return fallback;
  size_t pos = at + sizeof(kTag) - 1;
  uint64_t ms = 0;
  size_t digits = 0;
  while (pos < message.size() && message[pos] >= '0' && message[pos] <= '9') {
    ms = ms * 10 + static_cast<uint64_t>(message[pos] - '0');
    ++pos;
    if (++digits > 7) return fallback;  // > 9,999,999 ms is already bogus
  }
  if (digits == 0 || ms == 0 || ms > kMaxRetryMs) return fallback;
  return static_cast<double>(ms) * 1e-3;
}

}  // namespace gprq::exec
