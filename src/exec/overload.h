#ifndef GPRQ_EXEC_OVERLOAD_H_
#define GPRQ_EXEC_OVERLOAD_H_

// Overload-resilient serving: admission control, load shedding, and
// brownout degradation for the BatchExecutor.
//
// The paper's cost model makes per-query work wildly variable — the
// candidate set surviving RR/OR/BF filtering and the Monte-Carlo samples
// Phase 3 burns swing by orders of magnitude with Σ, δ, θ (BENCH_phase3
// records a 20–87× spread) — so a burst of expensive queries can collapse
// the serving layer even though every individual query has a deadline.
// Admission-time protection closes that gap:
//
//   Accept ──(EWMA admission wait ≥ brownout watermark)──▶ Brownout
//   Brownout ──(EWMA ≥ shed watermark)──▶ Shed
//   (downward transitions need the EWMA to fall below
//    hysteresis_ratio × the watermark — no flapping at the boundary)
//
//   Accept:   every priority admitted at full budgets (the cost budget
//             still bounds concurrency).
//   Brownout: background priority shed; everything else admitted with a
//             tightened deadline and a Phase-3 sample budget. Degraded
//             answers flow through the undecided contract: returned ids
//             stay exact, the unresolved remainder is explicit, status is
//             ResourceExhausted.
//   Shed:     only critical priority admitted (still degraded); the rest
//             rejected immediately with ResourceExhausted + retry-after.
//
// Admission also enforces a token/cost budget: each query carries a cost
// estimate — expected Phase-3 candidates, from the θ-region search-box
// volume × dataset density — refined after Phase 2 with the true survivor
// count. When the in-flight cost budget is full, submitters wait in a
// bounded queue; a full queue rejects at the door. The time spent waiting
// is exactly the backpressure signal the shedder smooths (see
// worker_pool.h on queue_wait_nanos).
//
// Everything is observable under gprq.overload.* and every knob lives in
// OverloadPolicy, threaded through BatchExecutor::Create.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "core/engine.h"
#include "index/rstar_tree.h"
#include "obs/metrics.h"

namespace gprq::exec {

/// Every overload-protection knob in one place. Cost is measured in
/// expected Phase-3 integrations (one unit ≈ one surviving candidate).
struct OverloadPolicy {
  /// Token budget: total estimated cost admitted concurrently. With the
  /// single-submitter executor this bounds the cost a burst of governed
  /// submitter threads can have in flight at once. An idle controller
  /// always admits: a query whose estimate alone exceeds the budget runs
  /// by itself instead of starving forever.
  double max_inflight_cost = 1.0e4;
  /// Submitters allowed to wait for cost-budget capacity before the door
  /// rejects outright (the bounded submission queue).
  size_t max_queue_depth = 16;
  /// Longest a submitter may wait in the queue before being rejected —
  /// the queue is bounded in time as well as depth, so a stalled budget
  /// can never strand a deadline-less query.
  double max_queue_wait_seconds = 0.5;

  /// EWMA smoothing factor for the admission-wait signal, in (0, 1];
  /// higher reacts faster.
  double ewma_alpha = 0.3;
  /// Smoothed admission wait at which brownout begins.
  double brownout_watermark_seconds = 0.010;
  /// Smoothed admission wait at which shedding begins.
  double shed_watermark_seconds = 0.050;
  /// Downward transitions require the EWMA to drop below
  /// hysteresis_ratio × the watermark that was crossed, preventing
  /// flapping when the signal hovers at a boundary. In (0, 1].
  double hysteresis_ratio = 0.5;

  /// Effective deadline given to a browned-out query (the tighter of this
  /// and the query's own deadline wins).
  double brownout_deadline_seconds = 0.100;
  /// Per-candidate Phase-3 sample cap for browned-out queries
  /// (QueryControl::sample_budget); 0 disables the cap.
  uint64_t brownout_sample_budget = 8192;

  /// Hint embedded in rejection statuses as "retry_after_ms=<n>".
  double retry_after_seconds = 0.050;
  /// Lowest priority admitted in Brownout (PrqOptions::priority).
  int min_brownout_priority = core::kPriorityNormal;
  /// Lowest priority admitted in Shed.
  int min_shed_priority = core::kPriorityCritical;

  Status Validate() const;

  /// Parses "key=value;key=value" (whitespace-tolerant), mirroring the
  /// GPRQ_FAILPOINTS grammar style. Keys: max_inflight_cost,
  /// max_queue_depth, max_queue_wait_ms, ewma_alpha, brownout_watermark_ms,
  /// shed_watermark_ms, hysteresis, brownout_deadline_ms, brownout_samples,
  /// retry_after_ms, min_brownout_priority, min_shed_priority. Unknown keys
  /// fail; values start from the defaults. The result is validated.
  static Result<OverloadPolicy> FromSpec(const std::string& spec);
};

enum class OverloadState { kAccept = 0, kBrownout = 1, kShed = 2 };
const char* OverloadStateName(OverloadState state);

/// The EWMA + two-watermark hysteresis state machine. Pure and
/// single-threaded by design (OverloadController drives it under its
/// lock); exposed so tests can square-wave it deterministically.
class LoadShedder {
 public:
  explicit LoadShedder(const OverloadPolicy& policy);

  /// Feeds one admission-wait observation and returns the state after the
  /// transition rules run.
  OverloadState Observe(double wait_seconds);

  OverloadState state() const { return state_; }
  double smoothed_wait_seconds() const { return ewma_; }
  uint64_t transitions() const { return transitions_; }

 private:
  const double alpha_;
  const double brownout_watermark_;
  const double shed_watermark_;
  const double hysteresis_;
  double ewma_ = 0.0;
  OverloadState state_ = OverloadState::kAccept;
  uint64_t transitions_ = 0;
};

/// The admission verdict for one query. Admitted tickets must be passed
/// to Release() exactly once (Refine() in between is optional); rejected
/// tickets carry the ResourceExhausted rejection with its retry-after
/// hint and must not be released.
struct AdmissionTicket {
  bool admitted = false;
  /// Admitted under degradation: the caller must apply the policy's
  /// brownout budgets (BatchExecutor does via ApplyBrownout).
  bool brownout = false;
  /// Cost units currently charged against the in-flight budget.
  double cost = 0.0;
  /// Time spent waiting in the bounded admission queue.
  double queue_wait_seconds = 0.0;
  Status rejection;
};

/// Thread-safe admission control + load shedding + brownout state, one
/// instance per governed BatchExecutor. All transitions publish to
/// gprq.overload.* (state gauge, transition/shed/brownout/rejection
/// counters, admission-wait histogram).
class OverloadController {
 public:
  /// `policy` must already be Validate()-clean.
  explicit OverloadController(const OverloadPolicy& policy);

  /// Decides admission for a query of `estimated_cost` and `priority`.
  /// May block in the bounded queue waiting for cost-budget capacity;
  /// `control` is polled while waiting so a query whose own deadline fires
  /// in the queue is rejected rather than stranded.
  AdmissionTicket Admit(double estimated_cost, int priority,
                        const common::QueryControl& control);

  /// Replaces the ticket's cost estimate with the true survivor count
  /// once Phase 2 knows it; frees over-estimated budget immediately.
  void Refine(AdmissionTicket* ticket, double actual_cost);

  /// Returns the ticket's cost to the budget and wakes queued submitters.
  void Release(const AdmissionTicket& ticket);

  /// Blocks until no queries are admitted-but-unreleased and none are
  /// waiting in the admission queue — the serving front-end's drain
  /// barrier. Returns DeadlineExceeded if the controller is still busy
  /// after `timeout_seconds`.
  Status WaitIdle(double timeout_seconds);

  /// Degrades a browned-out query's options in place: tightens the
  /// effective deadline to at most brownout_deadline_seconds and installs
  /// the Phase-3 sample budget.
  void ApplyBrownout(core::PrqOptions* options) const;

  OverloadState state() const;
  double inflight_cost() const;
  double smoothed_wait_seconds() const;
  const OverloadPolicy& policy() const { return policy_; }

 private:
  struct Metrics {
    obs::Counter* admitted;
    obs::Counter* brownouts;
    obs::Counter* shed;
    obs::Counter* rejected_queue_full;
    obs::Counter* rejected_timeout;
    obs::Counter* transitions;
    obs::Gauge* state;
    obs::Gauge* inflight_cost;
    obs::Histogram* admission_wait_nanos;
  };

  Status RejectionStatus(const char* reason, OverloadState state) const;
  void PublishStateLocked(OverloadState before, OverloadState after);

  const OverloadPolicy policy_;
  Metrics metrics_;

  mutable std::mutex mutex_;
  std::condition_variable capacity_cv_;
  LoadShedder shedder_;
  double inflight_cost_ = 0.0;
  /// Count of admitted-but-unreleased queries; the authoritative idleness
  /// test (inflight_cost_ can carry float residue after Refine).
  size_t inflight_queries_ = 0;
  size_t queued_ = 0;
};

/// Cheap pre-filter cost proxy: the expected number of Phase-1 candidates,
/// i.e. dataset density × the volume of the θ-region search box
/// Π_i 2·(δ + r_θ·√Σ_ii) (the RR search rectangle of filters.h, with the
/// engine's effective table-rounded r_θ). Clamped to [1, dataset size].
double EstimateQueryCost(const core::PrqEngine& engine,
                         const core::PrqQuery& query,
                         const core::PrqOptions& options,
                         double objects_per_unit_volume);

/// Objects per unit volume of the tree's bounding box (0 for an empty
/// tree); the density factor EstimateQueryCost expects. Computed once per
/// executor, not per query.
double DatasetDensity(const index::RStarTree& tree);

/// Parses the "retry_after_ms=<n>" hint out of a rejection status message;
/// returns `fallback` when absent. The README's backoff snippet uses this.
double RetryAfterSeconds(const Status& status, double fallback = 0.05);

}  // namespace gprq::exec

#endif  // GPRQ_EXEC_OVERLOAD_H_
