#include "exec/worker_pool.h"

#include <algorithm>
#include <utility>

namespace gprq::exec {

WorkerPool::WorkerPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

size_t WorkerPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t WorkerPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

uint64_t WorkerPool::dropped_exceptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_exceptions_;
}

void WorkerPool::WorkerLoop(size_t worker) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so a fan-out submitted just
      // before destruction still completes (its latch must reach zero).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      // Counted at dequeue so the tally is already visible to whatever the
      // task itself signals on completion (latches, counters).
      ++tasks_executed_;
    }
    try {
      task(worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++dropped_exceptions_;
    }
  }
}

}  // namespace gprq::exec
