#include "exec/worker_pool.h"

#include <algorithm>
#include <utility>

#include "fault/failpoint.h"

namespace gprq::exec {
namespace {

// Pool metric pointers, resolved once (registry lookup locks; the
// per-task path must not).
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Histogram* queue_wait_nanos;
  obs::Histogram* task_nanos;
  obs::Gauge* queue_depth;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return PoolMetrics{r.GetCounter("gprq.exec.tasks"),
                         r.GetHistogram("gprq.exec.queue_wait_nanos"),
                         r.GetHistogram("gprq.exec.task_nanos"),
                         r.GetGauge("gprq.exec.queue_depth")};
    }();
    return metrics;
  }
};

}  // namespace

WorkerPool::WorkerPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::Submit(Task task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Entry{std::move(task), Stopwatch()});
    depth = queue_.size();
  }
  // Maintained live at enqueue/dequeue so shedders and exporters see the
  // real-time depth without anyone polling Snapshot().
  if constexpr (obs::kEnabled) {
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(depth));
  }
  cv_.notify_one();
}

size_t WorkerPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t WorkerPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

uint64_t WorkerPool::dropped_exceptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_exceptions_;
}

void WorkerPool::WorkerLoop(size_t worker) {
  for (;;) {
    Entry entry;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so a fan-out submitted just
      // before destruction still completes (its latch must reach zero).
      if (queue_.empty()) return;
      entry = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
      // Counted at dequeue so the tally is already visible to whatever the
      // task itself signals on completion (latches, counters).
      ++tasks_executed_;
    }
    if constexpr (obs::kEnabled) {
      PoolMetrics::Get().queue_depth->Set(static_cast<double>(depth));
    }
    // Latency-only site: injected delay models a slow/preempted worker
    // (the way deadlines fire mid-fan-out in tests). The task always runs —
    // a dispatch loop has no channel to surface an injected *error*, so arm
    // this site with delay(...) only.
    (void)GPRQ_FAILPOINT("exec.worker_pool.task");
    if constexpr (obs::kEnabled) {
      const PoolMetrics& metrics = PoolMetrics::Get();
      metrics.tasks->Add(1);
      metrics.queue_wait_nanos->Record(entry.queued.ElapsedNanos());
      ScopedTimer service_timer(metrics.task_nanos);
      try {
        entry.task(worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++dropped_exceptions_;
      }
    } else {
      try {
        entry.task(worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++dropped_exceptions_;
      }
    }
  }
}

}  // namespace gprq::exec
