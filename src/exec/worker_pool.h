#ifndef GPRQ_EXEC_WORKER_POOL_H_
#define GPRQ_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace gprq::exec {

/// Counts a group of pool tasks down to zero so the submitting thread can
/// block until every task of a fan-out has finished. A fresh latch is used
/// per fan-out; it is not reusable after Wait() returns.
class CountdownLatch {
 public:
  explicit CountdownLatch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t count_;
};

/// A fixed-size pool of long-lived worker threads fed by a condition-variable
/// task queue. Threads are created once at construction and joined at
/// destruction; submitting work never constructs a thread, which is the point:
/// the per-query Phase-3 fan-out must not pay thread setup cost on every
/// query (paper Section V-B puts >= 97% of query time in Phase 3, so the
/// engine's steady state is a continuous stream of integration tasks).
///
/// Each task receives the index of the worker executing it (0 <=
/// worker < num_workers()). A worker runs one task at a time, so any state
/// indexed by that worker slot — notably the BatchExecutor's per-worker
/// evaluators — is accessed by at most one thread at once without locking.
///
/// Tasks must not throw: the pool catches and counts stray exceptions (see
/// dropped_exceptions()) to keep a throwing task from calling
/// std::terminate, but it cannot report them meaningfully — callers that
/// care (the BatchExecutor does) wrap their task bodies and surface errors
/// as Status.
///
/// Every task is measured into the global metric registry: the time it sat
/// in the queue (`gprq.exec.queue_wait_nanos` — the backpressure signal a
/// load shedder watches; exec::LoadShedder is that shedder) and the time a
/// worker spent running it (`gprq.exec.task_nanos`), plus a
/// `gprq.exec.tasks` counter and a live `gprq.exec.queue_depth` gauge
/// updated at enqueue/dequeue. With GPRQ_OBS_DISABLED the timing code
/// compiles out entirely.
class WorkerPool {
 public:
  using Task = std::function<void(size_t worker)>;

  /// Starts `num_threads` workers (at least 1).
  explicit WorkerPool(size_t num_threads);

  /// Drains the queue, then stops and joins every worker. Already-queued
  /// tasks run to completion; nothing is discarded.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task; one idle worker wakes to run it.
  void Submit(Task task);

  /// Number of worker threads (fixed for the pool's lifetime).
  size_t num_workers() const { return threads_.size(); }

  /// Tasks enqueued but not yet picked up by a worker — the backlog a load
  /// shedder or autoscaler would watch.
  size_t QueueDepth() const;

  /// Tasks dequeued for execution since construction.
  uint64_t tasks_executed() const;

  /// Exceptions that escaped task bodies and were swallowed by the pool.
  /// Nonzero means a caller failed to wrap its task body; the BatchExecutor
  /// path always reports errors through Status instead.
  uint64_t dropped_exceptions() const;

 private:
  /// A queued task plus the stopwatch started at enqueue, so the dequeuing
  /// worker can attribute the wait to the queue histogram.
  struct Entry {
    Task task;
    Stopwatch queued;
  };

  void WorkerLoop(size_t worker);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool stopping_ = false;
  uint64_t tasks_executed_ = 0;
  uint64_t dropped_exceptions_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace gprq::exec

#endif  // GPRQ_EXEC_WORKER_POOL_H_
