#include "fault/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"

namespace gprq::fault {
namespace {

struct FaultMetrics {
  obs::Counter* injected_errors;
  obs::Counter* injected_delays;

  static const FaultMetrics& Get() {
    static const FaultMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return FaultMetrics{r.GetCounter("gprq.fault.injected_errors"),
                          r.GetCounter("gprq.fault.injected_delays")};
    }();
    return metrics;
  }
};

// splitmix64: enough for reproducible probability draws without pulling the
// sampling RNG (and its stream semantics) into the fault layer.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

bool ParseCode(const std::string& name, StatusCode* code) {
  if (name == "io") {
    *code = StatusCode::kIoError;
  } else if (name == "internal") {
    *code = StatusCode::kInternal;
  } else if (name == "notfound") {
    *code = StatusCode::kNotFound;
  } else if (name == "invalid") {
    *code = StatusCode::kInvalidArgument;
  } else {
    return false;
  }
  return true;
}

}  // namespace

struct FailpointRegistry::Failpoint {
  explicit Failpoint(FailpointConfig c)
      : config(std::move(c)), rng_state(config.seed) {}

  const FailpointConfig config;

  std::mutex mutex;  // guards the mutable trigger state below
  uint64_t rng_state;
  uint64_t evaluations = 0;
  uint64_t triggers = 0;

  // Decides whether this evaluation triggers and advances the counters.
  bool Trigger() {
    std::lock_guard<std::mutex> lock(mutex);
    const uint64_t index = evaluations++;
    if (index < config.skip) return false;
    if (config.max_triggers >= 0 &&
        triggers >= static_cast<uint64_t>(config.max_triggers)) {
      return false;
    }
    if (config.probability < 1.0) {
      rng_state = Mix64(rng_state);
      const double draw =
          static_cast<double>(rng_state >> 11) * 0x1.0p-53;  // [0, 1)
      if (draw >= config.probability) return false;
    }
    ++triggers;
    return true;
  }
};

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& site, FailpointConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[site] = std::make_shared<Failpoint>(std::move(config));
  armed_count_.store(sites_.size(), std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  armed_count_.store(sites_.size(), std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

Status FailpointRegistry::Evaluate(const char* site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();
  std::shared_ptr<Failpoint> fp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    fp = it->second;
  }
  if (!fp->Trigger()) return Status::OK();
  if (fp->config.latency_micros > 0) {
    FaultMetrics::Get().injected_delays->Add(1);
    std::this_thread::sleep_for(
        std::chrono::microseconds(fp->config.latency_micros));
  }
  if (!fp->config.fail) return Status::OK();
  FaultMetrics::Get().injected_errors->Add(1);
  std::string message = "failpoint '" + std::string(site) + "' injected";
  if (!fp->config.message.empty()) message += ": " + fp->config.message;
  return Status(fp->config.code, std::move(message));
}

FailpointStats FailpointRegistry::Stats(const std::string& site) const {
  std::shared_ptr<Failpoint> fp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return {};
    fp = it->second;
  }
  std::lock_guard<std::mutex> lock(fp->mutex);
  return {fp->evaluations, fp->triggers};
}

std::vector<std::string> FailpointRegistry::Armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, fp] : sites_) names.push_back(name);
  return names;
}

Status FailpointRegistry::ArmFromSpec(const std::string& spec) {
  // Parse everything first; arm only if the whole spec is well-formed.
  std::vector<std::pair<std::string, FailpointConfig>> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string entry = Trim(spec.substr(pos, sep - pos));
    pos = sep + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint spec entry missing '=': " +
                                     entry);
    }
    const std::string site = Trim(entry.substr(0, eq));
    const std::string action = Trim(entry.substr(eq + 1));
    const size_t open = action.find('(');
    if (site.empty() || open == std::string::npos || action.back() != ')') {
      return Status::InvalidArgument("malformed failpoint spec entry: " +
                                     entry);
    }
    const std::string kind = Trim(action.substr(0, open));
    const std::string body =
        action.substr(open + 1, action.size() - open - 2);

    FailpointConfig config;
    bool first_arg = true;
    size_t apos = 0;
    while (apos <= body.size()) {
      size_t comma = body.find(',', apos);
      if (comma == std::string::npos) comma = body.size();
      const std::string arg = Trim(body.substr(apos, comma - apos));
      apos = comma + 1;
      if (arg.empty()) continue;
      if (first_arg && arg.find('=') == std::string::npos) {
        first_arg = false;
        if (kind == "error") {
          if (!ParseCode(arg, &config.code)) {
            return Status::InvalidArgument("unknown failpoint error code: " +
                                           arg);
          }
        } else if (kind == "delay") {
          config.latency_micros = std::strtoull(arg.c_str(), nullptr, 10);
        } else {
          return Status::InvalidArgument("unknown failpoint action: " + kind);
        }
        continue;
      }
      first_arg = false;
      const size_t aeq = arg.find('=');
      if (aeq == std::string::npos) {
        return Status::InvalidArgument("malformed failpoint arg: " + arg);
      }
      const std::string key = Trim(arg.substr(0, aeq));
      const std::string value = Trim(arg.substr(aeq + 1));
      if (key == "p") {
        config.probability = std::strtod(value.c_str(), nullptr);
      } else if (key == "skip") {
        config.skip = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "max") {
        config.max_triggers = std::strtoll(value.c_str(), nullptr, 10);
      } else if (key == "seed") {
        config.seed = std::strtoull(value.c_str(), nullptr, 10);
      } else {
        return Status::InvalidArgument("unknown failpoint arg: " + key);
      }
    }
    if (kind == "delay") {
      config.fail = false;
      if (config.latency_micros == 0) {
        return Status::InvalidArgument("delay() needs a duration: " + entry);
      }
    } else if (kind != "error") {
      return Status::InvalidArgument("unknown failpoint action: " + kind);
    }
    parsed.emplace_back(site, std::move(config));
  }

  for (auto& [site, config] : parsed) Arm(site, std::move(config));
  return Status::OK();
}

Status FailpointRegistry::ArmFromEnv(const char* variable) {
  const char* value = std::getenv(variable);
  if (value == nullptr || value[0] == '\0') return Status::OK();
  return ArmFromSpec(value);
}

std::vector<std::string> KnownSites() {
  // Keep sorted; update when adding a GPRQ_FAILPOINT call site.
  return {
      "exec.batch_executor.chunk",
      "exec.worker_pool.task",
      "index.buffer_pool.get",
      "index.page_file.read",
      "index.page_file.write",
      "net.server.read",
      "net.server.write",
      "remote.rpc.recv",
      "remote.rpc.send",
      "storage.checkpoint.write",
      "storage.wal.append",
      "storage.wal.fsync",
  };
}

}  // namespace gprq::fault
