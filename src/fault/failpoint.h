#ifndef GPRQ_FAULT_FAILPOINT_H_
#define GPRQ_FAULT_FAILPOINT_H_

// Deterministic fault injection for the serving path. A *failpoint* is a
// named site in production code (page reads, buffer-pool faults, worker
// dispatch) that normally does nothing; tests and chaos runs *arm* it with
// an error and/or a latency to exercise failure paths that real hardware
// only produces rarely and never reproducibly. This is the only way to
// deterministically cover the retry, degradation and error-propagation
// code the fault/deadline test battery asserts on.
//
// Site naming scheme: `<layer>.<component>.<operation>`, lowercase and
// dot-separated, mirroring the obs metric names — e.g.
// `index.page_file.read`, `index.buffer_pool.get`,
// `exec.worker_pool.task`, `exec.batch_executor.chunk`.
//
// Cost contract: the disarmed path is one relaxed atomic load (the global
// armed count) — no locks, no map lookups. Compiling with
// GPRQ_FAULT_DISABLED (CMake -DGPRQ_FAULT=OFF) turns the GPRQ_FAILPOINT
// macro into a constant OK status, so an injection site costs literally
// nothing; the registry API keeps working but nothing evaluates it.
//
// Armed sites report `gprq.fault.injected_errors` / `.injected_delays`
// to the obs registry so chaos experiments are observable.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace gprq::fault {

#ifdef GPRQ_FAULT_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// What an armed failpoint does when an evaluation triggers it.
struct FailpointConfig {
  /// Error injected when `fail` is true.
  StatusCode code = StatusCode::kIoError;
  /// Optional message detail; the injected status always names the site.
  std::string message;
  /// Chance each evaluation triggers, in [0, 1]. 1.0 (the default) makes
  /// tests deterministic; fractional values are drawn from a dedicated
  /// seeded PRNG so a chaos run is still reproducible.
  double probability = 1.0;
  /// First `skip` evaluations never trigger (count-triggered injection:
  /// "fail the 3rd read").
  uint64_t skip = 0;
  /// Stop triggering after this many triggers; -1 = unlimited. `1` models
  /// a transient fault (fail once, then recover) — the retry tests' case.
  int64_t max_triggers = -1;
  /// Sleep this long on trigger, before any error is returned. Latency
  /// injection is how the deadline tests make Phase 3 slow on demand.
  uint64_t latency_micros = 0;
  /// When false the trigger only sleeps (latency-only injection).
  bool fail = true;
  /// Seed for fractional-probability draws.
  uint64_t seed = 0x5DEECE66DULL;
};

/// Cumulative per-site counters (monotonic since Arm).
struct FailpointStats {
  uint64_t evaluations = 0;
  uint64_t triggers = 0;
};

/// Process-wide registry of armed failpoints. Thread-safe: Evaluate may be
/// called from any worker; Arm/Disarm are test-thread operations that
/// take effect on the next evaluation.
class FailpointRegistry {
 public:
  /// The registry every GPRQ_FAILPOINT site evaluates against.
  /// Intentionally leaked, like obs::MetricRegistry::Global — injection
  /// sites may run during static destruction.
  static FailpointRegistry& Global();

  /// Arms (or re-arms, resetting counters) the named site.
  void Arm(const std::string& site, FailpointConfig config);

  /// Disarms one site; evaluations of it return OK again.
  void Disarm(const std::string& site);

  /// Disarms everything — test teardown.
  void DisarmAll();

  /// Called by injection sites (via GPRQ_FAILPOINT). Returns OK unless the
  /// site is armed and this evaluation triggers, in which case the
  /// configured latency is applied and (when `fail`) the configured error
  /// is returned.
  Status Evaluate(const char* site);

  /// Counters for a site; zeros when it was never armed.
  FailpointStats Stats(const std::string& site) const;

  /// Names of currently armed sites, sorted.
  std::vector<std::string> Armed() const;

  /// Arms failpoints from a spec string:
  ///   site=error(io)            inject kIoError, always
  ///   site=error(internal,p=0.5,skip=2,max=1)
  ///   site=delay(500)           sleep 500 us, no error
  ///   site=delay(500,max=3)
  /// Multiple entries separated by ';'. Codes: io, internal, notfound,
  /// unavailable is not a code here — see status.h. Fails without arming
  /// anything on a malformed spec.
  Status ArmFromSpec(const std::string& spec);

  /// Arms from the environment (default GPRQ_FAILPOINTS); a missing or
  /// empty variable is OK. This is how a chaos run configures a stock
  /// binary.
  Status ArmFromEnv(const char* variable = "GPRQ_FAILPOINTS");

 private:
  struct Failpoint;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Failpoint>> sites_;
  // Fast disarmed-path check: number of armed sites. Relaxed is fine —
  // arming is ordered by the mutex, and a stale zero only delays the first
  // injection by one evaluation.
  std::atomic<uint64_t> armed_count_{0};
};

/// The injection sites compiled into this binary, sorted — the list a
/// `gprq_cli list-failpoints` dump shows operators so they can arm sites
/// (GPRQ_FAILPOINTS / ArmFromSpec) without reading the sources. Maintained
/// by hand next to the GPRQ_FAILPOINT call sites; a new site belongs both
/// places. Returned even when the subsystem is compiled out (the sites
/// exist in the sources; arming them just does nothing).
std::vector<std::string> KnownSites();

}  // namespace gprq::fault

/// Evaluates a failpoint site; expands to a constant OK status when the
/// fault subsystem is compiled out. Use as:
///   GPRQ_RETURN_NOT_OK(GPRQ_FAILPOINT("index.page_file.read"));
#ifdef GPRQ_FAULT_DISABLED
#define GPRQ_FAILPOINT(site) ::gprq::Status::OK()
#else
#define GPRQ_FAILPOINT(site) \
  ::gprq::fault::FailpointRegistry::Global().Evaluate(site)
#endif

#endif  // GPRQ_FAULT_FAILPOINT_H_
