#include "geom/ellipsoid.h"

#include <cassert>
#include <cmath>

namespace gprq::geom {

Result<Ellipsoid> Ellipsoid::Create(la::Vector center, const la::Matrix& shape,
                                    double radius) {
  if (radius < 0.0) {
    return Status::InvalidArgument("ellipsoid radius must be >= 0");
  }
  if (shape.rows() != center.dim() || shape.cols() != center.dim()) {
    return Status::InvalidArgument("shape matrix must be d x d");
  }
  auto chol = la::Cholesky::Factor(shape);
  if (!chol.ok()) return chol.status();
  auto eigen = la::DecomposeSymmetric(shape);
  if (!eigen.ok()) return eigen.status();
  const size_t d = center.dim();
  la::Vector scales(d);
  for (size_t i = 0; i < d; ++i) {
    const double ev = eigen->eigenvalues[i];
    if (ev <= 0.0) {
      return Status::NumericalError("shape matrix has non-positive eigenvalue");
    }
    scales[i] = std::sqrt(ev);
  }
  return Ellipsoid(std::move(center), radius, std::move(*chol),
                   std::move(scales), std::move(eigen->eigenvectors));
}

double Ellipsoid::MahalanobisDistance(const la::Vector& point) const {
  assert(point.dim() == dim());
  return std::sqrt(chol_.InverseQuadraticForm(point - center_));
}

bool Ellipsoid::Contains(const la::Vector& point) const {
  return MahalanobisDistance(point) <= radius_;
}

Rect Ellipsoid::BoundingBox() const {
  la::Vector half(dim());
  const la::Matrix& l = chol_.lower();
  for (size_t i = 0; i < dim(); ++i) {
    // Σ_ii = Σ_k L_ik², read off the Cholesky factor.
    double var = 0.0;
    for (size_t k = 0; k <= i; ++k) var += l(i, k) * l(i, k);
    half[i] = std::sqrt(var) * radius_;
  }
  return Rect::Centered(center_, half);
}

la::Vector Ellipsoid::ToEigenFrame(const la::Vector& point) const {
  assert(point.dim() == dim());
  const la::Vector shifted = point - center_;
  la::Vector y(dim());
  for (size_t j = 0; j < dim(); ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < dim(); ++i) sum += eigen_basis_(i, j) * shifted[i];
    y[j] = sum;
  }
  return y;
}

la::Vector Ellipsoid::EigenFrameHalfWidths(double margin) const {
  assert(margin >= 0.0);
  la::Vector half(dim());
  for (size_t i = 0; i < dim(); ++i) {
    half[i] = axis_scales_[i] * radius_ + margin;
  }
  return half;
}

}  // namespace gprq::geom
