#ifndef GPRQ_GEOM_ELLIPSOID_H_
#define GPRQ_GEOM_ELLIPSOID_H_

#include "common/status.h"
#include "geom/rect.h"
#include "la/cholesky.h"
#include "la/eigen_sym.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace gprq::geom {

/// The ellipsoid (x − q)ᵀ Σ⁻¹ (x − q) <= r² for a symmetric
/// positive-definite Σ. With r = r_θ this is exactly the paper's θ-region
/// (Definition 3); the class also provides the two enclosing boxes the RR
/// and OR strategies build from it.
class Ellipsoid {
 public:
  /// Builds the ellipsoid; fails if `shape` (the Σ of the quadratic form)
  /// is not symmetric positive-definite, or radius < 0.
  static Result<Ellipsoid> Create(la::Vector center, const la::Matrix& shape,
                                  double radius);

  size_t dim() const { return center_.dim(); }
  const la::Vector& center() const { return center_; }
  double radius() const { return radius_; }

  /// Mahalanobis distance sqrt((x−q)ᵀ Σ⁻¹ (x−q)).
  double MahalanobisDistance(const la::Vector& point) const;

  bool Contains(const la::Vector& point) const;

  /// The tight axis-aligned bounding box: half-width w_i = σ_i · r with
  /// σ_i = sqrt(Σ_ii) (Property 2, via the Ankerst et al. bound).
  Rect BoundingBox() const;

  /// Rotates a point into the ellipsoid's eigen frame: y = Eᵀ (x − q),
  /// where the columns of E are the unit eigenvectors of Σ. In this frame
  /// the ellipsoid is axis-aligned with semi-axes s_i · r (Property 3).
  la::Vector ToEigenFrame(const la::Vector& point) const;

  /// Semi-axis lengths s_i · r in the eigen frame, ascending in s_i; with an
  /// additional `margin` this is the paper's oblique filter box (Fig. 7:
  /// |y_i| <= r/√λ_i + δ, where λ_i are the eigenvalues of Σ⁻¹ so
  /// 1/√λ_i = s_i).
  la::Vector EigenFrameHalfWidths(double margin = 0.0) const;

  /// sqrt of the eigenvalues of Σ, ascending (the semi-axes per unit r).
  const la::Vector& axis_scales() const { return axis_scales_; }

  /// The eigenvector basis E (columns, matching axis_scales order).
  const la::Matrix& eigen_basis() const { return eigen_basis_; }

 private:
  Ellipsoid(la::Vector center, double radius, la::Cholesky chol,
            la::Vector axis_scales, la::Matrix eigen_basis)
      : center_(std::move(center)),
        radius_(radius),
        chol_(std::move(chol)),
        axis_scales_(std::move(axis_scales)),
        eigen_basis_(std::move(eigen_basis)) {}

  la::Vector center_;
  double radius_;
  la::Cholesky chol_;        // factor of Σ, for Mahalanobis distances
  la::Vector axis_scales_;   // s_i = sqrt(eigenvalue_i(Σ)), ascending
  la::Matrix eigen_basis_;   // columns: eigenvectors of Σ
};

}  // namespace gprq::geom

#endif  // GPRQ_GEOM_ELLIPSOID_H_
