#include "geom/rect.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace gprq::geom {

Rect::Rect(la::Vector lo, la::Vector hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  assert(lo_.dim() == hi_.dim());
#ifndef NDEBUG
  for (size_t i = 0; i < lo_.dim(); ++i) assert(lo_[i] <= hi_[i]);
#endif
}

Rect Rect::Empty(size_t dim) {
  Rect r;
  r.lo_ = la::Vector(dim, std::numeric_limits<double>::infinity());
  r.hi_ = la::Vector(dim, -std::numeric_limits<double>::infinity());
  return r;
}

Rect Rect::Centered(const la::Vector& center, const la::Vector& half_widths) {
  assert(center.dim() == half_widths.dim());
  la::Vector lo(center.dim());
  la::Vector hi(center.dim());
  for (size_t i = 0; i < center.dim(); ++i) {
    assert(half_widths[i] >= 0.0);
    lo[i] = center[i] - half_widths[i];
    hi[i] = center[i] + half_widths[i];
  }
  return Rect(std::move(lo), std::move(hi));
}

Rect Rect::CenteredUniform(const la::Vector& center, double half_width) {
  return Centered(center, la::Vector(center.dim(), half_width));
}

bool Rect::IsEmpty() const {
  for (size_t i = 0; i < dim(); ++i)
    if (lo_[i] > hi_[i]) return true;
  return dim() == 0;
}

bool Rect::Contains(const la::Vector& point) const {
  assert(point.dim() == dim());
  for (size_t i = 0; i < dim(); ++i)
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  return true;
}

bool Rect::Contains(const Rect& other) const {
  assert(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i)
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  assert(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i)
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  return true;
}

void Rect::ExpandToInclude(const la::Vector& point) {
  assert(point.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], point[i]);
    hi_[i] = std::max(hi_[i], point[i]);
  }
}

void Rect::ExpandToInclude(const Rect& other) {
  assert(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

Rect Rect::Inflated(double margin) const {
  assert(margin >= 0.0);
  la::Vector lo = lo_;
  la::Vector hi = hi_;
  for (size_t i = 0; i < dim(); ++i) {
    lo[i] -= margin;
    hi[i] += margin;
  }
  return Rect(std::move(lo), std::move(hi));
}

double Rect::Volume() const {
  double volume = 1.0;
  for (size_t i = 0; i < dim(); ++i) {
    const double side = hi_[i] - lo_[i];
    if (side < 0.0) return 0.0;
    volume *= side;
  }
  return volume;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (size_t i = 0; i < dim(); ++i) margin += std::max(0.0, hi_[i] - lo_[i]);
  return margin;
}

double Rect::IntersectionVolume(const Rect& other) const {
  assert(other.dim() == dim());
  double volume = 1.0;
  for (size_t i = 0; i < dim(); ++i) {
    const double side = std::min(hi_[i], other.hi_[i]) -
                        std::max(lo_[i], other.lo_[i]);
    if (side <= 0.0) return 0.0;
    volume *= side;
  }
  return volume;
}

double Rect::Enlargement(const Rect& other) const {
  return Union(*this, other).Volume() - Volume();
}

la::Vector Rect::Center() const {
  la::Vector center(dim());
  for (size_t i = 0; i < dim(); ++i) center[i] = 0.5 * (lo_[i] + hi_[i]);
  return center;
}

double Rect::MinSquaredDistance(const la::Vector& point) const {
  assert(point.dim() == dim());
  double sum = 0.0;
  for (size_t i = 0; i < dim(); ++i) {
    double diff = 0.0;
    if (point[i] < lo_[i]) {
      diff = lo_[i] - point[i];
    } else if (point[i] > hi_[i]) {
      diff = point[i] - hi_[i];
    }
    sum += diff * diff;
  }
  return sum;
}

Rect Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.ExpandToInclude(b);
  return out;
}

}  // namespace gprq::geom
