#ifndef GPRQ_GEOM_RECT_H_
#define GPRQ_GEOM_RECT_H_

#include <cstddef>

#include "la/vector.h"

namespace gprq::geom {

/// An axis-aligned d-dimensional rectangle (hyper-box / MBR), the basic
/// geometric object of the R*-tree and of the paper's rectilinear search
/// regions (Figs. 2 and 4).
class Rect {
 public:
  Rect() = default;

  /// A degenerate rectangle covering exactly one point.
  explicit Rect(const la::Vector& point) : lo_(point), hi_(point) {}

  /// Corners must satisfy lo[i] <= hi[i]; asserted in debug builds.
  Rect(la::Vector lo, la::Vector hi);

  /// The "empty" rectangle of a given dimension: lo = +inf, hi = −inf, the
  /// identity of ExpandToInclude.
  static Rect Empty(size_t dim);

  /// A box centered at `center` with per-dimension half-widths.
  static Rect Centered(const la::Vector& center,
                       const la::Vector& half_widths);

  /// A box centered at `center` with a single half-width in all dimensions.
  static Rect CenteredUniform(const la::Vector& center, double half_width);

  size_t dim() const { return lo_.dim(); }
  const la::Vector& lo() const { return lo_; }
  const la::Vector& hi() const { return hi_; }

  bool IsEmpty() const;

  bool Contains(const la::Vector& point) const;
  bool Contains(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  /// Grows this rectangle (in place) to include a point / another rectangle.
  void ExpandToInclude(const la::Vector& point);
  void ExpandToInclude(const Rect& other);

  /// Returns this rectangle expanded by `margin` on every side — the
  /// bounding box of the Minkowski sum with a ball of radius `margin`.
  Rect Inflated(double margin) const;

  /// Product of side lengths (the R*-tree "area").
  double Volume() const;

  /// Sum of side lengths (the R*-tree "margin", up to a factor 2^{d-1}).
  double Margin() const;

  /// Volume of the intersection with `other` (0 when disjoint).
  double IntersectionVolume(const Rect& other) const;

  /// Volume increase needed to include `other`.
  double Enlargement(const Rect& other) const;

  la::Vector Center() const;

  /// Squared Euclidean distance from `point` to the closest point of the
  /// rectangle; 0 if inside. This is the R-tree MINDIST, and also the test
  /// behind the generalized fringe filter: a point lies in the Minkowski sum
  /// of the box with a δ-ball iff this distance is <= δ².
  double MinSquaredDistance(const la::Vector& point) const;

  bool operator==(const Rect& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  la::Vector lo_;
  la::Vector hi_;
};

/// The smallest rectangle covering both arguments.
Rect Union(const Rect& a, const Rect& b);

}  // namespace gprq::geom

#endif  // GPRQ_GEOM_RECT_H_
