#include "index/buffer_pool.h"

#include <cassert>

#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace gprq::index {
namespace {

// Process-wide pool counters (`gprq.index.buffer_pool.*`), resolved once.
// Every BufferPool instance feeds the same counters; the per-instance
// Stats struct remains the per-pool view.
struct PoolCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;

  static const PoolCounters& Get() {
    static const PoolCounters counters = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return PoolCounters{r.GetCounter("gprq.index.buffer_pool.hits"),
                          r.GetCounter("gprq.index.buffer_pool.misses"),
                          r.GetCounter("gprq.index.buffer_pool.evictions")};
    }();
    return counters;
  }
};

}  // namespace

BufferPool::BufferPool(const PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity) {
  assert(file_ != nullptr);
  assert(capacity_ >= 1);
}

Result<const uint8_t*> BufferPool::GetPage(PageId id) {
  // Before the hit lookup: an armed fault here hits cached pages too,
  // modeling a failing pool (frame corruption, allocation failure) rather
  // than failing media — that one is `index.page_file.read`.
  GPRQ_RETURN_NOT_OK(GPRQ_FAILPOINT("index.buffer_pool.get"));
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    PoolCounters::Get().hits->Add(1);
    // Move to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    return static_cast<const uint8_t*>(it->second->data.data());
  }

  ++stats_.misses;
  PoolCounters::Get().misses->Add(1);
  Frame frame;
  frame.id = id;
  GPRQ_RETURN_NOT_OK(file_->ReadPage(id, &frame.data));

  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
    ++stats_.evictions;
    PoolCounters::Get().evictions->Add(1);
  }
  lru_.push_front(std::move(frame));
  index_[id] = lru_.begin();
  return static_cast<const uint8_t*>(lru_.front().data.data());
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace gprq::index
