#ifndef GPRQ_INDEX_BUFFER_POOL_H_
#define GPRQ_INDEX_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/page_file.h"

namespace gprq::index {

/// An LRU page cache in front of a PageFile. Read-only (the snapshot reader
/// never mutates pages), which keeps the pool simple: no dirty pages, no
/// write-back, eviction is just a drop.
///
/// Cache hits/misses are counted so benches can report logical vs physical
/// I/O — the classic spatial-index cost model the paper's "node accesses"
/// stand in for.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` is the maximum number of cached pages (>= 1).
  BufferPool(const PageFile* file, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pointer to the cached contents of `id` (valid until the
  /// next GetPage call), faulting it in from the file if needed.
  Result<const uint8_t*> GetPage(PageId id);

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const { return lru_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Drops every cached page (simulates a cold cache).
  void Clear();

 private:
  struct Frame {
    PageId id;
    std::vector<uint8_t> data;
  };

  const PageFile* file_;
  size_t capacity_;
  std::list<Frame> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  Stats stats_;
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_BUFFER_POOL_H_
