#include "index/dataset_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

namespace gprq::index {
namespace {

// Fixed-size prefix of the header, before the per-dimension bounds.
struct HeaderPrefix {
  uint64_t magic;
  uint32_t version;
  uint32_t dim;
  uint64_t count;
  uint64_t reserved;
};
static_assert(sizeof(HeaderPrefix) == 32, "header prefix layout");

size_t HeaderBytes(size_t dim) {
  // Prefix + lo[dim] + hi[dim], padded so the point block starts on a page
  // boundary (mmap'd rows stay 8-aligned for any dim, and sequential scans
  // walk whole pages).
  const size_t raw = sizeof(HeaderPrefix) + 2 * dim * sizeof(double);
  return (raw + kDatasetPointAlignment - 1) / kDatasetPointAlignment *
         kDatasetPointAlignment;
}

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

DatasetFileWriter::DatasetFileWriter(std::FILE* file, size_t dim)
    : file_(file), dim_(dim), bounds_(geom::Rect::Empty(dim)) {}

DatasetFileWriter::DatasetFileWriter(DatasetFileWriter&& other) noexcept
    : file_(other.file_),
      dim_(other.dim_),
      count_(other.count_),
      bounds_(std::move(other.bounds_)) {
  other.file_ = nullptr;
}

DatasetFileWriter& DatasetFileWriter::operator=(
    DatasetFileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    dim_ = other.dim_;
    count_ = other.count_;
    bounds_ = std::move(other.bounds_);
    other.file_ = nullptr;
  }
  return *this;
}

DatasetFileWriter::~DatasetFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<DatasetFileWriter> DatasetFileWriter::Create(const std::string& path,
                                                    size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dataset dim must be >= 1");
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) return ErrnoError("cannot create dataset file", path);

  // Write a count = 0 header up front; Finish() patches it. A crash mid
  // write therefore leaves a *valid empty* file, never a header whose count
  // promises rows the file does not have.
  const size_t header_bytes = HeaderBytes(dim);
  std::vector<unsigned char> header(header_bytes, 0);
  HeaderPrefix prefix{kDatasetMagic, kDatasetVersion,
                      static_cast<uint32_t>(dim), 0, 0};
  std::memcpy(header.data(), &prefix, sizeof(prefix));
  if (std::fwrite(header.data(), 1, header_bytes, file) != header_bytes) {
    std::fclose(file);
    return ErrnoError("cannot write dataset header", path);
  }
  return DatasetFileWriter(file, dim);
}

Status DatasetFileWriter::Append(const double* row) {
  if (file_ == nullptr) {
    return Status::InvalidArgument("dataset writer is closed");
  }
  if (std::fwrite(row, sizeof(double), dim_, file_) != dim_) {
    return Status::IoError("short write appending dataset row");
  }
  bounds_.ExpandToInclude(la::Vector(std::vector<double>(row, row + dim_)));
  ++count_;
  return Status::OK();
}

Status DatasetFileWriter::Append(const la::Vector& point) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("dataset row dimension mismatch");
  }
  return Append(point.data());
}

Status DatasetFileWriter::Finish() {
  if (file_ == nullptr) return Status::OK();
  HeaderPrefix prefix{kDatasetMagic, kDatasetVersion,
                      static_cast<uint32_t>(dim_), count_, 0};
  std::vector<double> corners(2 * dim_, 0.0);
  if (count_ > 0) {
    for (size_t a = 0; a < dim_; ++a) {
      corners[a] = bounds_.lo()[a];
      corners[dim_ + a] = bounds_.hi()[a];
    }
  }
  bool ok = std::fseek(file_, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(&prefix, sizeof(prefix), 1, file_) == 1;
  ok = ok && std::fwrite(corners.data(), sizeof(double), corners.size(),
                         file_) == corners.size();
  ok = ok && std::fflush(file_) == 0;
  const int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (!ok || close_rc != 0) {
    return Status::IoError("failed to finalize dataset header");
  }
  return Status::OK();
}

MmapDataset::MmapDataset(MmapDataset&& other) noexcept
    : mapping_(other.mapping_),
      mapping_bytes_(other.mapping_bytes_),
      points_(other.points_),
      dim_(other.dim_),
      count_(other.count_),
      bounds_(std::move(other.bounds_)) {
  other.mapping_ = nullptr;
  other.points_ = nullptr;
}

MmapDataset& MmapDataset::operator=(MmapDataset&& other) noexcept {
  if (this != &other) {
    Reset();
    mapping_ = other.mapping_;
    mapping_bytes_ = other.mapping_bytes_;
    points_ = other.points_;
    dim_ = other.dim_;
    count_ = other.count_;
    bounds_ = std::move(other.bounds_);
    other.mapping_ = nullptr;
    other.points_ = nullptr;
  }
  return *this;
}

MmapDataset::~MmapDataset() { Reset(); }

void MmapDataset::Reset() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapping_bytes_);
    mapping_ = nullptr;
  }
  points_ = nullptr;
}

Result<MmapDataset> MmapDataset::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("cannot open dataset file", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("cannot stat dataset file", path);
    ::close(fd);
    return status;
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < sizeof(HeaderPrefix)) {
    ::close(fd);
    return Status::IoError("dataset file too small for a header: " + path);
  }
  void* mapping = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed either way.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return ErrnoError("cannot mmap dataset file", path);
  }

  MmapDataset dataset;
  dataset.mapping_ = mapping;
  dataset.mapping_bytes_ = file_bytes;

  HeaderPrefix prefix;
  std::memcpy(&prefix, mapping, sizeof(prefix));
  if (prefix.magic != kDatasetMagic) {
    return Status::IoError("not a GPRQ dataset file (bad magic): " + path);
  }
  if (prefix.version != kDatasetVersion) {
    return Status::IoError("unsupported dataset version in " + path);
  }
  if (prefix.dim == 0) {
    return Status::IoError("dataset file declares dim 0: " + path);
  }
  dataset.dim_ = prefix.dim;
  dataset.count_ = prefix.count;

  const size_t header_bytes = HeaderBytes(dataset.dim_);
  const uint64_t need =
      header_bytes + prefix.count * static_cast<uint64_t>(prefix.dim) *
                         sizeof(double);
  if (file_bytes < need) {
    return Status::IoError("dataset file truncated: " + path);
  }
  const double* corners = reinterpret_cast<const double*>(
      static_cast<const unsigned char*>(mapping) + sizeof(HeaderPrefix));
  if (prefix.count > 0) {
    la::Vector lo(dataset.dim_);
    la::Vector hi(dataset.dim_);
    for (size_t a = 0; a < dataset.dim_; ++a) {
      lo[a] = corners[a];
      hi[a] = corners[dataset.dim_ + a];
      if (!(lo[a] <= hi[a])) {
        return Status::IoError("dataset bounds corrupt in " + path);
      }
    }
    dataset.bounds_ = geom::Rect(std::move(lo), std::move(hi));
  } else {
    dataset.bounds_ = geom::Rect::Empty(dataset.dim_);
  }
  dataset.points_ = reinterpret_cast<const double*>(
      static_cast<const unsigned char*>(mapping) + header_bytes);
  return dataset;
}

la::Vector MmapDataset::PointVector(uint64_t i) const {
  const double* row = point(i);
  return la::Vector(std::vector<double>(row, row + dim_));
}

}  // namespace gprq::index
