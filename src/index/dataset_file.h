#ifndef GPRQ_INDEX_DATASET_FILE_H_
#define GPRQ_INDEX_DATASET_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"
#include "geom/rect.h"
#include "la/vector.h"

namespace gprq::index {

/// The GPRQ binary point-dataset format, built for out-of-core workloads
/// (10M+ points) where the CSV loader's parse-everything-into-RAM approach
/// stops scaling. Layout (host-endian, written and read on the same
/// machine class):
///
///   u64 magic ("GPRQDAT1")   u32 version   u32 dim
///   u64 count                u64 reserved (0)
///   f64 lo[dim]  f64 hi[dim]            -- dataset bounding box
///   f64 points[count][dim]              -- row-major, 4096-aligned start
///
/// The point block starts at a page boundary so an mmap'd reader hands out
/// naturally-aligned row pointers and the OS prefetches whole pages of
/// consecutive rows during STR sorting. The bounding box is stored so shard
/// planners can partition space without a pass over the data.
inline constexpr uint64_t kDatasetMagic = 0x3154414451525047ULL;  // "GPRQDAT1"
inline constexpr uint32_t kDatasetVersion = 1;
inline constexpr size_t kDatasetPointAlignment = 4096;

/// Streaming writer: rows are appended one at a time and never buffered as
/// a whole, so converting a 10M-point CSV needs O(dim) memory. Finish()
/// seeks back and patches the header with the final count and bounds.
class DatasetFileWriter {
 public:
  static Result<DatasetFileWriter> Create(const std::string& path,
                                          size_t dim);

  DatasetFileWriter(DatasetFileWriter&& other) noexcept;
  DatasetFileWriter& operator=(DatasetFileWriter&& other) noexcept;
  DatasetFileWriter(const DatasetFileWriter&) = delete;
  DatasetFileWriter& operator=(const DatasetFileWriter&) = delete;
  /// Destroying an unfinished writer closes the stream and leaves the file
  /// with count = 0 in its header — readers treat it as empty, not corrupt.
  ~DatasetFileWriter();

  /// Appends one row of dim() doubles.
  Status Append(const double* row);
  Status Append(const la::Vector& point);

  /// Patches the header (count, bounds) and closes the file. Idempotent.
  Status Finish();

  size_t dim() const { return dim_; }
  uint64_t count() const { return count_; }

 private:
  DatasetFileWriter(std::FILE* file, size_t dim);

  std::FILE* file_ = nullptr;
  size_t dim_ = 0;
  uint64_t count_ = 0;
  geom::Rect bounds_ = geom::Rect::Empty(0);
};

/// Read-only memory-mapped view of a dataset file. Opening maps the file
/// and validates the header; point(i) is a pointer into the mapping, so
/// iterating the dataset touches only the pages the access pattern needs —
/// the out-of-core STR shard build sorts *indices* and streams rows through
/// this view instead of materializing 10M la::Vectors.
class MmapDataset {
 public:
  static Result<MmapDataset> Open(const std::string& path);

  MmapDataset(MmapDataset&& other) noexcept;
  MmapDataset& operator=(MmapDataset&& other) noexcept;
  MmapDataset(const MmapDataset&) = delete;
  MmapDataset& operator=(const MmapDataset&) = delete;
  ~MmapDataset();

  size_t dim() const { return dim_; }
  uint64_t count() const { return count_; }
  /// The stored dataset bounding box (empty rect when count == 0).
  const geom::Rect& bounds() const { return bounds_; }

  /// Row i as a borrowed pointer to dim() doubles; valid while the dataset
  /// is open.
  const double* point(uint64_t i) const {
    return points_ + i * static_cast<uint64_t>(dim_);
  }

  /// Row i copied into an owned vector (for APIs that take la::Vector).
  la::Vector PointVector(uint64_t i) const;

 private:
  MmapDataset() = default;
  void Reset();

  void* mapping_ = nullptr;
  size_t mapping_bytes_ = 0;
  const double* points_ = nullptr;
  size_t dim_ = 0;
  uint64_t count_ = 0;
  geom::Rect bounds_ = geom::Rect::Empty(0);
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_DATASET_FILE_H_
