#include "index/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gprq::index {

namespace {

constexpr size_t kMaxCells = size_t{1} << 24;

}  // namespace

Result<UniformGridIndex> UniformGridIndex::Build(
    const std::vector<la::Vector>& points, size_t cells_per_dim) {
  if (points.empty()) {
    return Status::InvalidArgument("cannot build a grid over nothing");
  }
  if (cells_per_dim < 1) {
    return Status::InvalidArgument("cells_per_dim must be >= 1");
  }
  const size_t d = points.front().dim();
  double total_cells = 1.0;
  for (size_t i = 0; i < d; ++i) {
    total_cells *= static_cast<double>(cells_per_dim);
  }
  if (total_cells > static_cast<double>(kMaxCells)) {
    return Status::InvalidArgument(
        "grid too large; reduce cells_per_dim for this dimensionality");
  }

  geom::Rect bounds = geom::Rect::Empty(d);
  for (const auto& p : points) {
    if (p.dim() != d) {
      return Status::InvalidArgument("inconsistent point dimensions");
    }
    bounds.ExpandToInclude(p);
  }
  la::Vector lo = bounds.lo();
  la::Vector widths(d);
  for (size_t i = 0; i < d; ++i) {
    const double extent = bounds.hi()[i] - lo[i];
    widths[i] = (extent > 0.0) ? extent / static_cast<double>(cells_per_dim)
                               : 1.0;
  }

  std::vector<std::vector<std::pair<la::Vector, ObjectId>>> cells(
      static_cast<size_t>(total_cells));
  UniformGridIndex grid(std::move(lo), std::move(widths), cells_per_dim,
                        std::move(cells), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    size_t index = 0;
    for (size_t j = 0; j < d; ++j) {
      index = index * cells_per_dim + grid.CellOf(j, points[i][j]);
    }
    grid.cells_[index].emplace_back(points[i], static_cast<ObjectId>(i));
  }
  return grid;
}

size_t UniformGridIndex::CellOf(size_t dim_index, double coordinate) const {
  const double offset = (coordinate - lo_[dim_index]) / widths_[dim_index];
  const auto cell = static_cast<long>(std::floor(offset));
  return static_cast<size_t>(
      std::clamp<long>(cell, 0, static_cast<long>(cells_per_dim_) - 1));
}

void UniformGridIndex::RangeQuery(
    const geom::Rect& box,
    const std::function<void(const la::Vector&, ObjectId)>& visit) const {
  assert(box.dim() == dim());
  const size_t d = dim();
  std::vector<size_t> cell_lo(d), cell_hi(d), cell(d);
  for (size_t i = 0; i < d; ++i) {
    cell_lo[i] = CellOf(i, box.lo()[i]);
    cell_hi[i] = CellOf(i, box.hi()[i]);
    cell[i] = cell_lo[i];
  }
  for (;;) {
    size_t index = 0;
    for (size_t i = 0; i < d; ++i) index = index * cells_per_dim_ + cell[i];
    ++cells_touched_;
    for (const auto& [point, id] : cells_[index]) {
      if (box.Contains(point)) visit(point, id);
    }
    // Odometer increment over [cell_lo, cell_hi].
    size_t i = d;
    bool done = true;
    while (i > 0) {
      --i;
      if (cell[i] < cell_hi[i]) {
        ++cell[i];
        for (size_t j = i + 1; j < d; ++j) cell[j] = cell_lo[j];
        done = false;
        break;
      }
    }
    if (done) return;
  }
}

void UniformGridIndex::RangeQuery(const geom::Rect& box,
                                  std::vector<ObjectId>* out) const {
  RangeQuery(box, [out](const la::Vector&, ObjectId id) {
    out->push_back(id);
  });
}

void UniformGridIndex::BallQuery(const la::Vector& center, double radius,
                                 std::vector<ObjectId>* out) const {
  assert(center.dim() == dim());
  assert(radius >= 0.0);
  const double radius_sq = radius * radius;
  RangeQuery(geom::Rect::CenteredUniform(center, radius),
             [&](const la::Vector& point, ObjectId id) {
               if (la::SquaredDistance(point, center) <= radius_sq) {
                 out->push_back(id);
               }
             });
}

}  // namespace gprq::index
