#ifndef GPRQ_INDEX_GRID_INDEX_H_
#define GPRQ_INDEX_GRID_INDEX_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "index/rstar_tree.h"
#include "la/vector.h"

namespace gprq::index {

/// A uniform (equi-width) grid over a static point set — the classic
/// alternative to the R-tree family for Phase-1 window search. Simple and
/// cache-friendly on uniform data; degrades on skewed data where a few
/// cells hold most points (the TIGER ablation in bench/grid_vs_rtree shows
/// exactly that trade-off, which is why the paper sticks to R-trees).
///
/// Static: built once over a point set; no updates.
class UniformGridIndex {
 public:
  /// Builds a grid with `cells_per_dim` buckets per dimension over the
  /// points' bounding box. Total cells capped at 2^24.
  static Result<UniformGridIndex> Build(
      const std::vector<la::Vector>& points, size_t cells_per_dim);

  size_t dim() const { return lo_.dim(); }
  size_t size() const { return size_; }
  size_t cells_per_dim() const { return cells_per_dim_; }

  /// Visits every point inside `box` (closed).
  void RangeQuery(const geom::Rect& box,
                  const std::function<void(const la::Vector&, ObjectId)>&
                      visit) const;

  /// Appends ids of points inside `box`.
  void RangeQuery(const geom::Rect& box, std::vector<ObjectId>* out) const;

  /// Appends ids of points within `radius` of `center`.
  void BallQuery(const la::Vector& center, double radius,
                 std::vector<ObjectId>* out) const;

  /// Cells touched by the last query (the grid's analogue of node reads).
  uint64_t cells_touched() const { return cells_touched_; }
  void ResetStats() { cells_touched_ = 0; }

 private:
  UniformGridIndex(la::Vector lo, la::Vector widths, size_t cells_per_dim,
                   std::vector<std::vector<std::pair<la::Vector, ObjectId>>>
                       cells,
                   size_t size)
      : lo_(std::move(lo)),
        widths_(std::move(widths)),
        cells_per_dim_(cells_per_dim),
        cells_(std::move(cells)),
        size_(size) {}

  size_t CellOf(size_t dim_index, double coordinate) const;

  la::Vector lo_;
  la::Vector widths_;
  size_t cells_per_dim_;
  std::vector<std::vector<std::pair<la::Vector, ObjectId>>> cells_;
  size_t size_;
  mutable uint64_t cells_touched_ = 0;
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_GRID_INDEX_H_
