#include "index/linear_scan.h"

#include <algorithm>
#include <cassert>

namespace gprq::index {

Status LinearScanIndex::Insert(const la::Vector& point, ObjectId id) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  points_.emplace_back(point, id);
  return Status::OK();
}

Status LinearScanIndex::Remove(const la::Vector& point, ObjectId id) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  auto it = std::find_if(points_.begin(), points_.end(),
                         [&](const auto& kv) {
                           return kv.second == id && kv.first == point;
                         });
  if (it == points_.end()) {
    return Status::NotFound("no entry with this point and id");
  }
  points_.erase(it);
  return Status::OK();
}

void LinearScanIndex::RangeQuery(const geom::Rect& box,
                                 std::vector<ObjectId>* out) const {
  assert(box.dim() == dim_);
  for (const auto& [point, id] : points_) {
    if (box.Contains(point)) out->push_back(id);
  }
}

void LinearScanIndex::BallQuery(const la::Vector& center, double radius,
                                std::vector<ObjectId>* out) const {
  assert(center.dim() == dim_);
  const double radius_sq = radius * radius;
  for (const auto& [point, id] : points_) {
    if (la::SquaredDistance(point, center) <= radius_sq) out->push_back(id);
  }
}

void LinearScanIndex::KnnQuery(
    const la::Vector& center, size_t k,
    std::vector<std::pair<double, ObjectId>>* out) const {
  assert(center.dim() == dim_);
  out->clear();
  if (k == 0) return;
  std::vector<std::pair<double, ObjectId>> all;
  all.reserve(points_.size());
  for (const auto& [point, id] : points_) {
    all.emplace_back(la::SquaredDistance(point, center), id);
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end());
  out->assign(all.begin(), all.begin() + take);
}

}  // namespace gprq::index
