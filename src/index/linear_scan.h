#ifndef GPRQ_INDEX_LINEAR_SCAN_H_
#define GPRQ_INDEX_LINEAR_SCAN_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "index/rstar_tree.h"
#include "la/vector.h"

namespace gprq::index {

/// A trivially correct O(n) point index with the same query surface as the
/// R*-tree. Serves as the oracle in differential tests and as the
/// no-index baseline in benchmarks.
class LinearScanIndex {
 public:
  explicit LinearScanIndex(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return points_.size(); }

  /// Inserts a point with the given id.
  Status Insert(const la::Vector& point, ObjectId id);

  /// Removes the entry with this exact point and id (NotFound if absent).
  Status Remove(const la::Vector& point, ObjectId id);

  /// Ids of all points inside `box` (closed).
  void RangeQuery(const geom::Rect& box, std::vector<ObjectId>* out) const;

  /// Ids of all points within `radius` of `center`.
  void BallQuery(const la::Vector& center, double radius,
                 std::vector<ObjectId>* out) const;

  /// Up to k nearest neighbors as (squared distance, id), ascending.
  void KnnQuery(const la::Vector& center, size_t k,
                std::vector<std::pair<double, ObjectId>>* out) const;

 private:
  size_t dim_;
  std::vector<std::pair<la::Vector, ObjectId>> points_;
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_LINEAR_SCAN_H_
