#include "index/page_file.h"

#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>

#include "fault/failpoint.h"

namespace gprq::index {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<PageFile> PageFile::Create(const std::string& path, size_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64 bytes");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) return ErrnoStatus("cannot create", path);
  return PageFile(file, page_size, 0);
}

Result<PageFile> PageFile::Open(const std::string& path, size_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64 bytes");
  }
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) return ErrnoStatus("cannot open", path);
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return ErrnoStatus("cannot seek", path);
  }
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return ErrnoStatus("cannot tell", path);
  }
  if (static_cast<size_t>(size) % page_size != 0) {
    std::fclose(file);
    return Status::IoError("file size of '" + path +
                           "' is not a multiple of the page size");
  }
  return PageFile(file, page_size, static_cast<size_t>(size) / page_size);
}

PageFile::PageFile(PageFile&& other) noexcept
    : file_(other.file_),
      page_size_(other.page_size_),
      page_count_(other.page_count_),
      physical_reads_(other.physical_reads_),
      physical_writes_(other.physical_writes_) {
  other.file_ = nullptr;
}

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = other.file_;
  page_size_ = other.page_size_;
  page_count_ = other.page_count_;
  physical_reads_ = other.physical_reads_;
  physical_writes_ = other.physical_writes_;
  other.file_ = nullptr;
  return *this;
}

PageFile::~PageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> PageFile::Allocate() {
  assert(file_ != nullptr);
  const PageId id = static_cast<PageId>(page_count_);
  std::vector<uint8_t> zeros(page_size_, 0);
  GPRQ_RETURN_NOT_OK(WritePage(id, zeros));
  // WritePage below the current count extends the file; bump the count.
  page_count_ = id + 1;
  return id;
}

Status PageFile::ReadPage(PageId id, std::vector<uint8_t>* buffer) const {
  assert(file_ != nullptr);
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " beyond end of file");
  }
  // Placed after validation, before the physical I/O: an armed failpoint
  // models the media failing, not the caller misusing the API.
  GPRQ_RETURN_NOT_OK(GPRQ_FAILPOINT("index.page_file.read"));
  buffer->resize(page_size_);
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fread(buffer->data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short read on page " + std::to_string(id));
  }
  ++physical_reads_;
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const std::vector<uint8_t>& buffer) {
  assert(file_ != nullptr);
  if (buffer.size() != page_size_) {
    return Status::InvalidArgument("buffer size must equal the page size");
  }
  if (id > page_count_) {
    return Status::OutOfRange("cannot write past the append frontier");
  }
  GPRQ_RETURN_NOT_OK(GPRQ_FAILPOINT("index.page_file.write"));
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(buffer.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write on page " + std::to_string(id));
  }
  if (id == page_count_) page_count_ = id + 1;
  ++physical_writes_;
  return Status::OK();
}

Status PageFile::Sync() {
  assert(file_ != nullptr);
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed");
  }
  return Status::OK();
}

Status PageFile::Fsync() {
  GPRQ_RETURN_NOT_OK(Sync());
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IoError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace gprq::index
