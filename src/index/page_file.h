#ifndef GPRQ_INDEX_PAGE_FILE_H_
#define GPRQ_INDEX_PAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace gprq::index {

/// Identifier of a fixed-size page within a PageFile.
using PageId = uint32_t;

/// A flat file of fixed-size pages — the storage substrate of the paged
/// R*-tree snapshot. The paper's experiments model disk-resident trees
/// ("the page size of an R*-tree node was set as 1KB"); this class provides
/// that page abstraction with explicit read/write calls so page I/O can be
/// counted and cached by a buffer pool.
///
/// Layout: page 0 is reserved for the caller's header; pages are allocated
/// append-only (the snapshot use case never frees pages).
class PageFile {
 public:
  /// Creates (truncates) a page file with the given page size.
  static Result<PageFile> Create(const std::string& path, size_t page_size);

  /// Opens an existing page file; `page_size` must match the writer's.
  static Result<PageFile> Open(const std::string& path, size_t page_size);

  PageFile(PageFile&& other) noexcept;
  PageFile& operator=(PageFile&& other) noexcept;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  ~PageFile();

  size_t page_size() const { return page_size_; }

  /// Number of pages currently in the file.
  size_t page_count() const { return page_count_; }

  /// Appends a zeroed page and returns its id.
  Result<PageId> Allocate();

  /// Reads page `id` into `buffer` (resized to page_size).
  Status ReadPage(PageId id, std::vector<uint8_t>* buffer) const;

  /// Writes `buffer` (must be exactly page_size bytes) to page `id`.
  Status WritePage(PageId id, const std::vector<uint8_t>& buffer);

  /// Flushes the underlying file.
  Status Sync();

  /// Flushes and then fsyncs the underlying file — the durability barrier
  /// the storage engine's checkpoint protocol needs before renaming a
  /// checkpoint into place (Sync alone only drains stdio buffers).
  Status Fsync();

  /// Cumulative physical page reads/writes (I/O statistics).
  uint64_t physical_reads() const { return physical_reads_; }
  uint64_t physical_writes() const { return physical_writes_; }

 private:
  PageFile(std::FILE* file, size_t page_size, size_t page_count)
      : file_(file), page_size_(page_size), page_count_(page_count) {}

  std::FILE* file_ = nullptr;
  size_t page_size_ = 0;
  size_t page_count_ = 0;
  mutable uint64_t physical_reads_ = 0;
  uint64_t physical_writes_ = 0;
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_PAGE_FILE_H_
