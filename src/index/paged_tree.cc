#include "index/paged_tree.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <queue>
#include <thread>
#include <unordered_map>

#include "index/rstar_tree_internal.h"
#include "obs/metrics.h"

namespace gprq::index {

namespace {

constexpr uint64_t kMagic = 0x47505251534E4150ULL;  // "GPRQSNAP"
constexpr uint32_t kVersion = 1;

// Logical page accesses made by paged-tree traversals — the "node accesses"
// figure of the paper's cost model. The buffer-pool hit/miss split of the
// same accesses lives under `gprq.index.buffer_pool.*`.
obs::Counter* PagesReadCounter() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("gprq.index.paged.pages_read");
  return counter;
}

// Retry accounting for transient page-read failures (`gprq.fault.*` because
// in practice only an armed failpoint — or genuinely flaky media — ever
// drives these).
struct RetryMetrics {
  obs::Counter* retries;
  obs::Counter* exhausted;

  static const RetryMetrics& Get() {
    static const RetryMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return RetryMetrics{
          r.GetCounter("gprq.fault.page_read_retries"),
          r.GetCounter("gprq.fault.page_read_retry_exhausted")};
    }();
    return metrics;
  }
};

// Transient-failure policy for query-path page reads: a short read or an
// injected I/O fault is retried with exponential backoff; everything else
// (OutOfRange, corrupt snapshot, ...) is deterministic and fails at once.
constexpr int kPageReadAttempts = 3;
constexpr uint64_t kPageReadBackoffMicros = 50;   // first retry
constexpr uint64_t kPageReadBackoffFactor = 4;    // 50µs, 200µs

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

// ---- Little serialization helpers (host byte order). ----------------------

template <typename T>
void Put(std::vector<uint8_t>& buffer, size_t* offset, T value) {
  assert(*offset + sizeof(T) <= buffer.size());
  std::memcpy(buffer.data() + *offset, &value, sizeof(T));
  *offset += sizeof(T);
}

template <typename T>
T Get(const uint8_t* buffer, size_t* offset) {
  T value;
  std::memcpy(&value, buffer + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

size_t EntryBytes(size_t dim) { return 16 * dim + sizeof(uint32_t); }
constexpr size_t kNodeHeaderBytes = 8;  // level u32 + entry count u32

struct Header {
  uint64_t magic;
  uint32_t version;
  uint32_t dim;
  uint64_t page_size;
  uint32_t root;
  uint32_t height;
  uint64_t object_count;
  uint64_t node_count;
  uint32_t max_entries;  // node capacity of the source tree
};

void WriteHeader(std::vector<uint8_t>& page, const Header& header) {
  size_t offset = 0;
  Put(page, &offset, header.magic);
  Put(page, &offset, header.version);
  Put(page, &offset, header.dim);
  Put(page, &offset, header.page_size);
  Put(page, &offset, header.root);
  Put(page, &offset, header.height);
  Put(page, &offset, header.object_count);
  Put(page, &offset, header.node_count);
  Put(page, &offset, header.max_entries);
}

Header ReadHeader(const uint8_t* page) {
  Header header;
  size_t offset = 0;
  header.magic = Get<uint64_t>(page, &offset);
  header.version = Get<uint32_t>(page, &offset);
  header.dim = Get<uint32_t>(page, &offset);
  header.page_size = Get<uint64_t>(page, &offset);
  header.root = Get<uint32_t>(page, &offset);
  header.height = Get<uint32_t>(page, &offset);
  header.object_count = Get<uint64_t>(page, &offset);
  header.node_count = Get<uint64_t>(page, &offset);
  header.max_entries = Get<uint32_t>(page, &offset);
  return header;
}

}  // namespace

size_t TreeSnapshot::MaxEntriesPerPage(size_t page_size, size_t dim) {
  if (page_size <= kNodeHeaderBytes) return 0;
  return (page_size - kNodeHeaderBytes) / EntryBytes(dim);
}

Status TreeSnapshot::Write(const RStarTree& tree, const std::string& path,
                           size_t page_size) {
  const size_t dim = tree.dim();
  const size_t max_entries = MaxEntriesPerPage(page_size, dim);

  // Pass 1: assign a page to every node in DFS pre-order (root first).
  std::unordered_map<const RStarTree::Node*, PageId> page_of;
  std::vector<const RStarTree::Node*> order;
  {
    std::vector<const RStarTree::Node*> stack = {tree.root_};
    while (!stack.empty()) {
      const RStarTree::Node* node = stack.back();
      stack.pop_back();
      if (node->entries.size() > max_entries) {
        return Status::InvalidArgument(
            "node with " + std::to_string(node->entries.size()) +
            " entries does not fit a " + std::to_string(page_size) +
            "-byte page (max " + std::to_string(max_entries) + ")");
      }
      page_of[node] = static_cast<PageId>(order.size() + 1);  // 0 = header
      order.push_back(node);
      for (const auto& entry : node->entries) {
        if (entry.child != nullptr) stack.push_back(entry.child);
      }
    }
  }

  auto file_result = PageFile::Create(path, page_size);
  if (!file_result.ok()) return file_result.status();
  PageFile file = std::move(*file_result);

  // Header page.
  {
    auto page0 = file.Allocate();
    if (!page0.ok()) return page0.status();
    std::vector<uint8_t> page(page_size, 0);
    WriteHeader(page, Header{kMagic, kVersion, static_cast<uint32_t>(dim),
                             static_cast<uint64_t>(page_size),
                             /*root=*/1,
                             static_cast<uint32_t>(tree.height()),
                             static_cast<uint64_t>(tree.size()),
                             static_cast<uint64_t>(order.size()),
                             static_cast<uint32_t>(
                                 tree.options_.max_entries)});
    GPRQ_RETURN_NOT_OK(file.WritePage(*page0, page));
  }

  // Node pages.
  std::vector<uint8_t> page(page_size);
  for (const RStarTree::Node* node : order) {
    std::fill(page.begin(), page.end(), 0);
    size_t offset = 0;
    Put(page, &offset, static_cast<uint32_t>(node->level));
    Put(page, &offset, static_cast<uint32_t>(node->entries.size()));
    for (const auto& entry : node->entries) {
      for (size_t i = 0; i < dim; ++i) Put(page, &offset, entry.mbr.lo()[i]);
      for (size_t i = 0; i < dim; ++i) Put(page, &offset, entry.mbr.hi()[i]);
      const uint32_t payload = (entry.child != nullptr)
                                   ? page_of.at(entry.child)
                                   : entry.id;
      Put(page, &offset, payload);
    }
    auto id = file.Allocate();
    if (!id.ok()) return id.status();
    assert(*id == page_of.at(node));
    GPRQ_RETURN_NOT_OK(file.WritePage(*id, page));
  }
  return file.Sync();
}

Result<RStarTree> TreeSnapshot::Load(const std::string& path,
                                     size_t page_size) {
  auto file_result = PageFile::Open(path, page_size);
  if (!file_result.ok()) return file_result.status();
  PageFile file = std::move(*file_result);
  if (file.page_count() == 0) {
    return Status::IoError("snapshot file is empty");
  }
  std::vector<uint8_t> page;
  GPRQ_RETURN_NOT_OK(file.ReadPage(0, &page));
  const Header header = ReadHeader(page.data());
  if (header.magic != kMagic) {
    return Status::IoError("not a gprq tree snapshot (bad magic)");
  }
  if (header.version != kVersion) {
    return Status::IoError("unsupported snapshot version " +
                           std::to_string(header.version));
  }
  if (header.node_count + 1 != file.page_count()) {
    return Status::IoError("snapshot is truncated");
  }

  RStarTreeOptions options;
  options.max_entries = header.max_entries;
  RStarTree tree(header.dim, options);
  const size_t dim = header.dim;

  // Rebuild nodes by DFS from the root; pages reference children by page
  // id, so an explicit stack of unresolved child slots suffices.
  struct PendingChild {
    RStarTree::Node* parent;
    size_t entry_index;
    PageId page;
  };
  delete tree.root_;
  tree.root_ = nullptr;

  std::vector<PendingChild> stack = {{nullptr, 0, header.root}};
  size_t leaf_entries = 0;
  while (!stack.empty()) {
    const PendingChild pending = stack.back();
    stack.pop_back();
    GPRQ_RETURN_NOT_OK(file.ReadPage(pending.page, &page));
    size_t offset = 0;
    const uint32_t level = Get<uint32_t>(page.data(), &offset);
    const uint32_t count = Get<uint32_t>(page.data(), &offset);
    if (count > header.max_entries) {
      return Status::IoError("corrupt snapshot: node overflows capacity");
    }
    auto* node = new RStarTree::Node();
    node->level = level;
    node->entries.reserve(count);
    for (uint32_t e = 0; e < count; ++e) {
      la::Vector lo(dim), hi(dim);
      for (size_t i = 0; i < dim; ++i) {
        lo[i] = Get<double>(page.data(), &offset);
      }
      for (size_t i = 0; i < dim; ++i) {
        hi[i] = Get<double>(page.data(), &offset);
      }
      const uint32_t payload = Get<uint32_t>(page.data(), &offset);
      RStarTree::Entry entry;
      entry.mbr = geom::Rect(std::move(lo), std::move(hi));
      if (level == 0) {
        entry.id = payload;
        ++leaf_entries;
      } else {
        // Child pointer filled in when its page is visited.
        stack.push_back(PendingChild{node, node->entries.size(),
                                     static_cast<PageId>(payload)});
      }
      node->entries.push_back(std::move(entry));
    }
    if (pending.parent == nullptr) {
      tree.root_ = node;
    } else {
      pending.parent->entries[pending.entry_index].child = node;
      node->parent = pending.parent;
    }
  }
  if (leaf_entries != header.object_count) {
    return Status::IoError("corrupt snapshot: object count mismatch");
  }
  tree.size_ = header.object_count;
  return tree;
}

Result<PagedRStarTree> PagedRStarTree::Open(const std::string& path,
                                            const OpenOptions& options) {
  auto file_result = PageFile::Open(path, options.page_size);
  if (!file_result.ok()) return file_result.status();
  auto file = std::make_unique<PageFile>(std::move(*file_result));
  if (file->page_count() == 0) {
    return Status::IoError("snapshot file is empty");
  }
  std::vector<uint8_t> page0;
  GPRQ_RETURN_NOT_OK(file->ReadPage(0, &page0));
  const Header header = ReadHeader(page0.data());
  if (header.magic != kMagic) {
    return Status::IoError("not a gprq tree snapshot (bad magic)");
  }
  if (header.version != kVersion) {
    return Status::IoError("unsupported snapshot version " +
                           std::to_string(header.version));
  }
  if (header.page_size != options.page_size) {
    return Status::InvalidArgument(
        "snapshot was written with page size " +
        std::to_string(header.page_size));
  }
  if (header.node_count + 1 != file->page_count()) {
    return Status::IoError("snapshot is truncated");
  }
  auto pool = std::make_unique<BufferPool>(
      file.get(), std::max<size_t>(1, options.buffer_pages));
  return PagedRStarTree(std::move(file), std::move(pool), header.dim,
                        header.object_count, header.node_count,
                        header.height, header.root);
}

Result<const uint8_t*> PagedRStarTree::GetPageWithRetry(PageId page_id) const {
  // Circuit-breaker gate first: while open, fail in microseconds with
  // ResourceExhausted (non-transient, so callers do not retry it) instead
  // of burning the full attempts × backoff budget per read against a
  // dependency that is known to be down.
  if (breaker_ != nullptr) {
    GPRQ_RETURN_NOT_OK(breaker_->Allow());
  }
  uint64_t backoff_micros = kPageReadBackoffMicros;
  for (int attempt = 1;; ++attempt) {
    Result<const uint8_t*> page = pool_->GetPage(page_id);
    if (page.ok()) {
      if (breaker_ != nullptr) breaker_->RecordSuccess();
      return page;
    }
    if (!IsTransient(page.status()) || attempt >= kPageReadAttempts) {
      if (IsTransient(page.status())) {
        RetryMetrics::Get().exhausted->Add(1);
      }
      // Only transient faults (real media trouble, injected I/O errors)
      // count against the breaker; a deterministic error like a corrupt
      // snapshot is not a recoverable-dependency signal.
      if (breaker_ != nullptr && IsTransient(page.status())) {
        breaker_->RecordFailure();
      } else if (breaker_ != nullptr) {
        breaker_->RecordSuccess();
      }
      return page;
    }
    RetryMetrics::Get().retries->Add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
    backoff_micros *= kPageReadBackoffFactor;
  }
}

Status PagedRStarTree::RangeQueryPage(
    PageId page_id, const geom::Rect& box,
    const std::function<void(const la::Vector&, ObjectId)>& visit) const {
  auto page = GetPageWithRetry(page_id);
  if (!page.ok()) return page.status();
  PagesReadCounter()->Add(1);
  const uint8_t* data = *page;
  size_t offset = 0;
  const uint32_t level = Get<uint32_t>(data, &offset);
  const uint32_t count = Get<uint32_t>(data, &offset);
  la::Vector lo(dim_), hi(dim_);
  // Child page ids are collected before recursing: the recursion reuses the
  // buffer pool and may evict this page.
  std::vector<PageId> children;
  for (uint32_t e = 0; e < count; ++e) {
    for (size_t i = 0; i < dim_; ++i) lo[i] = Get<double>(data, &offset);
    for (size_t i = 0; i < dim_; ++i) hi[i] = Get<double>(data, &offset);
    const uint32_t payload = Get<uint32_t>(data, &offset);
    bool overlaps = true;
    for (size_t i = 0; i < dim_; ++i) {
      if (hi[i] < box.lo()[i] || lo[i] > box.hi()[i]) {
        overlaps = false;
        break;
      }
    }
    if (!overlaps) continue;
    if (level == 0) {
      visit(lo, payload);  // leaf entry: lo == hi == the point
    } else {
      children.push_back(payload);
    }
  }
  for (PageId child : children) {
    GPRQ_RETURN_NOT_OK(RangeQueryPage(child, box, visit));
  }
  return Status::OK();
}

Status PagedRStarTree::RangeQuery(const geom::Rect& box,
                                  std::vector<ObjectId>* out) const {
  return RangeQuery(box, [out](const la::Vector&, ObjectId id) {
    out->push_back(id);
  });
}

Status PagedRStarTree::RangeQuery(
    const geom::Rect& box,
    const std::function<void(const la::Vector&, ObjectId)>& visit) const {
  if (box.dim() != dim_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (object_count_ == 0) return Status::OK();
  return RangeQueryPage(root_, box, visit);
}

Status PagedRStarTree::BallQueryPage(PageId page_id, const la::Vector& center,
                                     double radius_sq,
                                     std::vector<ObjectId>* out) const {
  auto page = GetPageWithRetry(page_id);
  if (!page.ok()) return page.status();
  PagesReadCounter()->Add(1);
  const uint8_t* data = *page;
  size_t offset = 0;
  const uint32_t level = Get<uint32_t>(data, &offset);
  const uint32_t count = Get<uint32_t>(data, &offset);
  la::Vector lo(dim_), hi(dim_);
  std::vector<PageId> children;
  for (uint32_t e = 0; e < count; ++e) {
    for (size_t i = 0; i < dim_; ++i) lo[i] = Get<double>(data, &offset);
    for (size_t i = 0; i < dim_; ++i) hi[i] = Get<double>(data, &offset);
    const uint32_t payload = Get<uint32_t>(data, &offset);
    double dist_sq = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      double diff = 0.0;
      if (center[i] < lo[i]) diff = lo[i] - center[i];
      else if (center[i] > hi[i]) diff = center[i] - hi[i];
      dist_sq += diff * diff;
    }
    if (dist_sq > radius_sq) continue;
    if (level == 0) {
      out->push_back(payload);
    } else {
      children.push_back(payload);
    }
  }
  for (PageId child : children) {
    GPRQ_RETURN_NOT_OK(BallQueryPage(child, center, radius_sq, out));
  }
  return Status::OK();
}

Status PagedRStarTree::BallQuery(const la::Vector& center, double radius,
                                 std::vector<ObjectId>* out) const {
  if (center.dim() != dim_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (radius < 0.0) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  if (object_count_ == 0) return Status::OK();
  return BallQueryPage(root_, center, radius * radius, out);
}

Status PagedRStarTree::KnnQuery(
    const la::Vector& center, size_t k,
    std::vector<std::pair<double, ObjectId>>* out) const {
  if (center.dim() != dim_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  out->clear();
  if (k == 0 || object_count_ == 0) return Status::OK();

  struct Item {
    double dist_sq;
    bool is_node;
    uint32_t payload;  // page id or object id
    bool operator>(const Item& other) const {
      return dist_sq > other.dist_sq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.push({0.0, true, root_});

  la::Vector lo(dim_), hi(dim_);
  while (!queue.empty() && out->size() < k) {
    const Item item = queue.top();
    queue.pop();
    if (!item.is_node) {
      out->emplace_back(item.dist_sq, item.payload);
      continue;
    }
    auto page = GetPageWithRetry(item.payload);
    if (!page.ok()) return page.status();
    PagesReadCounter()->Add(1);
    const uint8_t* data = *page;
    size_t offset = 0;
    const uint32_t level = Get<uint32_t>(data, &offset);
    const uint32_t count = Get<uint32_t>(data, &offset);
    for (uint32_t e = 0; e < count; ++e) {
      for (size_t i = 0; i < dim_; ++i) lo[i] = Get<double>(data, &offset);
      for (size_t i = 0; i < dim_; ++i) hi[i] = Get<double>(data, &offset);
      const uint32_t payload = Get<uint32_t>(data, &offset);
      double dist_sq = 0.0;
      for (size_t i = 0; i < dim_; ++i) {
        double diff = 0.0;
        if (center[i] < lo[i]) diff = lo[i] - center[i];
        else if (center[i] > hi[i]) diff = center[i] - hi[i];
        dist_sq += diff * diff;
      }
      queue.push({dist_sq, level != 0, payload});
    }
  }
  return Status::OK();
}

}  // namespace gprq::index
