#ifndef GPRQ_INDEX_PAGED_TREE_H_
#define GPRQ_INDEX_PAGED_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/status.h"
#include "geom/rect.h"
#include "index/buffer_pool.h"
#include "index/page_file.h"
#include "index/rstar_tree.h"

namespace gprq::index {

/// Serializes an in-memory R*-tree into a page file (a read-only
/// "snapshot"), one node per fixed-size page — the disk-resident tree the
/// paper's experiments model with their 1 KB node pages. The snapshot is
/// queried with PagedRStarTree, whose I/O goes through a buffer pool so
/// logical node accesses and physical page reads can be reported
/// separately.
///
/// On-disk layout (host byte order; snapshots are machine-local artifacts):
///   page 0: header {magic, version, dim, page_size, root page, height,
///            object count, node count}
///   page k: node {level u32, entry count u32,
///            entries: [lo f64×d][hi f64×d][child page | object id u32]}
class TreeSnapshot {
 public:
  /// Writes `tree` to `path`. Fails with InvalidArgument if a node's entry
  /// list cannot fit a page (choose a larger page_size or a smaller
  /// max_entries when building the tree).
  static Status Write(const RStarTree& tree, const std::string& path,
                      size_t page_size = 4096);

  /// Reconstructs a full in-memory R*-tree from a snapshot (the
  /// persistence round-trip: Write → Load yields a tree with identical
  /// structure, options, and answers, ready for further updates).
  static Result<RStarTree> Load(const std::string& path,
                                size_t page_size = 4096);

  /// Maximum node entries a page of this size can hold for dimension d.
  static size_t MaxEntriesPerPage(size_t page_size, size_t dim);
};

/// Read-only queries over a TreeSnapshot file through a buffer pool.
class PagedRStarTree {
 public:
  struct OpenOptions {
    size_t page_size = 4096;
    /// Buffer-pool capacity in pages.
    size_t buffer_pages = 128;
  };

  static Result<PagedRStarTree> Open(const std::string& path,
                                     const OpenOptions& options);

  PagedRStarTree(PagedRStarTree&&) = default;
  PagedRStarTree& operator=(PagedRStarTree&&) = default;

  size_t dim() const { return dim_; }
  size_t size() const { return object_count_; }
  size_t height() const { return height_; }
  size_t node_count() const { return node_count_; }

  /// Appends ids of points inside `box` (closed). Status because a paged
  /// query can hit real I/O errors.
  Status RangeQuery(const geom::Rect& box, std::vector<ObjectId>* out) const;

  /// Visitor flavor: `visit` receives (point, id) for every hit. This is
  /// the hook the paged PRQ path uses — leaf entries carry the point
  /// coordinates, so Phase 2/3 need no separate coordinate table.
  Status RangeQuery(const geom::Rect& box,
                    const std::function<void(const la::Vector&, ObjectId)>&
                        visit) const;

  /// Appends ids of points within `radius` of `center`.
  Status BallQuery(const la::Vector& center, double radius,
                   std::vector<ObjectId>* out) const;

  /// Best-first k-NN; up to k (squared distance, id) pairs ascending.
  Status KnnQuery(const la::Vector& center, size_t k,
                  std::vector<std::pair<double, ObjectId>>* out) const;

  /// Buffer-pool statistics (logical hits vs physical misses).
  const BufferPool::Stats& pool_stats() const { return pool_->stats(); }
  void ResetPoolStats() { pool_->ResetStats(); }
  /// Drops the cache, simulating a cold start.
  void DropCache() { pool_->Clear(); }

  /// Physical page reads performed by the underlying file.
  uint64_t physical_reads() const { return file_->physical_reads(); }

  /// Installs a circuit breaker over query-path page reads (non-owning;
  /// must outlive the tree, or be cleared with nullptr). While the breaker
  /// is open, reads fast-fail with ResourceExhausted instead of burning
  /// the per-read retry budget — persistent storage faults then cost
  /// microseconds per query, and the half-open probe detects recovery.
  void set_circuit_breaker(common::CircuitBreaker* breaker) {
    breaker_ = breaker;
  }
  common::CircuitBreaker* circuit_breaker() const { return breaker_; }

 private:
  PagedRStarTree(std::unique_ptr<PageFile> file,
                 std::unique_ptr<BufferPool> pool, size_t dim,
                 size_t object_count, size_t node_count, size_t height,
                 PageId root)
      : file_(std::move(file)),
        pool_(std::move(pool)),
        dim_(dim),
        object_count_(object_count),
        node_count_(node_count),
        height_(height),
        root_(root) {}

  /// Buffer-pool read with bounded retry: transient failures (IoError —
  /// flaky media, armed failpoints) are retried up to 2 more times with
  /// exponential backoff before the error propagates; deterministic errors
  /// fail immediately. All query-path page reads go through here, so a
  /// blip mid-traversal costs microseconds instead of the whole query.
  Result<const uint8_t*> GetPageWithRetry(PageId page) const;

  Status RangeQueryPage(PageId page, const geom::Rect& box,
                        const std::function<void(const la::Vector&,
                                                 ObjectId)>& visit) const;
  Status BallQueryPage(PageId page, const la::Vector& center,
                       double radius_sq, std::vector<ObjectId>* out) const;

  std::unique_ptr<PageFile> file_;
  mutable std::unique_ptr<BufferPool> pool_;
  common::CircuitBreaker* breaker_ = nullptr;  // optional, non-owning
  size_t dim_;
  size_t object_count_;
  size_t node_count_;
  size_t height_;
  PageId root_;
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_PAGED_TREE_H_
