#include "index/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "index/rstar_tree_internal.h"

namespace gprq::index {

namespace {

void DeleteSubtree(RStarTree::Node* node);

}  // namespace

// Out-of-line so the nested types stay in the internal header.
namespace {

void DeleteSubtreeImpl(RStarTree::Node* node) {
  if (node == nullptr) return;
  for (auto& entry : node->entries) {
    if (entry.child != nullptr) DeleteSubtreeImpl(entry.child);
  }
  delete node;
}

void DeleteSubtree(RStarTree::Node* node) { DeleteSubtreeImpl(node); }

}  // namespace

RStarTree::RStarTree(size_t dim, Options options)
    : dim_(dim), options_(options), root_(new Node()), size_(0) {
  assert(dim_ >= 1);
  assert(options_.max_entries >= 4);
  min_fill_ = std::max<size_t>(
      1, static_cast<size_t>(std::floor(options_.max_entries *
                                        options_.min_fill_fraction)));
  // A valid split needs 2*min_fill <= max_entries + 1.
  min_fill_ = std::min(min_fill_, (options_.max_entries + 1) / 2);
}

RStarTree::~RStarTree() { DeleteSubtree(root_); }

RStarTree::RStarTree(RStarTree&& other) noexcept
    : dim_(other.dim_),
      options_(other.options_),
      min_fill_(other.min_fill_),
      root_(other.root_),
      size_(other.size_),
      stats_(other.stats_) {
  other.root_ = new Node();
  other.size_ = 0;
}

RStarTree& RStarTree::operator=(RStarTree&& other) noexcept {
  if (this == &other) return *this;
  DeleteSubtree(root_);
  dim_ = other.dim_;
  options_ = other.options_;
  min_fill_ = other.min_fill_;
  root_ = other.root_;
  size_ = other.size_;
  stats_ = other.stats_;
  other.root_ = new Node();
  other.size_ = 0;
  return *this;
}

size_t RStarTree::height() const { return root_->level + 1; }

namespace {

size_t CountNodes(const RStarTree::Node* node) {
  size_t count = 1;
  for (const auto& entry : node->entries) {
    if (entry.child != nullptr) count += CountNodes(entry.child);
  }
  return count;
}

}  // namespace

size_t RStarTree::node_count() const { return CountNodes(root_); }

geom::Rect RStarTree::Bounds() const { return root_->ComputeMbr(dim_); }

// ---------------------------------------------------------------------------
// Insertion (R* algorithm: ChooseSubtree / OverflowTreatment / Split)
// ---------------------------------------------------------------------------

RStarTree::Node* RStarTree::ChooseSubtree(const geom::Rect& mbr,
                                          size_t target_level) const {
  Node* node = root_;
  while (node->level > target_level) {
    const std::vector<Entry>& entries = node->entries;
    assert(!entries.empty());
    size_t best = 0;
    if (node->level == 1 && target_level == 0) {
      // Children are leaves: minimize overlap enlargement, then area
      // enlargement, then area (Beckmann et al., CS2).
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < entries.size(); ++j) {
        const geom::Rect grown = Union(entries[j].mbr, mbr);
        double overlap_delta = 0.0;
        for (size_t k = 0; k < entries.size(); ++k) {
          if (k == j) continue;
          overlap_delta += grown.IntersectionVolume(entries[k].mbr) -
                           entries[j].mbr.IntersectionVolume(entries[k].mbr);
        }
        const double area = entries[j].mbr.Volume();
        const double enlarge = grown.Volume() - area;
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best = j;
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    } else {
      // Minimize area enlargement, ties by area (CS1).
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < entries.size(); ++j) {
        const double area = entries[j].mbr.Volume();
        const double enlarge = entries[j].mbr.Enlargement(mbr);
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = j;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    }
    node = entries[best].child;
  }
  return node;
}

void RStarTree::AdjustUpward(Node* node) {
  // Recompute exact MBRs along the path to the root (handles both growth and
  // shrinkage).
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (auto& entry : parent->entries) {
      if (entry.child == node) {
        entry.mbr = node->ComputeMbr(dim_);
        break;
      }
    }
    node = parent;
  }
}

void RStarTree::InsertEntry(Entry entry, size_t target_level,
                            std::vector<bool>& reinserted_at_level) {
  Node* node = ChooseSubtree(entry.mbr, target_level);
  assert(node->level == target_level);
  if (entry.child != nullptr) entry.child->parent = node;
  node->entries.push_back(std::move(entry));
  AdjustUpward(node);
  if (node->entries.size() > options_.max_entries) {
    OverflowTreatment(node, target_level, reinserted_at_level);
  }
}

void RStarTree::OverflowTreatment(Node* node, size_t level,
                                  std::vector<bool>& reinserted_at_level) {
  if (reinserted_at_level.size() <= level) {
    reinserted_at_level.resize(level + 1, false);
  }
  if (node != root_ && !reinserted_at_level[level]) {
    reinserted_at_level[level] = true;
    Reinsert(node, reinserted_at_level);
  } else {
    Split(node);
  }
}

void RStarTree::Reinsert(Node* node, std::vector<bool>& reinserted_at_level) {
  const size_t p = std::max<size_t>(
      1, static_cast<size_t>(node->entries.size() *
                             options_.reinsert_fraction));
  const la::Vector center = node->ComputeMbr(dim_).Center();

  // Sort by distance of entry center to node center, descending; the first
  // p entries are evicted and reinserted closest-first ("close reinsert").
  std::sort(node->entries.begin(), node->entries.end(),
            [&center](const Entry& a, const Entry& b) {
              return la::SquaredDistance(a.mbr.Center(), center) >
                     la::SquaredDistance(b.mbr.Center(), center);
            });
  std::vector<Entry> evicted(
      std::make_move_iterator(node->entries.begin()),
      std::make_move_iterator(node->entries.begin() + p));
  node->entries.erase(node->entries.begin(), node->entries.begin() + p);
  AdjustUpward(node);

  const size_t level = node->level;
  for (size_t i = evicted.size(); i-- > 0;) {  // closest first
    InsertEntry(std::move(evicted[i]), level, reinserted_at_level);
  }
}

size_t RStarTree::ChooseSplitAxis(const std::vector<Entry>& entries,
                                  size_t min_fill, size_t dim) {
  const size_t total = entries.size();
  size_t best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();

  std::vector<const Entry*> sorted(total);
  for (size_t axis = 0; axis < dim; ++axis) {
    double margin_sum = 0.0;
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      for (size_t i = 0; i < total; ++i) sorted[i] = &entries[i];
      std::sort(sorted.begin(), sorted.end(),
                [axis, by_hi](const Entry* a, const Entry* b) {
                  return by_hi ? a->mbr.hi()[axis] < b->mbr.hi()[axis]
                               : a->mbr.lo()[axis] < b->mbr.lo()[axis];
                });
      // Prefix/suffix MBRs make each distribution O(1).
      std::vector<geom::Rect> prefix(total), suffix(total);
      geom::Rect acc = geom::Rect::Empty(dim);
      for (size_t i = 0; i < total; ++i) {
        acc.ExpandToInclude(sorted[i]->mbr);
        prefix[i] = acc;
      }
      acc = geom::Rect::Empty(dim);
      for (size_t i = total; i-- > 0;) {
        acc.ExpandToInclude(sorted[i]->mbr);
        suffix[i] = acc;
      }
      for (size_t split = min_fill; split + min_fill <= total; ++split) {
        margin_sum += prefix[split - 1].Margin() + suffix[split].Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }
  return best_axis;
}

size_t RStarTree::ChooseSplitIndex(std::vector<Entry>& entries, size_t axis,
                                   size_t min_fill) {
  // The R* index choice sorts by lo along the split axis (considering the hi
  // sort as well adds little; we keep the lo sort which is the common
  // implementation choice) and picks the distribution with minimal overlap,
  // ties broken by total area.
  std::sort(entries.begin(), entries.end(),
            [axis](const Entry& a, const Entry& b) {
              if (a.mbr.lo()[axis] != b.mbr.lo()[axis]) {
                return a.mbr.lo()[axis] < b.mbr.lo()[axis];
              }
              return a.mbr.hi()[axis] < b.mbr.hi()[axis];
            });
  const size_t total = entries.size();
  const size_t dim = entries.front().mbr.dim();
  std::vector<geom::Rect> prefix(total), suffix(total);
  geom::Rect acc = geom::Rect::Empty(dim);
  for (size_t i = 0; i < total; ++i) {
    acc.ExpandToInclude(entries[i].mbr);
    prefix[i] = acc;
  }
  acc = geom::Rect::Empty(dim);
  for (size_t i = total; i-- > 0;) {
    acc.ExpandToInclude(entries[i].mbr);
    suffix[i] = acc;
  }

  size_t best_split = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t split = min_fill; split + min_fill <= total; ++split) {
    const geom::Rect& left = prefix[split - 1];
    const geom::Rect& right = suffix[split];
    const double overlap = left.IntersectionVolume(right);
    const double area = left.Volume() + right.Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }
  return best_split;
}

void RStarTree::Split(Node* node) {
  const size_t axis = ChooseSplitAxis(node->entries, min_fill_, dim_);
  const size_t split = ChooseSplitIndex(node->entries, axis, min_fill_);

  Node* sibling = new Node();
  sibling->level = node->level;
  sibling->entries.assign(
      std::make_move_iterator(node->entries.begin() + split),
      std::make_move_iterator(node->entries.end()));
  node->entries.erase(node->entries.begin() + split, node->entries.end());
  for (auto& entry : sibling->entries) {
    if (entry.child != nullptr) entry.child->parent = sibling;
  }

  if (node == root_) {
    Node* new_root = new Node();
    new_root->level = node->level + 1;
    Entry left{node->ComputeMbr(dim_), node, 0};
    Entry right{sibling->ComputeMbr(dim_), sibling, 0};
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    node->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    return;
  }

  Node* parent = node->parent;
  for (auto& entry : parent->entries) {
    if (entry.child == node) {
      entry.mbr = node->ComputeMbr(dim_);
      break;
    }
  }
  Entry sibling_entry{sibling->ComputeMbr(dim_), sibling, 0};
  sibling->parent = parent;
  parent->entries.push_back(std::move(sibling_entry));
  AdjustUpward(parent);
  if (parent->entries.size() > options_.max_entries) {
    // Overflow propagation splits directly (the reinsert flag for upper
    // levels is handled by the caller chain via OverflowTreatment; a direct
    // split here matches common R* implementations and keeps the recursion
    // simple).
    Split(parent);
  }
}

Status RStarTree::Insert(const la::Vector& point, ObjectId id) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  std::vector<bool> reinserted_at_level;
  InsertEntry(Entry{geom::Rect(point), nullptr, id}, 0, reinserted_at_level);
  ++size_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deletion with condensation
// ---------------------------------------------------------------------------

namespace {

RStarTree::Node* FindLeafRec(RStarTree::Node* node, const geom::Rect& target,
                             ObjectId id) {
  if (node->IsLeaf()) {
    for (const auto& entry : node->entries) {
      if (entry.id == id && entry.mbr == target) return node;
    }
    return nullptr;
  }
  for (const auto& entry : node->entries) {
    if (entry.mbr.Contains(target)) {
      if (RStarTree::Node* found = FindLeafRec(entry.child, target, id)) {
        return found;
      }
    }
  }
  return nullptr;
}

}  // namespace

Status RStarTree::Remove(const la::Vector& point, ObjectId id) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  const geom::Rect target(point);
  Node* leaf = FindLeafRec(root_, target, id);
  if (leaf == nullptr) {
    return Status::NotFound("no entry with this point and id");
  }
  auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                         [&](const Entry& e) {
                           return e.id == id && e.mbr == target;
                         });
  assert(it != leaf->entries.end());
  leaf->entries.erase(it);
  --size_;

  // CondenseTree: walk up evicting underfull nodes, collecting orphaned
  // entries together with the level they must be reinserted at.
  std::vector<std::pair<Entry, size_t>> orphans;
  Node* node = leaf;
  while (node != root_) {
    Node* parent = node->parent;
    if (node->entries.size() < min_fill_) {
      auto self = std::find_if(parent->entries.begin(), parent->entries.end(),
                               [node](const Entry& e) {
                                 return e.child == node;
                               });
      assert(self != parent->entries.end());
      parent->entries.erase(self);
      for (auto& entry : node->entries) {
        orphans.emplace_back(std::move(entry), node->level);
      }
      delete node;
    } else {
      AdjustUpward(node);
    }
    node = parent;
  }

  std::vector<bool> reinserted_at_level;
  for (auto& [entry, level] : orphans) {
    // If condensation shortened the tree below the orphan's level, demote
    // subtree entries by reinserting their leaf payloads. With point data
    // this happens only in tiny trees.
    if (level > root_->level) level = root_->level;
    InsertEntry(std::move(entry), level, reinserted_at_level);
  }

  // Shrink the root if it lost all but one child.
  while (!root_->IsLeaf() && root_->entries.size() == 1) {
    Node* child = root_->entries.front().child;
    child->parent = nullptr;
    delete root_;
    root_ = child;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

namespace {

void RangeQueryRec(const RStarTree::Node* node, const geom::Rect& box,
                   const std::function<void(const la::Vector&, ObjectId)>&
                       visit,
                   RStarTree::AccessStats* stats) {
  ++stats->node_reads;
  if (node->IsLeaf()) ++stats->leaf_reads;
  for (const auto& entry : node->entries) {
    if (!box.Intersects(entry.mbr)) continue;
    if (entry.IsLeafEntry()) {
      visit(entry.Point(), entry.id);
    } else {
      RangeQueryRec(entry.child, box, visit, stats);
    }
  }
}

void BallQueryRec(const RStarTree::Node* node, const la::Vector& center,
                  double radius_sq, std::vector<ObjectId>* out,
                  RStarTree::AccessStats* stats) {
  ++stats->node_reads;
  if (node->IsLeaf()) ++stats->leaf_reads;
  for (const auto& entry : node->entries) {
    if (entry.mbr.MinSquaredDistance(center) > radius_sq) continue;
    if (entry.IsLeafEntry()) {
      out->push_back(entry.id);
    } else {
      BallQueryRec(entry.child, center, radius_sq, out, stats);
    }
  }
}

}  // namespace

void RStarTree::RangeQuery(const geom::Rect& box,
                           std::vector<ObjectId>* out) const {
  RangeQuery(box, [out](const la::Vector&, ObjectId id) {
    out->push_back(id);
  });
}

void RStarTree::RangeQuery(
    const geom::Rect& box,
    const std::function<void(const la::Vector&, ObjectId)>& visit) const {
  assert(box.dim() == dim_);
  RangeQueryRec(root_, box, visit, &stats_);
}

void RStarTree::BallQuery(const la::Vector& center, double radius,
                          std::vector<ObjectId>* out) const {
  assert(center.dim() == dim_);
  assert(radius >= 0.0);
  BallQueryRec(root_, center, radius * radius, out, &stats_);
}

void RStarTree::KnnQuery(const la::Vector& center, size_t k,
                         std::vector<std::pair<double, ObjectId>>* out) const {
  assert(center.dim() == dim_);
  out->clear();
  if (k == 0 || size_ == 0) return;

  struct QueueItem {
    double dist_sq;
    const Node* node;       // nullptr when this is a point result
    ObjectId id;
    bool operator>(const QueueItem& other) const {
      return dist_sq > other.dist_sq;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue;
  queue.push({0.0, root_, 0});

  while (!queue.empty() && out->size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      out->emplace_back(item.dist_sq, item.id);
      continue;
    }
    ++stats_.node_reads;
    if (item.node->IsLeaf()) ++stats_.leaf_reads;
    for (const auto& entry : item.node->entries) {
      const double dist_sq = entry.mbr.MinSquaredDistance(center);
      if (entry.IsLeafEntry()) {
        queue.push({dist_sq, nullptr, entry.id});
      } else {
        queue.push({dist_sq, entry.child, 0});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant checking (tests)
// ---------------------------------------------------------------------------

namespace {

Status CheckNode(const RStarTree::Node* node, const RStarTree* tree,
                 size_t dim, size_t max_entries, size_t min_fill,
                 bool is_root, size_t* leaf_entries) {
  if (!is_root) {
    if (node->entries.size() < min_fill) {
      return Status::Internal("underfull node");
    }
  }
  if (node->entries.size() > max_entries) {
    return Status::Internal("overfull node");
  }
  for (const auto& entry : node->entries) {
    if (node->IsLeaf()) {
      if (entry.child != nullptr) {
        return Status::Internal("leaf entry with child pointer");
      }
      ++*leaf_entries;
    } else {
      if (entry.child == nullptr) {
        return Status::Internal("inner entry without child");
      }
      if (entry.child->parent != node) {
        return Status::Internal("broken parent pointer");
      }
      if (entry.child->level + 1 != node->level) {
        return Status::Internal("level mismatch");
      }
      const geom::Rect actual = entry.child->ComputeMbr(dim);
      if (!(actual == entry.mbr)) {
        return Status::Internal("stale MBR in parent entry");
      }
      GPRQ_RETURN_NOT_OK(CheckNode(entry.child, tree, dim, max_entries,
                                   min_fill, false, leaf_entries));
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Incremental nearest-neighbor iteration
// ---------------------------------------------------------------------------

NearestNeighborIterator::NearestNeighborIterator(const RStarTree& tree,
                                                 la::Vector center)
    : tree_(tree), center_(std::move(center)) {
  assert(center_.dim() == tree_.dim());
  if (!tree_.empty() || !tree_.root_->entries.empty()) {
    heap_.push_back(Item{0.0, tree_.root_, 0, nullptr});
  }
}

bool NearestNeighborIterator::Next(double* dist_sq, ObjectId* id,
                                   la::Vector* point) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), ItemGreater());
    const Item item = heap_.back();
    heap_.pop_back();
    if (item.node == nullptr) {
      if (dist_sq != nullptr) *dist_sq = item.dist_sq;
      if (id != nullptr) *id = item.id;
      if (point != nullptr) *point = *item.point;
      return true;
    }
    ++tree_.stats_.node_reads;
    if (item.node->IsLeaf()) ++tree_.stats_.leaf_reads;
    for (const auto& entry : item.node->entries) {
      const double d = entry.mbr.MinSquaredDistance(center_);
      if (entry.IsLeafEntry()) {
        heap_.push_back(Item{d, nullptr, entry.id, &entry.Point()});
      } else {
        heap_.push_back(Item{d, entry.child, 0, nullptr});
      }
      std::push_heap(heap_.begin(), heap_.end(), ItemGreater());
    }
  }
  return false;
}

Status RStarTree::CheckInvariants() const {
  if (root_->parent != nullptr) return Status::Internal("root has a parent");
  if (!root_->IsLeaf() && root_->entries.size() < 2) {
    return Status::Internal("inner root with fewer than 2 children");
  }
  size_t leaf_entries = 0;
  GPRQ_RETURN_NOT_OK(CheckNode(root_, this, dim_, options_.max_entries,
                               min_fill_, true, &leaf_entries));
  if (leaf_entries != size_) {
    return Status::Internal("size() does not match leaf entry count");
  }
  return Status::OK();
}

}  // namespace gprq::index
