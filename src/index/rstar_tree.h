#ifndef GPRQ_INDEX_RSTAR_TREE_H_
#define GPRQ_INDEX_RSTAR_TREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "la/vector.h"

namespace gprq::index {

/// Identifier of an indexed object; an offset into the caller's point table.
using ObjectId = uint32_t;

/// Configuration of an RStarTree.
struct RStarTreeOptions {
  /// Maximum entries per node (page capacity). The paper used 1 KB pages;
  /// with 2-D doubles plus a pointer that is roughly 32-48 entries.
  size_t max_entries = 32;
  /// Minimum fill as a fraction of max_entries (R* recommends 40%).
  double min_fill_fraction = 0.4;
  /// Fraction of entries force-reinserted on first overflow (R*: 30%).
  double reinsert_fraction = 0.3;
};

/// In-memory R*-tree over d-dimensional points (Beckmann, Kriegel, Schneider,
/// Seeger 1990) — the spatial index the paper's Phase 1 runs on ("we use the
/// R-tree index family since it is the most widely used one"; their
/// experiments use an R*-tree implementation).
///
/// Features: ChooseSubtree with overlap-minimization at the leaf level,
/// margin-driven split-axis selection, forced reinsertion (30% by default),
/// deletion with tree condensation, window (rectangle) queries, and
/// best-first k-nearest-neighbor search (needed by the paper's 9-D
/// pseudo-feedback experiment, Section VI).
class RStarTree {
 public:
  // Node layout lives in rstar_tree_internal.h; the types are declared here
  // (publicly, so internal free helpers can name them) but are not part of
  // the supported API surface.
  struct Node;
  struct Entry;

  using Options = RStarTreeOptions;

  /// Per-query / lifetime access statistics (node touches model page I/O).
  struct AccessStats {
    uint64_t node_reads = 0;
    uint64_t leaf_reads = 0;
  };

  explicit RStarTree(size_t dim, Options options = Options());
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&& other) noexcept;
  RStarTree& operator=(RStarTree&& other) noexcept;

  size_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (1 for a tree that is a single leaf).
  size_t height() const;

  /// Number of allocated nodes.
  size_t node_count() const;

  /// Inserts a point with the given id. Duplicate points are allowed
  /// (ids disambiguate). Fails if the point has the wrong dimension.
  Status Insert(const la::Vector& point, ObjectId id);

  /// Removes the entry with this exact point and id. Returns NotFound if no
  /// such entry exists. Underfull nodes are condensed per the classic
  /// R-tree deletion algorithm.
  Status Remove(const la::Vector& point, ObjectId id);

  /// Appends the ids of all points inside `box` (closed) to `out`.
  void RangeQuery(const geom::Rect& box, std::vector<ObjectId>* out) const;

  /// Visitor flavor; `visit` receives (point, id) for every hit.
  void RangeQuery(const geom::Rect& box,
                  const std::function<void(const la::Vector&, ObjectId)>&
                      visit) const;

  /// Appends ids of all points within Euclidean distance `radius` of
  /// `center` (a ball query; uses MINDIST pruning on inner nodes).
  void BallQuery(const la::Vector& center, double radius,
                 std::vector<ObjectId>* out) const;

  /// Best-first k-nearest neighbors of `center`; returns up to k pairs of
  /// (squared distance, id) ordered ascending by distance.
  void KnnQuery(const la::Vector& center, size_t k,
                std::vector<std::pair<double, ObjectId>>* out) const;

  /// The MBR of the whole tree (Empty rect when the tree has no points).
  geom::Rect Bounds() const;

  /// Verifies structural invariants (MBR tightness/containment, fill
  /// bounds, level consistency, entry count). For tests.
  Status CheckInvariants() const;

  /// Cumulative access statistics; reset with ResetStats(). Queries are
  /// logically const, so the counters are mutable.
  const AccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AccessStats(); }

 private:
  friend class StrBulkLoader;        // builds node levels directly
  friend class NearestNeighborIterator;
  friend class TreeSnapshot;         // serializes nodes to pages

  Node* ChooseSubtree(const geom::Rect& mbr, size_t target_level) const;
  void InsertEntry(Entry entry, size_t target_level,
                   std::vector<bool>& reinserted_at_level);
  void OverflowTreatment(Node* node, size_t level,
                         std::vector<bool>& reinserted_at_level);
  void Reinsert(Node* node, std::vector<bool>& reinserted_at_level);
  void Split(Node* node);
  void AdjustUpward(Node* node);
  static size_t ChooseSplitAxis(const std::vector<Entry>& entries,
                                size_t min_fill, size_t dim);
  static size_t ChooseSplitIndex(std::vector<Entry>& entries, size_t axis,
                                 size_t min_fill);

  size_t dim_;
  Options options_;
  size_t min_fill_;  // floor(max_entries * min_fill_fraction), >= 1
  Node* root_;
  size_t size_;
  mutable AccessStats stats_;
};

/// Incremental nearest-neighbor enumeration (Hjaltason & Samet): yields the
/// indexed points in non-decreasing distance from a query center, on demand.
/// Powers the probability-ranking extension, where the stopping distance is
/// only known as results stream in.
///
/// The iterator references the tree; the tree must not be modified while an
/// iterator is live.
class NearestNeighborIterator {
 public:
  NearestNeighborIterator(const RStarTree& tree, la::Vector center);

  /// Advances to the next-closest point. Returns false when exhausted.
  /// On success fills distance (squared), id, and (optionally) the point.
  bool Next(double* dist_sq, ObjectId* id, la::Vector* point = nullptr);

 private:
  struct Item {
    double dist_sq;
    const RStarTree::Node* node;  // nullptr for point results
    ObjectId id;
    const la::Vector* point;      // borrowed from the tree entry
  };
  struct ItemGreater {
    bool operator()(const Item& a, const Item& b) const {
      return a.dist_sq > b.dist_sq;
    }
  };

  const RStarTree& tree_;
  la::Vector center_;
  std::vector<Item> heap_;  // managed with std::push_heap/pop_heap
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_RSTAR_TREE_H_
