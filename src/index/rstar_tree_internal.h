#ifndef GPRQ_INDEX_RSTAR_TREE_INTERNAL_H_
#define GPRQ_INDEX_RSTAR_TREE_INTERNAL_H_

// Implementation details shared between rstar_tree.cc and the STR bulk
// loader. Not part of the public API.

#include <vector>

#include "geom/rect.h"
#include "index/rstar_tree.h"

namespace gprq::index {

/// One slot of a node: either a child subtree (inner node, child != nullptr)
/// or an indexed point (leaf, child == nullptr, mbr degenerate, the point is
/// mbr.lo()).
struct RStarTree::Entry {
  geom::Rect mbr;
  Node* child = nullptr;
  ObjectId id = 0;

  bool IsLeafEntry() const { return child == nullptr; }
  const la::Vector& Point() const { return mbr.lo(); }
};

struct RStarTree::Node {
  size_t level = 0;  // 0 = leaf
  Node* parent = nullptr;
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }

  geom::Rect ComputeMbr(size_t dim) const {
    geom::Rect mbr = geom::Rect::Empty(dim);
    for (const Entry& e : entries) mbr.ExpandToInclude(e.mbr);
    return mbr;
  }
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_RSTAR_TREE_INTERNAL_H_
