#include "index/str_bulk_load.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "index/rstar_tree_internal.h"

namespace gprq::index {

namespace {

using Entry = RStarTree::Entry;
using Node = RStarTree::Node;

/// Splits [begin, end) into chunks of at most `cap` entries. If the last
/// chunk would fall below `min_fill`, entries are rebalanced from the
/// previous chunk so every group respects the tree's fill invariant.
void ChunkGroups(std::vector<Entry>::iterator begin,
                 std::vector<Entry>::iterator end, size_t cap,
                 size_t min_fill,
                 std::vector<std::vector<Entry>>* groups) {
  const size_t n = static_cast<size_t>(end - begin);
  if (n == 0) return;
  size_t offset = 0;
  while (offset < n) {
    size_t take = std::min(cap, n - offset);
    const size_t remaining_after = n - offset - take;
    if (remaining_after > 0 && remaining_after < min_fill) {
      // Shrink this chunk so the tail chunk reaches min_fill.
      take -= (min_fill - remaining_after);
    }
    groups->emplace_back(std::make_move_iterator(begin + offset),
                         std::make_move_iterator(begin + offset + take));
    offset += take;
  }
}

/// Recursive STR tiling: sorts by the center coordinate of `axis`, carves
/// the range into vertical "slabs", and recurses on the next axis; the last
/// axis chunks into node-sized groups.
void Tile(std::vector<Entry>::iterator begin,
          std::vector<Entry>::iterator end, size_t axis, size_t dim,
          size_t cap, size_t min_fill,
          std::vector<std::vector<Entry>>* groups) {
  const size_t n = static_cast<size_t>(end - begin);
  if (n == 0) return;
  if (axis + 1 >= dim || n <= cap) {
    std::sort(begin, end, [axis](const Entry& a, const Entry& b) {
      return a.mbr.Center()[axis] < b.mbr.Center()[axis];
    });
    ChunkGroups(begin, end, cap, min_fill, groups);
    return;
  }
  std::sort(begin, end, [axis](const Entry& a, const Entry& b) {
    return a.mbr.Center()[axis] < b.mbr.Center()[axis];
  });
  const size_t node_budget = (n + cap - 1) / cap;
  const double slabs_d = std::ceil(
      std::pow(static_cast<double>(node_budget),
               1.0 / static_cast<double>(dim - axis)));
  const size_t slabs = std::max<size_t>(1, static_cast<size_t>(slabs_d));
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t offset = 0; offset < n; offset += slab_size) {
    const size_t take = std::min(slab_size, n - offset);
    Tile(begin + offset, begin + offset + take, axis + 1, dim, cap, min_fill,
         groups);
  }
}

}  // namespace

Result<RStarTree> StrBulkLoader::Load(size_t dim,
                                      const std::vector<la::Vector>& points,
                                      RStarTree::Options options) {
  return Load(dim, points, {}, options);
}

Result<RStarTree> StrBulkLoader::Load(size_t dim,
                                      const std::vector<la::Vector>& points,
                                      const std::vector<ObjectId>& ids,
                                      RStarTree::Options options) {
  RStarTree tree(dim, options);
  if (!ids.empty() && ids.size() != points.size()) {
    return Status::InvalidArgument("ids must be empty or match points in size");
  }
  if (points.empty()) return tree;
  for (const auto& point : points) {
    if (point.dim() != dim) {
      return Status::InvalidArgument("point dimension mismatch in bulk load");
    }
  }

  const size_t cap = options.max_entries;
  const size_t min_fill = std::max<size_t>(
      1, std::min(static_cast<size_t>(cap * options.min_fill_fraction),
                  (cap + 1) / 2));

  std::vector<Entry> current;
  current.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const ObjectId id = ids.empty() ? static_cast<ObjectId>(i) : ids[i];
    current.push_back(Entry{geom::Rect(points[i]), nullptr, id});
  }

  size_t level = 0;
  while (current.size() > cap) {
    std::vector<std::vector<Entry>> groups;
    Tile(current.begin(), current.end(), 0, dim, cap, min_fill, &groups);
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (auto& group : groups) {
      Node* node = new Node();
      node->level = level;
      node->entries = std::move(group);
      for (auto& entry : node->entries) {
        if (entry.child != nullptr) entry.child->parent = node;
      }
      parents.push_back(Entry{node->ComputeMbr(dim), node, 0});
    }
    current = std::move(parents);
    ++level;
  }

  // Whatever remains fits in a single root node.
  Node* root = new Node();
  root->level = level;
  root->entries = std::move(current);
  for (auto& entry : root->entries) {
    if (entry.child != nullptr) entry.child->parent = root;
  }

  delete tree.root_;
  tree.root_ = root;
  tree.size_ = points.size();
  return tree;
}

}  // namespace gprq::index
