#ifndef GPRQ_INDEX_STR_BULK_LOAD_H_
#define GPRQ_INDEX_STR_BULK_LOAD_H_

#include <vector>

#include "common/status.h"
#include "index/rstar_tree.h"
#include "la/vector.h"

namespace gprq::index {

/// Sort-Tile-Recursive bulk loading (Leutenegger, Edgington, Lopez 1997):
/// packs a static point set into a fully built R*-tree bottom-up, orders of
/// magnitude faster than repeated insertion and with near-100% node fill.
/// Used to build the experiment datasets (50k-68k points) quickly; the
/// resulting tree satisfies the same invariants as an insertion-built one.
class StrBulkLoader {
 public:
  /// Builds a tree over `points`; object ids are the point positions.
  /// Fails if any point has a dimension other than `dim`.
  static Result<RStarTree> Load(size_t dim,
                                const std::vector<la::Vector>& points,
                                RStarTree::Options options = {});

  /// Like Load, but with caller-chosen object ids (`ids[i]` labels
  /// `points[i]`). Shard builds use this form: each shard tree holds a
  /// slice of the dataset but must report the *global* dataset positions,
  /// or cross-shard result merging would alias unrelated points.
  static Result<RStarTree> Load(size_t dim,
                                const std::vector<la::Vector>& points,
                                const std::vector<ObjectId>& ids,
                                RStarTree::Options options = {});
};

}  // namespace gprq::index

#endif  // GPRQ_INDEX_STR_BULK_LOAD_H_
