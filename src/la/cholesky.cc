#include "la/cholesky.h"

#include <cassert>
#include <cmath>

namespace gprq::la {

Result<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("Cholesky requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(
          "matrix is not positive-definite (pivot <= 0 at column " +
          std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::SolveLower(const Vector& b) const {
  assert(b.dim() == dim());
  const size_t n = dim();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= lower_(i, k) * y[k];
    y[i] = sum / lower_(i, i);
  }
  return y;
}

Vector Cholesky::SolveUpper(const Vector& y) const {
  assert(y.dim() == dim());
  const size_t n = dim();
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= lower_(k, ii) * x[k];
    x[ii] = sum / lower_(ii, ii);
  }
  return x;
}

Vector Cholesky::Solve(const Vector& b) const {
  return SolveUpper(SolveLower(b));
}

double Cholesky::Determinant() const {
  double det = 1.0;
  for (size_t i = 0; i < dim(); ++i) det *= lower_(i, i) * lower_(i, i);
  return det;
}

double Cholesky::LogDeterminant() const {
  double logdet = 0.0;
  for (size_t i = 0; i < dim(); ++i) logdet += 2.0 * std::log(lower_(i, i));
  return logdet;
}

Matrix Cholesky::Inverse() const {
  const size_t n = dim();
  Matrix inv(n, n);
  Vector e(n);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const Vector col = Solve(e);
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

double Cholesky::InverseQuadraticForm(const Vector& v) const {
  return SquaredNorm(SolveLower(v));
}

}  // namespace gprq::la
