#ifndef GPRQ_LA_CHOLESKY_H_
#define GPRQ_LA_CHOLESKY_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace gprq::la {

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Used to sample from multivariate Gaussians, to invert covariance matrices
/// and to compute determinants.
class Cholesky {
 public:
  /// Factors `a`. Fails with NumericalError if `a` is not (numerically)
  /// symmetric positive-definite.
  static Result<Cholesky> Factor(const Matrix& a);

  /// The lower-triangular factor L.
  const Matrix& lower() const { return lower_; }

  size_t dim() const { return lower_.rows(); }

  /// Solves A·x = b.
  Vector Solve(const Vector& b) const;

  /// Solves L·y = b (forward substitution).
  Vector SolveLower(const Vector& b) const;

  /// Solves Lᵀ·x = y (backward substitution).
  Vector SolveUpper(const Vector& y) const;

  /// det(A) = Π L_ii².
  double Determinant() const;

  /// log det(A) = 2·Σ log L_ii; robust for small determinants in high d.
  double LogDeterminant() const;

  /// A⁻¹ computed column-by-column from the factorization.
  Matrix Inverse() const;

  /// The Mahalanobis-style quadratic form vᵀ·A⁻¹·v, evaluated stably as
  /// ‖L⁻¹ v‖².
  double InverseQuadraticForm(const Vector& v) const;

 private:
  explicit Cholesky(Matrix lower) : lower_(std::move(lower)) {}

  Matrix lower_;
};

}  // namespace gprq::la

#endif  // GPRQ_LA_CHOLESKY_H_
