#include "la/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gprq::la {

namespace {

/// Sum of absolute off-diagonal entries; the Jacobi convergence measure.
double OffDiagonalNorm(const Matrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = i + 1; j < a.cols(); ++j) sum += std::abs(a(i, j));
  return sum;
}

}  // namespace

Result<EigenSym> DecomposeSymmetric(const Matrix& input) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("eigendecomposition requires square matrix");
  }
  if (!input.IsSymmetric(1e-9)) {
    return Status::InvalidArgument(
        "eigendecomposition requires symmetric matrix");
  }
  const size_t n = input.rows();
  Matrix a = input;
  Matrix e = Matrix::Identity(n);

  constexpr int kMaxSweeps = 100;
  constexpr double kTol = 1e-14;
  // Scale tolerance by the matrix magnitude so convergence is relative.
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) scale = std::max(scale, std::abs(a(i, j)));
  if (scale == 0.0) scale = 1.0;

  int sweep = 0;
  while (OffDiagonalNorm(a) > kTol * scale * static_cast<double>(n * n)) {
    if (++sweep > kMaxSweeps) {
      return Status::NumericalError("Jacobi eigendecomposition did not converge");
    }
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= kTol * scale) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic Jacobi rotation: choose t = tan(phi) with |t| <= 1 for
        // numerical stability.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Apply the rotation A <- JᵀAJ on rows/columns p and q.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: E <- E·J.
        for (size_t k = 0; k < n; ++k) {
          const double ekp = e(k, p);
          const double ekq = e(k, q);
          e(k, p) = c * ekp - s * ekq;
          e(k, q) = s * ekp + c * ekq;
        }
      }
    }
  }

  // Collect and sort ascending by eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&a](size_t i, size_t j) { return a(i, i) < a(j, j); });

  EigenSym result{Vector(n), Matrix(n, n)};
  for (size_t j = 0; j < n; ++j) {
    const size_t src = order[j];
    result.eigenvalues[j] = a(src, src);
    for (size_t i = 0; i < n; ++i) result.eigenvectors(i, j) = e(i, src);
  }
  return result;
}

}  // namespace gprq::la
