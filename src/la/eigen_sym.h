#ifndef GPRQ_LA_EIGEN_SYM_H_
#define GPRQ_LA_EIGEN_SYM_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace gprq::la {

/// Spectral decomposition A = E·diag(λ)·Eᵀ of a symmetric matrix.
/// Eigenvalues are sorted ascending; eigenvectors are the columns of
/// `eigenvectors` (orthonormal). Used by the OR and BF strategies, which need
/// the principal axes and extreme eigenvalues of Σ (and hence of Σ⁻¹: the
/// eigenvectors coincide and eigenvalues are reciprocals).
struct EigenSym {
  Vector eigenvalues;    // ascending
  Matrix eigenvectors;   // column j pairs with eigenvalues[j]
};

/// Computes the spectral decomposition of a symmetric matrix with the cyclic
/// Jacobi rotation method. Deterministic and accurate to ~1e-12 for the
/// small dimensions (d <= ~32) this library targets.
///
/// Fails with InvalidArgument if `a` is not square-symmetric, or
/// NumericalError if the sweep limit is exceeded (does not happen for
/// well-formed symmetric inputs).
Result<EigenSym> DecomposeSymmetric(const Matrix& a);

}  // namespace gprq::la

#endif  // GPRQ_LA_EIGEN_SYM_H_
