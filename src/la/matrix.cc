#include "la/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gprq::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t dim) {
  Matrix m(dim, dim);
  for (size_t i = 0; i < dim; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& entries) {
  Matrix m(entries.dim(), entries.dim());
  for (size_t i = 0; i < entries.dim(); ++i) m(i, i) = entries[i];
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Vector Matrix::Row(size_t i) const {
  Vector v(cols_);
  for (size_t j = 0; j < cols_; ++j) v[j] = (*this)(i, j);
  return v;
}

Vector Matrix::Col(size_t j) const {
  Vector v(rows_);
  for (size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix m, double scalar) {
  m *= scalar;
  return m;
}

Matrix operator*(double scalar, Matrix m) {
  m *= scalar;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& v) {
  assert(a.cols() == v.dim());
  Vector out(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

double QuadraticForm(const Matrix& a, const Vector& v) {
  assert(a.rows() == a.cols() && a.rows() == v.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    double row = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) row += a(i, j) * v[j];
    sum += v[i] * row;
  }
  return sum;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j)
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
  return worst;
}

}  // namespace gprq::la
