#ifndef GPRQ_LA_MATRIX_H_
#define GPRQ_LA_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"
#include "la/vector.h"

namespace gprq::la {

/// A dense row-major real matrix with runtime shape. Covariance matrices in
/// this library are square symmetric positive-definite, but the type itself
/// is a general dense matrix so it can also hold eigenvector bases and
/// transforms.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// A zero matrix of the given shape.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  /// Builds a matrix from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The d × d identity.
  static Matrix Identity(size_t dim);

  /// diag(entries).
  static Matrix Diagonal(const Vector& entries);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// The transpose Aᵀ.
  Matrix Transposed() const;

  /// Row i as a vector.
  Vector Row(size_t i) const;

  /// Column j as a vector.
  Vector Col(size_t j) const;

  /// True if the matrix is square and symmetric to within `tol` (absolute).
  bool IsSymmetric(double tol = 1e-12) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double scalar);
Matrix operator*(double scalar, Matrix m);

/// Matrix product A·B. Inner dimensions must match.
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product A·v.
Vector operator*(const Matrix& a, const Vector& v);

/// vᵀ·A·v for a square A.
double QuadraticForm(const Matrix& a, const Vector& v);

/// Maximum absolute entry-wise difference between two same-shape matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace gprq::la

#endif  // GPRQ_LA_MATRIX_H_
