#include "la/vector.h"

#include <cassert>
#include <cmath>

namespace gprq::la {

Vector& Vector::operator+=(const Vector& other) {
  assert(dim() == other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  assert(dim() == other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator*(Vector v, double scalar) {
  v *= scalar;
  return v;
}

Vector operator*(double scalar, Vector v) {
  v *= scalar;
  return v;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const Vector& v) { return std::sqrt(SquaredNorm(v)); }

double SquaredNorm(const Vector& v) { return Dot(v, v); }

double SquaredDistance(const Vector& a, const Vector& b) {
  assert(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace gprq::la
