#ifndef GPRQ_LA_VECTOR_H_
#define GPRQ_LA_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace gprq::la {

/// A dense real vector with runtime dimension. The library works with
/// arbitrary dimensionality d >= 1 (the paper evaluates d=2 and d=9), so the
/// dimension is a runtime property rather than a template parameter.
class Vector {
 public:
  Vector() = default;

  /// A zero vector of the given dimension.
  explicit Vector(size_t dim) : data_(dim, 0.0) {}

  /// A vector with all entries set to `fill`.
  Vector(size_t dim, double fill) : data_(dim, fill) {}

  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t dim() const { return data_.size(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  const std::vector<double>& values() const { return data_; }

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double scalar);
Vector operator*(double scalar, Vector v);

/// Inner product <a, b>. Dimensions must match.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm ‖v‖.
double Norm(const Vector& v);

/// Squared Euclidean norm ‖v‖².
double SquaredNorm(const Vector& v);

/// Squared Euclidean distance ‖a − b‖².
double SquaredDistance(const Vector& a, const Vector& b);

/// Euclidean distance ‖a − b‖.
double Distance(const Vector& a, const Vector& b);

}  // namespace gprq::la

#endif  // GPRQ_LA_VECTOR_H_
