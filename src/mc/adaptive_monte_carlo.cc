#include "mc/adaptive_monte_carlo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mc/sample_pool.h"
#include "obs/metrics.h"

namespace gprq::mc {
namespace {

constexpr uint64_t kPoolStreamSalt = 0x9E3779B97F4A7C15ULL;

// Same `gprq.mc.*` counters SamplePool records into — the registry hands
// back the same instances — so per-candidate fallback decisions and pooled
// decisions aggregate identically.
struct DecisionMetrics {
  obs::Counter* decisions;
  obs::Counter* samples_used;
  obs::Counter* early_stops;
  obs::Counter* undecided;

  static const DecisionMetrics& Get() {
    static const DecisionMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return DecisionMetrics{r.GetCounter("gprq.mc.decisions"),
                             r.GetCounter("gprq.mc.samples_used"),
                             r.GetCounter("gprq.mc.early_stops"),
                             r.GetCounter("gprq.mc.undecided")};
    }();
    return metrics;
  }
};

}  // namespace

AdaptiveMonteCarloEvaluator::AdaptiveMonteCarloEvaluator(Options options)
    : options_(options), random_(options.seed) {}

double AdaptiveMonteCarloEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  const double delta_sq = delta * delta;
  const uint64_t n = options_.max_samples;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < n; ++i) {
    query.Sample(random_, scratch_);
    if (la::SquaredDistance(scratch_, object) <= delta_sq) ++hits;
  }
  total_samples_ += n;
  return static_cast<double>(hits) / static_cast<double>(n);
}

bool AdaptiveMonteCarloEvaluator::QualificationDecision(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta, double theta) {
  assert(object.dim() == query.dim());
  assert(theta > 0.0 && theta < 1.0);
  const DecisionMetrics& metrics = DecisionMetrics::Get();
  metrics.decisions->Add(1);
  const double delta_sq = delta * delta;

  uint64_t n = 0;
  uint64_t hits = 0;
  while (n < options_.max_samples) {
    const uint64_t target = (n == 0)
                                ? options_.min_samples
                                : std::min(n + options_.batch_samples,
                                           options_.max_samples);
    for (; n < target; ++n) {
      query.Sample(random_, scratch_);
      if (la::SquaredDistance(scratch_, object) <= delta_sq) ++hits;
    }
    const int cmp = WilsonCompare(hits, n, theta, options_.confidence_z);
    if (cmp != 0) {
      total_samples_ += n;
      metrics.samples_used->Add(n);
      if (n < options_.max_samples) metrics.early_stops->Add(1);
      return cmp > 0;
    }
  }
  // Budget exhausted with θ inside the interval: fall back to the point
  // estimate, as a fixed-budget sampler would.
  total_samples_ += n;
  ++undecided_fallbacks_;
  metrics.samples_used->Add(n);
  metrics.undecided->Add(1);
  return static_cast<double>(hits) >= theta * static_cast<double>(n);
}

std::shared_ptr<const SamplePool> AdaptiveMonteCarloEvaluator::MakeSamplePool(
    const core::GaussianDistribution& query) {
  // A fresh stream per pool, keyed by the query itself: the pool is a pure
  // function of (seed, query), never of pool-construction order.
  rng::Random pool_random(options_.seed ^ kPoolStreamSalt ^
                          QueryFingerprint(query));
  return std::make_shared<const SamplePool>(query, options_.max_samples,
                                            pool_random);
}

std::shared_ptr<const SamplePool>
AdaptiveMonteCarloEvaluator::MakeSamplePool(
    const core::GaussianDistribution& query, PoolVariant variant) {
  const uint64_t stream_seed =
      options_.seed ^ kPoolStreamSalt ^ QueryFingerprint(query);
  return std::make_shared<const SamplePool>(query, options_.max_samples,
                                            stream_seed, variant);
}

SamplePool::DecideOptions AdaptiveMonteCarloEvaluator::PoolDecideOptions()
    const {
  SamplePool::DecideOptions decide;
  decide.confidence_z = options_.confidence_z;
  // Keep the pool's large vectorization blocks even if the per-candidate
  // path checks more often; never check before min_samples' worth.
  decide.block_samples = std::max(
      {decide.block_samples, options_.min_samples, options_.batch_samples});
  return decide;
}

void AdaptiveMonteCarloEvaluator::DecideBatch(
    const core::GaussianDistribution& query, const la::Vector* const* objects,
    size_t count, double delta, double theta, const SamplePool* pool,
    char* decisions) {
  if (pool == nullptr) {
    ProbabilityEvaluator::DecideBatch(query, objects, count, delta, theta,
                                      pool, decisions);
    return;
  }
  const SamplePool::DecideOptions decide = PoolDecideOptions();
  for (size_t i = 0; i < count; ++i) {
    const SamplePool::Decision d =
        pool->Decide(*objects[i], delta, theta, decide);
    total_samples_ += d.samples_used;
    if (d.undecided) ++undecided_fallbacks_;
    decisions[i] = d.qualifies ? 1 : 0;
  }
}

void AdaptiveMonteCarloEvaluator::DecideBatchBounded(
    const core::GaussianDistribution& query, const la::Vector* const* objects,
    size_t count, double delta, double theta, const SamplePool* pool,
    const common::QueryControl& control, char* states) {
  if (pool == nullptr) {
    ProbabilityEvaluator::DecideBatchBounded(query, objects, count, delta,
                                             theta, pool, control, states);
    return;
  }
  SamplePool::DecideOptions decide = PoolDecideOptions();
  decide.control = &control;
  decide.max_samples = control.sample_budget;
  for (size_t i = 0; i < count; ++i) {
    const SamplePool::Decision d =
        pool->Decide(*objects[i], delta, theta, decide);
    total_samples_ += d.samples_used;
    if (d.interrupted) {
      // The interrupted candidate resolved nothing; it and everything after
      // it surface as undecided.
      for (size_t j = i; j < count; ++j) states[j] = kDecideUndecided;
      return;
    }
    if (d.budget_exhausted) {
      // The brownout sample budget is per candidate, not per query: this
      // candidate stays undecided but the next one still gets its own
      // capped attempt (many separate well under the cap).
      states[i] = kDecideUndecided;
      continue;
    }
    if (d.undecided) ++undecided_fallbacks_;
    states[i] = d.qualifies ? kDecideIncluded : kDecideExcluded;
  }
}

}  // namespace gprq::mc
