#include "mc/adaptive_monte_carlo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gprq::mc {

double AdaptiveMonteCarloEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  const double delta_sq = delta * delta;
  const uint64_t n = options_.max_samples;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < n; ++i) {
    query.Sample(random_, scratch_);
    if (la::SquaredDistance(scratch_, object) <= delta_sq) ++hits;
  }
  total_samples_ += n;
  return static_cast<double>(hits) / static_cast<double>(n);
}

bool AdaptiveMonteCarloEvaluator::QualificationDecision(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta, double theta) {
  assert(object.dim() == query.dim());
  assert(theta > 0.0 && theta < 1.0);
  const double delta_sq = delta * delta;
  const double z = options_.confidence_z;

  uint64_t n = 0;
  uint64_t hits = 0;
  while (n < options_.max_samples) {
    const uint64_t target = (n == 0)
                                ? options_.min_samples
                                : std::min(n + options_.batch_samples,
                                           options_.max_samples);
    for (; n < target; ++n) {
      query.Sample(random_, scratch_);
      if (la::SquaredDistance(scratch_, object) <= delta_sq) ++hits;
    }
    // Wilson-score interval: robust when the running estimate sits at 0 or
    // 1 (common — most candidates are far from the θ boundary).
    const double nf = static_cast<double>(n);
    const double p_hat = static_cast<double>(hits) / nf;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nf;
    const double center = (p_hat + z2 / (2.0 * nf)) / denom;
    const double half =
        z / denom *
        std::sqrt(p_hat * (1.0 - p_hat) / nf + z2 / (4.0 * nf * nf));
    if (center - half > theta) {
      total_samples_ += n;
      return true;
    }
    if (center + half < theta) {
      total_samples_ += n;
      return false;
    }
  }
  // Budget exhausted with θ inside the interval: fall back to the point
  // estimate, as a fixed-budget sampler would.
  total_samples_ += n;
  ++undecided_fallbacks_;
  return static_cast<double>(hits) >= theta * static_cast<double>(n);
}

}  // namespace gprq::mc
