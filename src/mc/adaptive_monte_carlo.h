#ifndef GPRQ_MC_ADAPTIVE_MONTE_CARLO_H_
#define GPRQ_MC_ADAPTIVE_MONTE_CARLO_H_

#include <cstdint>
#include <memory>

#include "mc/probability_evaluator.h"
#include "mc/sample_pool.h"
#include "rng/random.h"

namespace gprq::mc {

struct AdaptiveMonteCarloOptions {
  /// Samples drawn before the first confidence check.
  uint64_t min_samples = 256;
  /// Per-round batch between confidence checks.
  uint64_t batch_samples = 256;
  /// Hard sample cap; reaching it falls back to comparing the running
  /// estimate against θ (like fixed-budget Monte Carlo).
  uint64_t max_samples = 100000;
  /// Confidence half-width in standard errors (z = 4 ⇒ ~6e-5 per-side
  /// error probability per decision).
  double confidence_z = 4.0;
  uint64_t seed = 42;
};

/// Sequential-sampling Monte-Carlo decider: an optimization of the paper's
/// Phase 3. The engine only needs the *decision* p >= θ, not p itself, and
/// most surviving candidates have probabilities far from θ, so a running
/// Wilson-style confidence interval usually separates from θ after a few
/// hundred samples — orders of magnitude below the paper's fixed budget of
/// 100,000 samples per object. Ablated in bench/adaptive_mc.
class AdaptiveMonteCarloEvaluator final : public ProbabilityEvaluator {
 public:
  using Options = AdaptiveMonteCarloOptions;

  explicit AdaptiveMonteCarloEvaluator(Options options = Options());

  /// Full-budget estimate (used when a caller wants the probability, e.g.
  /// the ranking extension); runs max_samples draws.
  double QualificationProbability(const core::GaussianDistribution& query,
                                  const la::Vector& object,
                                  double delta) override;

  /// Early-stopping decision with per-call sample accounting.
  bool QualificationDecision(const core::GaussianDistribution& query,
                             const la::Vector& object, double delta,
                             double theta) override;

  /// Batched decisions over a shared per-query pool: block-wise counts with
  /// the same Wilson early termination, amortizing the sampling across all
  /// candidates of the query. Counter semantics are unchanged
  /// (total_samples counts pool samples consumed per decision;
  /// undecided_fallbacks counts pool-exhausted decisions). Without a pool,
  /// falls back to the per-candidate sequential path.
  void DecideBatch(const core::GaussianDistribution& query,
                   const la::Vector* const* objects, size_t count,
                   double delta, double theta, const SamplePool* pool,
                   char* decisions) override;

  /// Bounded batch: pool->Decide with the control threaded into the Wilson
  /// block loop, so a deadline firing mid-candidate overshoots by at most
  /// one block of samples. The interrupted candidate and all remaining ones
  /// become kDecideUndecided; decided entries match DecideBatch
  /// bit-for-bit.
  void DecideBatchBounded(const core::GaussianDistribution& query,
                          const la::Vector* const* objects, size_t count,
                          double delta, double theta, const SamplePool* pool,
                          const common::QueryControl& control,
                          char* states) override;

  /// A pool of options().max_samples draws from a stream seeded by
  /// (options().seed, pool salt, QueryFingerprint(query)) — see
  /// MonteCarloEvaluator::MakeSamplePool for the determinism rationale.
  std::shared_ptr<const SamplePool> MakeSamplePool(
      const core::GaussianDistribution& query) override;

  /// Variant-selecting pool (see MonteCarloEvaluator): kPseudoRandom is
  /// bit-identical to the overload above, kHalton draws randomized-Halton
  /// QMC samples from the same stream seed.
  std::shared_ptr<const SamplePool> MakeSamplePool(
      const core::GaussianDistribution& query, PoolVariant variant) override;

  const char* name() const override { return "adaptive-monte-carlo"; }

  /// Samples drawn across all decisions since construction/reset.
  uint64_t total_samples() const { return total_samples_; }
  /// Decisions that reached max_samples without separating from θ.
  uint64_t undecided_fallbacks() const { return undecided_fallbacks_; }
  void ResetCounters() {
    total_samples_ = 0;
    undecided_fallbacks_ = 0;
  }

 private:
  /// The pool->Decide options DecideBatch/DecideBatchBounded share, so the
  /// bounded and unbounded paths make identical sequential decisions.
  SamplePool::DecideOptions PoolDecideOptions() const;

  Options options_;
  rng::Random random_;
  la::Vector scratch_;
  uint64_t total_samples_ = 0;
  uint64_t undecided_fallbacks_ = 0;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_ADAPTIVE_MONTE_CARLO_H_
