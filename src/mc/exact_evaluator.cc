#include "mc/exact_evaluator.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "stats/noncentral_chi_squared.h"

namespace gprq::mc {

double ImhofEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  assert(delta >= 0.0);
  if (delta == 0.0) return 0.0;

  const size_t d = query.dim();
  const la::Vector& scales = query.axis_scales();
  const la::Vector c = query.ToEigenFrame(object);

  // Isotropic covariance: Σ s²(z − c/s)² <= δ² reduces to a noncentral
  // chi-squared probability P(χ'²_d(‖c‖²/s²) <= δ²/s²).
  const double s_min = scales[0];
  const double s_max = scales[d - 1];
  if (s_max - s_min <= 1e-12 * s_max) {
    const double s = s_max;
    return stats::NoncentralChiSquaredCdf(d, la::SquaredNorm(c) / (s * s),
                                          (delta * delta) / (s * s));
  }

  std::vector<stats::QuadraticFormTerm> terms(d);
  for (size_t i = 0; i < d; ++i) {
    terms[i].weight = scales[i] * scales[i];
    terms[i].offset = c[i] / scales[i];  // sign is irrelevant under z ↦ −z
  }
  auto result = stats::ImhofCdf(terms, delta * delta, options_);
  // Inputs were validated above; Imhof cannot fail for positive weights
  // short of an exhausted panel budget, which we surface loudly.
  return result.value();
}

}  // namespace gprq::mc
