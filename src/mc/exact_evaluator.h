#ifndef GPRQ_MC_EXACT_EVALUATOR_H_
#define GPRQ_MC_EXACT_EVALUATOR_H_

#include "mc/probability_evaluator.h"
#include "stats/imhof.h"

namespace gprq::mc {

/// Exact qualification probabilities without sampling. With the spectral
/// decomposition Σ = E·diag(s²)·Eᵀ and c = Eᵀ(o − q),
///
///   Pr(‖x−o‖² <= δ²) = Pr( Σ_i s_i² (z_i − c_i/s_i)² <= δ² ),
///
/// a noncentral quadratic form in iid standard normals, evaluated by
/// Imhof's characteristic-function inversion (isotropic Σ falls back to the
/// noncentral chi-squared series, which is cheaper). This evaluator is not
/// in the paper — it serves as ground truth in tests and as a fast Phase-3
/// alternative ablated in bench/evaluator_compare.
class ImhofEvaluator final : public ProbabilityEvaluator {
 public:
  explicit ImhofEvaluator(stats::ImhofOptions options = {})
      : options_(options) {}

  double QualificationProbability(const core::GaussianDistribution& query,
                                  const la::Vector& object,
                                  double delta) override;

  const char* name() const override { return "imhof"; }

 private:
  stats::ImhofOptions options_;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_EXACT_EVALUATOR_H_
