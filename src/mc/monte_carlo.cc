#include "mc/monte_carlo.h"

#include <cassert>
#include <cmath>

#include "mc/sample_pool.h"
#include "obs/metrics.h"

namespace gprq::mc {
namespace {

// Salt for the pool stream so it is decorrelated from the per-candidate
// stream even though both derive from options.seed.
constexpr uint64_t kPoolStreamSalt = 0x9E3779B97F4A7C15ULL;

// Same `gprq.mc.*` counters the adaptive paths record into. Fixed-budget
// decisions always consume the full pool, so samples_used grows by n per
// decision and early_stops stays flat — the budget-utilization contrast
// the adaptive evaluator is measured against.
struct FixedBudgetMetrics {
  obs::Counter* decisions;
  obs::Counter* samples_used;

  static const FixedBudgetMetrics& Get() {
    static const FixedBudgetMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return FixedBudgetMetrics{r.GetCounter("gprq.mc.decisions"),
                                r.GetCounter("gprq.mc.samples_used")};
    }();
    return metrics;
  }
};

}  // namespace

MonteCarloEvaluator::MonteCarloEvaluator(Options options)
    : options_(options), random_(options.seed), scratch_(options.dim) {}

uint64_t MonteCarloEvaluator::CountHits(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta_sq, uint64_t n) {
  uint64_t hits = 0;
  for (uint64_t i = 0; i < n; ++i) {
    query.Sample(random_, scratch_);
    if (la::SquaredDistance(scratch_, object) <= delta_sq) ++hits;
  }
  return hits;
}

MonteCarloEvaluator::Estimate MonteCarloEvaluator::EstimateWithError(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  assert(delta >= 0.0);
  const uint64_t n = options_.samples;
  const uint64_t hits = CountHits(query, object, delta * delta, n);
  Estimate est;
  est.samples = n;
  est.probability = static_cast<double>(hits) / static_cast<double>(n);
  est.std_error = std::sqrt(est.probability * (1.0 - est.probability) /
                            static_cast<double>(n));
  return est;
}

double MonteCarloEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  assert(delta >= 0.0);
  // No std-error here: callers of this entry point discard it, so the
  // sqrt per call would be wasted.
  const uint64_t n = options_.samples;
  return static_cast<double>(CountHits(query, object, delta * delta, n)) /
         static_cast<double>(n);
}

std::shared_ptr<const SamplePool> MonteCarloEvaluator::MakeSamplePool(
    const core::GaussianDistribution& query) {
  // A fresh stream per pool, keyed by the query itself: the pool is a pure
  // function of (seed, query), never of pool-construction order.
  rng::Random pool_random(options_.seed ^ kPoolStreamSalt ^
                          QueryFingerprint(query));
  return std::make_shared<const SamplePool>(query, options_.samples,
                                            pool_random);
}

std::shared_ptr<const SamplePool> MonteCarloEvaluator::MakeSamplePool(
    const core::GaussianDistribution& query, PoolVariant variant) {
  // The same pure-function-of-(seed, query) stream seed for both variants;
  // the variant only selects how the pool turns it into samples.
  const uint64_t stream_seed =
      options_.seed ^ kPoolStreamSalt ^ QueryFingerprint(query);
  return std::make_shared<const SamplePool>(query, options_.samples,
                                            stream_seed, variant);
}

void MonteCarloEvaluator::DecideBatch(const core::GaussianDistribution& query,
                                      const la::Vector* const* objects,
                                      size_t count, double delta, double theta,
                                      const SamplePool* pool,
                                      char* decisions) {
  if (pool == nullptr) {
    ProbabilityEvaluator::DecideBatch(query, objects, count, delta, theta,
                                      pool, decisions);
    return;
  }
  // Fixed-budget semantics over the shared pool: full-pool count per
  // candidate, decision by point estimate (hits/n >= θ).
  const FixedBudgetMetrics& metrics = FixedBudgetMetrics::Get();
  const double delta_sq = delta * delta;
  const uint64_t n = pool->size();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t hits = pool->CountWithin(*objects[i], delta_sq, 0, n);
    decisions[i] =
        static_cast<double>(hits) >= theta * static_cast<double>(n) ? 1 : 0;
  }
  metrics.decisions->Add(count);
  metrics.samples_used->Add(n * count);
}

void MonteCarloEvaluator::DecideBatchBounded(
    const core::GaussianDistribution& query, const la::Vector* const* objects,
    size_t count, double delta, double theta, const SamplePool* pool,
    const common::QueryControl& control, char* states) {
  if (pool == nullptr) {
    ProbabilityEvaluator::DecideBatchBounded(query, objects, count, delta,
                                             theta, pool, control, states);
    return;
  }
  if (control.Unbounded()) {
    // Bit-identical to the unbounded path (0/1 match the DecideState pair).
    DecideBatch(query, objects, count, delta, theta, pool, states);
    return;
  }
  if (control.sample_budget > 0 && control.sample_budget < pool->size()) {
    // A fixed-budget point estimate cannot be truncated soundly (the
    // unloaded answer needs the whole pool), so under a brownout sample
    // budget this evaluator switches to the sequential Wilson test: a
    // capped candidate either separates confidently or surfaces as
    // undecided — never a cheaper point-estimate guess.
    SamplePool::DecideOptions decide;
    decide.control = &control;
    decide.max_samples = control.sample_budget;
    for (size_t i = 0; i < count; ++i) {
      const SamplePool::Decision d =
          pool->Decide(*objects[i], delta, theta, decide);
      if (d.interrupted) {
        for (size_t j = i; j < count; ++j) states[j] = kDecideUndecided;
        return;
      }
      states[i] = (d.budget_exhausted || d.undecided)
                      ? kDecideUndecided
                      : (d.qualifies ? kDecideIncluded : kDecideExcluded);
    }
    return;
  }
  const FixedBudgetMetrics& metrics = FixedBudgetMetrics::Get();
  const double delta_sq = delta * delta;
  const uint64_t n = pool->size();
  size_t decided = 0;
  for (size_t i = 0; i < count; ++i) {
    if (control.ShouldStop()) {
      for (size_t j = i; j < count; ++j) states[j] = kDecideUndecided;
      break;
    }
    const uint64_t hits = pool->CountWithin(*objects[i], delta_sq, 0, n);
    states[i] = static_cast<double>(hits) >= theta * static_cast<double>(n)
                    ? kDecideIncluded
                    : kDecideExcluded;
    ++decided;
  }
  metrics.decisions->Add(decided);
  metrics.samples_used->Add(n * decided);
}

}  // namespace gprq::mc
