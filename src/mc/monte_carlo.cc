#include "mc/monte_carlo.h"

#include <cassert>
#include <cmath>

namespace gprq::mc {

MonteCarloEvaluator::Estimate MonteCarloEvaluator::EstimateWithError(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  assert(delta >= 0.0);
  const double delta_sq = delta * delta;
  const uint64_t n = options_.samples;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < n; ++i) {
    query.Sample(random_, scratch_);
    if (la::SquaredDistance(scratch_, object) <= delta_sq) ++hits;
  }
  Estimate est;
  est.samples = n;
  est.probability = static_cast<double>(hits) / static_cast<double>(n);
  est.std_error = std::sqrt(est.probability * (1.0 - est.probability) /
                            static_cast<double>(n));
  return est;
}

double MonteCarloEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  return EstimateWithError(query, object, delta).probability;
}

}  // namespace gprq::mc
