#ifndef GPRQ_MC_MONTE_CARLO_H_
#define GPRQ_MC_MONTE_CARLO_H_

#include <cstdint>
#include <memory>

#include "mc/probability_evaluator.h"
#include "rng/random.h"

namespace gprq::mc {

/// The paper's numerical integrator (Section V-A): draw random points from
/// the query Gaussian itself and count the fraction landing inside the
/// δ-ball around the target object. The paper calls this importance
/// sampling; sampling from the integrand's own density makes the estimator
/// converge much faster than uniform hit-or-miss Monte Carlo, especially in
/// medium dimensions. The paper used 100,000 samples per object.
struct MonteCarloOptions {
  uint64_t samples = 100000;
  uint64_t seed = 42;
  /// Query dimensionality hint; when nonzero the sampling scratch buffer
  /// is allocated at construction instead of on the first sample draw.
  size_t dim = 0;
};

class MonteCarloEvaluator final : public ProbabilityEvaluator {
 public:
  using Options = MonteCarloOptions;

  explicit MonteCarloEvaluator(Options options = Options());

  double QualificationProbability(const core::GaussianDistribution& query,
                                  const la::Vector& object,
                                  double delta) override;

  /// Batched Phase-3 over a shared per-query pool: the O(d²) sampling cost
  /// is paid once per query (in MakeSamplePool) and each candidate costs
  /// only a full-pool squared-distance count. Without a pool, falls back to
  /// the per-candidate path.
  void DecideBatch(const core::GaussianDistribution& query,
                   const la::Vector* const* objects, size_t count,
                   double delta, double theta, const SamplePool* pool,
                   char* decisions) override;

  /// Bounded batch over the shared pool: full-pool counts per candidate
  /// with a control check between candidates; remaining candidates are
  /// marked kDecideUndecided once the control fires. Decided entries match
  /// DecideBatch bit-for-bit.
  void DecideBatchBounded(const core::GaussianDistribution& query,
                          const la::Vector* const* objects, size_t count,
                          double delta, double theta, const SamplePool* pool,
                          const common::QueryControl& control,
                          char* states) override;

  /// A pool of options().samples draws from a stream seeded by
  /// (options().seed, pool salt, QueryFingerprint(query)) — a pure function
  /// of evaluator seed and query, independent of how many pools were built
  /// before, so per-query Phase-3 results are reproducible on a long-lived
  /// evaluator and unaffected by neighboring queries being skipped.
  std::shared_ptr<const SamplePool> MakeSamplePool(
      const core::GaussianDistribution& query) override;

  /// Variant-selecting pool from the same (seed, salt, fingerprint) stream
  /// seed: kPseudoRandom is bit-identical to the overload above; kHalton
  /// swaps the iid draws for the randomized-Halton QMC construction.
  std::shared_ptr<const SamplePool> MakeSamplePool(
      const core::GaussianDistribution& query, PoolVariant variant) override;

  /// Estimate plus its standard error sqrt(p(1−p)/n).
  struct Estimate {
    double probability = 0.0;
    double std_error = 0.0;
    uint64_t samples = 0;
  };
  Estimate EstimateWithError(const core::GaussianDistribution& query,
                             const la::Vector& object, double delta);

  const char* name() const override { return "monte-carlo"; }

  const Options& options() const { return options_; }

 private:
  uint64_t CountHits(const core::GaussianDistribution& query,
                     const la::Vector& object, double delta_sq, uint64_t n);

  Options options_;
  rng::Random random_;
  la::Vector scratch_;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_MONTE_CARLO_H_
