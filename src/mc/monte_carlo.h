#ifndef GPRQ_MC_MONTE_CARLO_H_
#define GPRQ_MC_MONTE_CARLO_H_

#include <cstdint>

#include "mc/probability_evaluator.h"
#include "rng/random.h"

namespace gprq::mc {

/// The paper's numerical integrator (Section V-A): draw random points from
/// the query Gaussian itself and count the fraction landing inside the
/// δ-ball around the target object. The paper calls this importance
/// sampling; sampling from the integrand's own density makes the estimator
/// converge much faster than uniform hit-or-miss Monte Carlo, especially in
/// medium dimensions. The paper used 100,000 samples per object.
struct MonteCarloOptions {
  uint64_t samples = 100000;
  uint64_t seed = 42;
};

class MonteCarloEvaluator final : public ProbabilityEvaluator {
 public:
  using Options = MonteCarloOptions;

  explicit MonteCarloEvaluator(Options options = Options())
      : options_(options), random_(options.seed) {}

  double QualificationProbability(const core::GaussianDistribution& query,
                                  const la::Vector& object,
                                  double delta) override;

  /// Estimate plus its standard error sqrt(p(1−p)/n).
  struct Estimate {
    double probability = 0.0;
    double std_error = 0.0;
    uint64_t samples = 0;
  };
  Estimate EstimateWithError(const core::GaussianDistribution& query,
                             const la::Vector& object, double delta);

  const char* name() const override { return "monte-carlo"; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  rng::Random random_;
  la::Vector scratch_;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_MONTE_CARLO_H_
