#ifndef GPRQ_MC_POOL_VARIANT_H_
#define GPRQ_MC_POOL_VARIANT_H_

#include <cstdint>

namespace gprq::mc {

/// How a per-query SamplePool draws its points from N(q, Σ).
///
/// kPseudoRandom is the paper's estimator: iid draws from the evaluator's
/// dedicated pool stream (xoshiro256++), O(1/√n) convergence.
///
/// kHalton replaces the uniforms with a randomized Halton low-discrepancy
/// sequence (Cranley-Patterson rotation seeded from the same pool-stream
/// seed, so the pool stays a pure function of (evaluator seed, query)),
/// mapped through the standard-normal quantile and the distribution's
/// Cholesky factor — quasi-Monte-Carlo integration with ~O(1/n)
/// convergence for the smooth δ-ball indicator integrands of Phase 3.
/// Falls back to kPseudoRandom above rng::HaltonSequence::kMaxDim (16)
/// dimensions, where the tail bases stop helping anyway.
///
/// The variant changes which samples a pool holds and therefore which
/// candidates a Monte-Carlo Phase 3 decides as qualifying near the θ
/// boundary; it is part of cache::FilterConfigBits so the result cache
/// never serves one variant's answer for the other.
enum class PoolVariant : uint8_t {
  kPseudoRandom = 0,
  kHalton = 1,
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_POOL_VARIANT_H_
