#ifndef GPRQ_MC_PROBABILITY_EVALUATOR_H_
#define GPRQ_MC_PROBABILITY_EVALUATOR_H_

#include "core/gaussian.h"
#include "la/vector.h"

namespace gprq::mc {

/// Phase-3 backend: computes (or estimates) the qualification probability
///
///   Pr( ‖x − o‖² <= δ² ),   x ~ N(q, Σ)
///
/// of paper Eq. (2)/(3) — the Gaussian measure of the Euclidean δ-ball
/// centered at target object o. Implementations: the paper's Monte-Carlo
/// importance sampling (MonteCarloEvaluator) and an exact
/// characteristic-function inversion (ImhofEvaluator).
class ProbabilityEvaluator {
 public:
  virtual ~ProbabilityEvaluator() = default;

  /// The qualification probability of object `object` for radius `delta`.
  virtual double QualificationProbability(
      const core::GaussianDistribution& query,
      const la::Vector& object, double delta) = 0;

  /// The Phase-3 decision the engine actually needs: is the qualification
  /// probability at least `theta`? The default compares a full
  /// QualificationProbability() estimate against θ; implementations that
  /// can decide cheaper (e.g. sequential sampling with early stopping) may
  /// override.
  virtual bool QualificationDecision(const core::GaussianDistribution& query,
                                     const la::Vector& object, double delta,
                                     double theta) {
    return QualificationProbability(query, object, delta) >= theta;
  }

  /// Implementation name for reports ("monte-carlo", "imhof", ...).
  virtual const char* name() const = 0;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_PROBABILITY_EVALUATOR_H_
