#ifndef GPRQ_MC_PROBABILITY_EVALUATOR_H_
#define GPRQ_MC_PROBABILITY_EVALUATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/deadline.h"
#include "core/gaussian.h"
#include "la/vector.h"
#include "mc/pool_variant.h"

namespace gprq::mc {

class SamplePool;

/// Per-candidate outcome of a bounded (deadline/cancellation-aware) batch.
/// Excluded and included are *exact* Phase-3 answers; undecided means the
/// control stopped the batch before this candidate resolved — the engine
/// must surface it as unknown, never guess. Values are chosen so the
/// kExcluded/kIncluded pair is layout-compatible with the unbounded
/// DecideBatch 0/1 convention.
enum DecideState : char {
  kDecideExcluded = 0,
  kDecideIncluded = 1,
  kDecideUndecided = 2,
};

/// Phase-3 backend: computes (or estimates) the qualification probability
///
///   Pr( ‖x − o‖² <= δ² ),   x ~ N(q, Σ)
///
/// of paper Eq. (2)/(3) — the Gaussian measure of the Euclidean δ-ball
/// centered at target object o. Implementations: the paper's Monte-Carlo
/// importance sampling (MonteCarloEvaluator) and an exact
/// characteristic-function inversion (ImhofEvaluator).
class ProbabilityEvaluator {
 public:
  virtual ~ProbabilityEvaluator() = default;

  /// The qualification probability of object `object` for radius `delta`.
  virtual double QualificationProbability(
      const core::GaussianDistribution& query,
      const la::Vector& object, double delta) = 0;

  /// The Phase-3 decision the engine actually needs: is the qualification
  /// probability at least `theta`? The default compares a full
  /// QualificationProbability() estimate against θ; implementations that
  /// can decide cheaper (e.g. sequential sampling with early stopping) may
  /// override.
  virtual bool QualificationDecision(const core::GaussianDistribution& query,
                                     const la::Vector& object, double delta,
                                     double theta) {
    return QualificationProbability(query, object, delta) >= theta;
  }

  /// Builds a per-query pool of shared samples for batched decisions, or
  /// null when the implementation does not integrate by sampling from the
  /// query Gaussian (exact evaluators; the default). Phase-3 drivers call
  /// this once per query — on the submitting thread, before any DecideBatch
  /// fan-out — and pass the pool to every DecideBatch chunk of that query,
  /// so the O(samples · d²) draw happens once per query instead of once per
  /// candidate. Sampling evaluators should draw the pool from a dedicated
  /// RNG stream so pool construction never perturbs their per-candidate
  /// stream.
  virtual std::shared_ptr<const SamplePool> MakeSamplePool(
      const core::GaussianDistribution& query) {
    (void)query;
    return nullptr;
  }

  /// Variant-selecting MakeSamplePool (core::PrqOptions::pool_variant):
  /// kPseudoRandom must reproduce the one-argument overload bit-for-bit;
  /// kHalton requests a randomized-Halton QMC pool. The default delegates
  /// to the one-argument overload — exact evaluators return null for every
  /// variant, and a sampling evaluator that has not opted in keeps its
  /// native pool.
  virtual std::shared_ptr<const SamplePool> MakeSamplePool(
      const core::GaussianDistribution& query, PoolVariant variant) {
    (void)variant;
    return MakeSamplePool(query);
  }

  /// Batched Phase-3 decisions: sets decisions[i] to nonzero iff the
  /// qualification probability of *objects[i] is at least `theta`, for
  /// i in [0, count). `objects` is an array of `count` pointers (candidate
  /// points live inside caller containers and are not contiguous).
  ///
  /// `pool` is the pool MakeSamplePool returned for this query — null for
  /// evaluators that returned null there. Implementations deciding from the
  /// pool must treat it as read-only: one pool instance fans out across
  /// worker threads (mutating their *own* per-evaluator state is fine, the
  /// worker owns it). The default ignores `pool` and loops the
  /// per-candidate QualificationDecision, so exact evaluators are batched
  /// transparently.
  virtual void DecideBatch(const core::GaussianDistribution& query,
                           const la::Vector* const* objects, size_t count,
                           double delta, double theta, const SamplePool* pool,
                           char* decisions) {
    (void)pool;
    for (size_t i = 0; i < count; ++i) {
      decisions[i] =
          QualificationDecision(query, *objects[i], delta, theta) ? 1 : 0;
    }
  }

  /// Deadline/cancellation-aware DecideBatch: decides candidates in order
  /// until `control` fires, then marks every remaining candidate
  /// kDecideUndecided and returns. Decided entries are bit-identical to
  /// what the unbounded DecideBatch would have produced (the control only
  /// truncates work, it never alters it). The default checks the control
  /// between per-candidate decisions; sampling implementations override to
  /// also check inside a candidate (between Wilson blocks), bounding the
  /// overshoot past a deadline by one block instead of one candidate.
  virtual void DecideBatchBounded(const core::GaussianDistribution& query,
                                  const la::Vector* const* objects,
                                  size_t count, double delta, double theta,
                                  const SamplePool* pool,
                                  const common::QueryControl& control,
                                  char* states) {
    const bool bounded = !control.Unbounded();
    for (size_t i = 0; i < count; ++i) {
      if (bounded && control.ShouldStop()) {
        for (size_t j = i; j < count; ++j) states[j] = kDecideUndecided;
        return;
      }
      states[i] = QualificationDecision(query, *objects[i], delta, theta)
                      ? kDecideIncluded
                      : kDecideExcluded;
    }
    (void)pool;
  }

  /// Implementation name for reports ("monte-carlo", "imhof", ...).
  virtual const char* name() const = 0;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_PROBABILITY_EVALUATOR_H_
