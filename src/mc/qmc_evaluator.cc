#include "mc/qmc_evaluator.h"

#include <cassert>

#include "rng/halton.h"
#include "stats/special.h"

namespace gprq::mc {

double QuasiMonteCarloEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(object.dim() == query.dim());
  assert(query.dim() <= rng::HaltonSequence::kMaxDim);
  assert(delta >= 0.0);
  const double delta_sq = delta * delta;
  const size_t d = query.dim();

  rng::HaltonSequence halton(d, options_.seed);
  la::Vector u(d), z(d), x(d);
  uint64_t hits = 0;
  for (uint64_t i = 0; i < options_.samples; ++i) {
    halton.Next(u);
    for (size_t j = 0; j < d; ++j) {
      // Guard the open-interval requirement of the quantile.
      const double clipped = std::min(std::max(u[j], 1e-15), 1.0 - 1e-15);
      z[j] = stats::StandardNormalQuantile(clipped);
    }
    query.TransformStandard(z, x);
    if (la::SquaredDistance(x, object) <= delta_sq) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(options_.samples);
}

}  // namespace gprq::mc
