#ifndef GPRQ_MC_QMC_EVALUATOR_H_
#define GPRQ_MC_QMC_EVALUATOR_H_

#include <cstdint>

#include "mc/probability_evaluator.h"

namespace gprq::mc {

struct QmcOptions {
  uint64_t samples = 20000;
  uint64_t seed = 42;
};

/// Quasi-Monte-Carlo qualification probabilities: the paper's importance-
/// sampling estimator with the iid uniforms replaced by a randomized
/// Halton sequence. Uniforms map to standard normals through the exact
/// normal quantile and then through the Cholesky factor, so the sample
/// cloud is the same N(q, Σ) — but stratified, which cuts the integration
/// error roughly from O(n^{-1/2}) to ~O(n^{-1}) for the smooth-boundary
/// ball indicator (bench/mc_convergence quantifies it).
///
/// Supports dim <= rng::HaltonSequence::kMaxDim (16).
class QuasiMonteCarloEvaluator final : public ProbabilityEvaluator {
 public:
  using Options = QmcOptions;

  explicit QuasiMonteCarloEvaluator(Options options = Options())
      : options_(options) {}

  double QualificationProbability(const core::GaussianDistribution& query,
                                  const la::Vector& object,
                                  double delta) override;

  const char* name() const override { return "quasi-monte-carlo"; }

 private:
  Options options_;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_QMC_EVALUATOR_H_
