#include "mc/sample_pool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/stopwatch.h"
#include "mc/simd/kernels.h"
#include "obs/metrics.h"
#include "rng/halton.h"
#include "stats/special.h"

namespace gprq::mc {
namespace {

// Samples per kernel block (see mc/simd/kernels.h): the scratch accumulator
// (16 KB) plus one axis stream (16 KB) stay resident in L1/L2 while the
// block is swept once per dimension.
constexpr uint64_t kKernelBlock = simd::kKernelBlock;

// Sampling metrics, resolved once. Recording at the source keeps every
// consumer (per-candidate evaluators and the pooled Phase-3 path alike)
// on the same counters, so `samples_used / (decisions · pool size)` is the
// budget-utilization ratio regardless of which code path ran.
struct McMetrics {
  obs::Counter* pool_builds;
  obs::Counter* pool_samples_drawn;
  obs::Histogram* pool_build_nanos;
  obs::Counter* decisions;
  obs::Counter* samples_used;
  obs::Counter* early_stops;
  obs::Counter* undecided;
  obs::Counter* interrupted;
  obs::Counter* budget_exhausted;

  static const McMetrics& Get() {
    static const McMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return McMetrics{r.GetCounter("gprq.mc.pool_builds"),
                       r.GetCounter("gprq.mc.pool_samples_drawn"),
                       r.GetHistogram("gprq.mc.pool_build_nanos"),
                       r.GetCounter("gprq.mc.decisions"),
                       r.GetCounter("gprq.mc.samples_used"),
                       r.GetCounter("gprq.mc.early_stops"),
                       r.GetCounter("gprq.mc.undecided"),
                       r.GetCounter("gprq.deadline.interrupted_decisions"),
                       r.GetCounter("gprq.overload.sample_budget_exhausted")};
    }();
    return metrics;
  }
};

// splitmix64 finalizer, the mixing step behind QueryFingerprint.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t CanonicalDoubleBits(double v) {
  // -0.0 compares equal to +0.0 and samples identically, so both must
  // digest identically; v == 0.0 is true for both signs and the literal
  // 0.0 re-encodes as the +0.0 bit pattern. NaN never passes SPD
  // validation into a GaussianDistribution, but a digest must not depend
  // on which of the 2^52 NaN payloads an upstream bug produced — collapse
  // them all to the canonical quiet NaN.
  if (v == 0.0) v = 0.0;
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t QueryFingerprint(const core::GaussianDistribution& query) {
  // Mean then the full covariance, row-major. Canonicalized bit patterns:
  // two queries hash equal iff they are numerically identical — including
  // across bit-distinct encodings of the same value (-0.0 vs +0.0) — which
  // is the determinism contract (same query + same seed → same pool) and
  // the soundness precondition of the fingerprint-keyed result cache.
  uint64_t h = Mix64(query.dim());
  for (size_t i = 0; i < query.dim(); ++i) {
    h = Mix64(h ^ CanonicalDoubleBits(query.mean()[i]));
  }
  const la::Matrix& cov = query.covariance();
  for (size_t i = 0; i < cov.rows(); ++i) {
    for (size_t j = 0; j < cov.cols(); ++j) {
      h = Mix64(h ^ CanonicalDoubleBits(cov(i, j)));
    }
  }
  return h;
}

int WilsonCompare(uint64_t hits, uint64_t n, double theta, double z) {
  assert(n > 0);
  const double nf = static_cast<double>(n);
  const double p_hat = static_cast<double>(hits) / nf;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nf;
  const double center = (p_hat + z2 / (2.0 * nf)) / denom;
  const double half =
      z / denom *
      std::sqrt(p_hat * (1.0 - p_hat) / nf + z2 / (4.0 * nf * nf));
  if (center - half > theta) return 1;
  if (center + half < theta) return -1;
  return 0;
}

SamplePool::SamplePool(const core::GaussianDistribution& query,
                       uint64_t samples, rng::Random& random)
    : dim_(query.dim()),
      samples_(std::max<uint64_t>(samples, 1)),
      data_(dim_ * samples_) {
  ScopedTimer build_timer(McMetrics::Get().pool_build_nanos);
  // The draw order matches a per-candidate evaluator's: sample by sample.
  // Only the storage is transposed, one scatter per coordinate.
  la::Vector x(dim_);
  for (uint64_t i = 0; i < samples_; ++i) {
    query.Sample(random, x);
    for (size_t a = 0; a < dim_; ++a) data_[a * samples_ + i] = x[a];
  }
  McMetrics::Get().pool_builds->Add(1);
  McMetrics::Get().pool_samples_drawn->Add(samples_);
}

SamplePool::SamplePool(const core::GaussianDistribution& query,
                       uint64_t samples, uint64_t seed, PoolVariant variant)
    : dim_(query.dim()),
      samples_(std::max<uint64_t>(samples, 1)),
      data_(dim_ * samples_) {
  ScopedTimer build_timer(McMetrics::Get().pool_build_nanos);
  if (variant == PoolVariant::kHalton &&
      dim_ <= rng::HaltonSequence::kMaxDim) {
    // Randomized-Halton QMC: low-discrepancy uniforms → standard-normal
    // quantiles → the query's q + L·z transform, exactly the
    // QuasiMonteCarloEvaluator mapping, scattered into the SoA layout.
    rng::HaltonSequence halton(dim_, seed);
    la::Vector u(dim_), z(dim_), x(dim_);
    for (uint64_t i = 0; i < samples_; ++i) {
      halton.Next(u);
      for (size_t a = 0; a < dim_; ++a) {
        // Guard the open-interval requirement of the quantile.
        const double clipped = std::min(std::max(u[a], 1e-15), 1.0 - 1e-15);
        z[a] = stats::StandardNormalQuantile(clipped);
      }
      query.TransformStandard(z, x);
      for (size_t a = 0; a < dim_; ++a) data_[a * samples_ + i] = x[a];
    }
  } else {
    // Pseudo-random draws, bit-identical to the stream constructor seeded
    // the same way (also the d > kMaxDim fallback for kHalton).
    rng::Random random(seed);
    la::Vector x(dim_);
    for (uint64_t i = 0; i < samples_; ++i) {
      query.Sample(random, x);
      for (size_t a = 0; a < dim_; ++a) data_[a * samples_ + i] = x[a];
    }
  }
  McMetrics::Get().pool_builds->Add(1);
  McMetrics::Get().pool_samples_drawn->Add(samples_);
}

uint64_t SamplePool::CountWithin(const la::Vector& object, double delta_sq,
                                 uint64_t begin, uint64_t end) const {
  assert(object.dim() == dim_);
  assert(begin <= end && end <= samples_);
  // The block loop hands each ≤2048-sample slice to the dispatched kernel
  // (mc/simd): the widest vector ISA the CPU supports, every one
  // bit-compatible with the scalar reference, so the hit count — and every
  // Phase-3 decision built on it — is independent of the dispatch.
  const simd::CountFn kernel = simd::DispatchedCountKernel();
  const double* o = object.data();
  uint64_t hits = 0;
  for (uint64_t b = begin; b < end; b += kKernelBlock) {
    const size_t len = static_cast<size_t>(std::min(kKernelBlock, end - b));
    hits += kernel(data_.data() + b, samples_, dim_, o, delta_sq, len);
  }
  return hits;
}

SamplePool::Estimate SamplePool::EstimateProbability(const la::Vector& object,
                                                     double delta) const {
  const uint64_t hits = CountWithin(object, delta * delta, 0, samples_);
  Estimate est;
  est.samples = samples_;
  est.probability =
      static_cast<double>(hits) / static_cast<double>(samples_);
  est.std_error = std::sqrt(est.probability * (1.0 - est.probability) /
                            static_cast<double>(samples_));
  return est;
}

SamplePool::Decision SamplePool::Decide(const la::Vector& object, double delta,
                                        double theta,
                                        DecideOptions options) const {
  assert(options.block_samples > 0);
  const McMetrics& metrics = McMetrics::Get();
  metrics.decisions->Add(1);
  const double delta_sq = delta * delta;
  // Resolve the control once: unbounded controls never read the clock.
  const common::QueryControl* control =
      (options.control != nullptr && !options.control->Unbounded())
          ? options.control
          : nullptr;
  // A sample budget truncates the decision to a whole number of blocks so
  // every Wilson check lands at the same n as in an uncapped run — that
  // alignment is what makes capped decisions bit-identical to unloaded
  // ones (see DecideOptions::max_samples).
  uint64_t limit = samples_;
  if (options.max_samples > 0 && options.max_samples < samples_) {
    const uint64_t blocks =
        std::max<uint64_t>(options.max_samples / options.block_samples, 1);
    limit = std::min(samples_, blocks * options.block_samples);
  }
  uint64_t n = 0;
  uint64_t hits = 0;
  while (n < limit) {
    if (control != nullptr && control->ShouldStop()) {
      // Stopped mid-decision: report the work done but neither an early
      // stop nor an undecided fallback — the candidate stays *undecided*
      // in the degraded result, it did not "fall back" to an estimate.
      metrics.samples_used->Add(n);
      metrics.interrupted->Add(1);
      return {false, n, false, true};
    }
    const uint64_t end = std::min(n + options.block_samples, limit);
    hits += CountWithin(object, delta_sq, n, end);
    n = end;
    const int cmp = WilsonCompare(hits, n, theta, options.confidence_z);
    if (cmp != 0) {
      metrics.samples_used->Add(n);
      if (n < samples_) metrics.early_stops->Add(1);
      return {cmp > 0, n, false};
    }
  }
  metrics.samples_used->Add(n);
  if (limit < samples_) {
    // Budget spent with θ inside the interval: the unloaded run would have
    // kept sampling, so guessing here could disagree with it. Surface as
    // undecided instead — ids stay exact under brownout.
    metrics.budget_exhausted->Add(1);
    return {false, n, true, false, true};
  }
  // Pool exhausted with θ inside the interval: fall back to the point
  // estimate, as a fixed-budget sampler would.
  metrics.undecided->Add(1);
  return {static_cast<double>(hits) >= theta * static_cast<double>(n), n,
          true};
}

SamplePool::Decision SamplePool::Decide(const la::Vector& object, double delta,
                                        double theta) const {
  return Decide(object, delta, theta, DecideOptions());
}

}  // namespace gprq::mc
