#ifndef GPRQ_MC_SAMPLE_POOL_H_
#define GPRQ_MC_SAMPLE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "core/gaussian.h"
#include "la/vector.h"
#include "mc/pool_variant.h"
#include "rng/random.h"

namespace gprq::mc {

/// Sign of the Wilson-score confidence interval of hits/n relative to θ at
/// z standard errors: +1 when the whole interval lies above θ, −1 when it
/// lies below, 0 when θ is inside (undecided). The Wilson interval is robust
/// when the running estimate sits at 0 or 1 — common, since most candidates
/// are far from the θ boundary. Shared by AdaptiveMonteCarloEvaluator and
/// SamplePool::Decide so both make identical sequential decisions.
int WilsonCompare(uint64_t hits, uint64_t n, double theta, double z);

/// A deterministic 64-bit digest of the query distribution (mean and
/// covariance bit patterns, splitmix-mixed). Sampling evaluators fold it
/// into their pool-stream seed so a query's shared sample pool depends only
/// on (evaluator seed, query) — not on how many pools the evaluator built
/// before. That makes Phase-3 results reproducible per query: resubmitting
/// a query to a long-lived executor, or skipping a neighboring query (it
/// expired, it was cancelled), leaves every other query's samples — and
/// therefore its decisions — bit-identical.
uint64_t QueryFingerprint(const core::GaussianDistribution& query);

/// The bit pattern QueryFingerprint mixes for one double: the raw IEEE-754
/// encoding after canonicalization — -0.0 normalizes to +0.0 (they are the
/// same real number and sample identically) and every NaN payload collapses
/// to the canonical quiet NaN. Exposed so cache keys and tests canonicalize
/// exactly the way the fingerprint does.
uint64_t CanonicalDoubleBits(double v);

/// A per-query pool of samples from the query Gaussian N(q, Σ), shared by
/// every Phase-3 candidate of that query.
///
/// Every candidate of one query integrates against the same distribution,
/// so the expensive part of the paper's Monte-Carlo Phase 3 — drawing n
/// samples, an O(d²) `q + L·z` transform each — needs to happen once per
/// *query*, not once per *candidate*. The pool amortizes it: construction
/// draws the samples once; per candidate only the O(d) squared-distance
/// count remains.
///
/// Layout is dimension-major structure-of-arrays: coordinate a of all n
/// samples is contiguous at data()[a·n .. a·n + n). The count kernel walks
/// one axis stream at a time over a cache-sized block of samples,
/// accumulating squared distances in a small scratch array — plain loops a
/// compiler auto-vectorizes, no intrinsics.
///
/// A pool is immutable after construction, so one pool can be read by any
/// number of worker threads concurrently (the fan-out unit in
/// exec::BatchExecutor is a chunk of candidates, all evaluated against the
/// same shared pool). Because the samples are fixed per query, Phase-3
/// decisions no longer depend on which worker's RNG evaluates which
/// candidate — results are bit-identical for any thread count.
class SamplePool {
 public:
  /// Draws `samples` (at least 1 is enforced) points from `query` using
  /// `random`; O(samples · d²) once, the cost this class amortizes.
  SamplePool(const core::GaussianDistribution& query, uint64_t samples,
             rng::Random& random);

  /// Variant-selecting constructor, seeded instead of stream-fed so both
  /// variants are a pure function of (seed, query):
  /// PoolVariant::kPseudoRandom draws from rng::Random(seed) —
  /// bit-identical to the stream constructor above with the same seed —
  /// and PoolVariant::kHalton draws a randomized Halton sequence (rotation
  /// seeded with `seed`) mapped through the standard-normal quantile and
  /// the query's standard transform. Dimensions above
  /// rng::HaltonSequence::kMaxDim fall back to kPseudoRandom.
  SamplePool(const core::GaussianDistribution& query, uint64_t samples,
             uint64_t seed, PoolVariant variant);

  size_t dim() const { return dim_; }
  uint64_t size() const { return samples_; }

  /// Coordinate `axis` of all samples, contiguous (length size()).
  const double* axis(size_t axis) const { return data_.data() + axis * samples_; }

  /// Number of samples in [begin, end) within squared Euclidean distance
  /// `delta_sq` of `object`. Thread-safe (read-only; scratch is stack-local).
  uint64_t CountWithin(const la::Vector& object, double delta_sq,
                       uint64_t begin, uint64_t end) const;

  /// Full-pool estimate of Pr(‖x − o‖² ≤ δ²) with its standard error
  /// sqrt(p(1−p)/n).
  struct Estimate {
    double probability = 0.0;
    double std_error = 0.0;
    uint64_t samples = 0;
  };
  Estimate EstimateProbability(const la::Vector& object, double delta) const;

  struct DecideOptions {
    /// Samples counted between confidence checks. Blocks are large so the
    /// SoA kernel stays vectorized between checks (the adaptive evaluator's
    /// 256-sample rounds would spend more time checking than counting).
    uint64_t block_samples = 4096;
    /// Confidence half-width in standard errors (see AdaptiveMonteCarlo).
    double confidence_z = 4.0;
    /// Optional deadline/cancellation checked between blocks (never inside
    /// the vectorized count). Null means unbounded — no clock reads.
    const common::QueryControl* control = nullptr;
    /// Per-decision sample cap (0 = the whole pool), the brownout knob.
    /// The cap is rounded down to a whole number of blocks (at least one)
    /// so every confidence check of a capped run happens at the same n as
    /// in an uncapped run over the same pool: a capped decision that
    /// separates is bit-identical to the unloaded answer, and one that
    /// does not comes back budget_exhausted — never a cheaper guess.
    uint64_t max_samples = 0;
  };
  struct Decision {
    /// The Phase-3 answer: qualification probability ≥ θ.
    bool qualifies = false;
    /// Samples consumed before the interval separated (or the pool size).
    uint64_t samples_used = 0;
    /// True when the pool was exhausted with θ still inside the interval;
    /// `qualifies` then falls back to the full-pool point estimate.
    bool undecided = false;
    /// True when DecideOptions::control stopped the decision before it
    /// resolved. `qualifies` is then meaningless and the candidate must be
    /// surfaced as undecided, never guessed — the degradation contract.
    bool interrupted = false;
    /// True when DecideOptions::max_samples ran out with θ still inside
    /// the interval. Like `interrupted`, `qualifies` is meaningless and
    /// the candidate must surface as undecided: a brownout answer may
    /// shrink, but it never lies.
    bool budget_exhausted = false;
  };
  /// Block-wise early-terminating decision: counts block_samples at a time
  /// and stops as soon as the Wilson interval of the running hit rate
  /// separates from θ — the AdaptiveMonteCarloEvaluator statistics, over
  /// the shared pool. Thread-safe.
  Decision Decide(const la::Vector& object, double delta, double theta,
                  DecideOptions options) const;
  Decision Decide(const la::Vector& object, double delta,
                  double theta) const;

 private:
  size_t dim_;
  uint64_t samples_;
  std::vector<double> data_;  // dimension-major: axis a at [a·n, a·n + n)
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_SAMPLE_POOL_H_
