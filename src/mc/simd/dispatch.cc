// Runtime kernel dispatch: detect the widest vector ISA the CPU supports
// (among those compiled in), honor a GPRQ_SIMD_KERNEL override, and cache
// the choice process-wide. Detection runs once — the hot path costs one
// static pointer load.

#include "mc/simd/kernels.h"

#include <cstdlib>
#include <cstring>

#include "mc/simd/kernels_internal.h"

namespace gprq::mc::simd {

namespace {

bool CpuSupports(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
#if defined(GPRQ_SIMD_HAVE_AVX)
    case KernelKind::kAvx2:
      return __builtin_cpu_supports("avx2");
    case KernelKind::kAvx512:
      return __builtin_cpu_supports("avx512f");
#endif
#if defined(GPRQ_SIMD_HAVE_NEON)
    case KernelKind::kNeon:
      return true;  // NEON is baseline on aarch64
#endif
    default:
      return false;
  }
}

KernelKind DetectKind() {
  // Widest first; CpuSupports already folds in what the build compiled.
  if (CpuSupports(KernelKind::kAvx512)) return KernelKind::kAvx512;
  if (CpuSupports(KernelKind::kAvx2)) return KernelKind::kAvx2;
  if (CpuSupports(KernelKind::kNeon)) return KernelKind::kNeon;
  return KernelKind::kScalar;
}

KernelKind ResolveKind() {
  return detail::ResolveRequest(std::getenv("GPRQ_SIMD_KERNEL"));
}

}  // namespace

namespace detail {

KernelKind ResolveRequest(const char* request) {
  const KernelKind detected = DetectKind();
  if (request == nullptr || request[0] == '\0') return detected;
  KernelKind requested = detected;
  if (std::strcmp(request, "scalar") == 0) {
    requested = KernelKind::kScalar;
  } else if (std::strcmp(request, "avx2") == 0) {
    requested = KernelKind::kAvx2;
  } else if (std::strcmp(request, "avx512") == 0) {
    requested = KernelKind::kAvx512;
  } else if (std::strcmp(request, "neon") == 0) {
    requested = KernelKind::kNeon;
  }
  // An unsupported or unrecognized request degrades to the detected best —
  // an env typo must never crash the server or silently run illegal
  // instructions.
  return KernelSupported(requested) ? requested : detected;
}

}  // namespace detail

bool KernelSupported(KernelKind kind) { return CpuSupports(kind); }

CountFn CountKernel(KernelKind kind) {
  if (!KernelSupported(kind)) return nullptr;
  switch (kind) {
    case KernelKind::kScalar:
      return &detail::CountScalar;
#if defined(GPRQ_SIMD_HAVE_AVX)
    case KernelKind::kAvx2:
      return &detail::CountAvx2;
    case KernelKind::kAvx512:
      return &detail::CountAvx512;
#endif
#if defined(GPRQ_SIMD_HAVE_NEON)
    case KernelKind::kNeon:
      return &detail::CountNeon;
#endif
    default:
      return nullptr;
  }
}

FusedCountFn FusedKernel(KernelKind kind) {
  if (!KernelSupported(kind)) return nullptr;
  switch (kind) {
    case KernelKind::kScalar:
      return &detail::FusedCountScalar;
#if defined(GPRQ_SIMD_HAVE_AVX)
    case KernelKind::kAvx2:
      return &detail::FusedCountAvx2;
    case KernelKind::kAvx512:
      return &detail::FusedCountAvx512;
#endif
#if defined(GPRQ_SIMD_HAVE_NEON)
    case KernelKind::kNeon:
      return &detail::FusedCountNeon;
#endif
    default:
      return nullptr;
  }
}

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kAvx512:
      return "avx512";
    case KernelKind::kNeon:
      return "neon";
  }
  return "unknown";
}

KernelKind DispatchedKind() {
  static const KernelKind kind = ResolveKind();
  return kind;
}

CountFn DispatchedCountKernel() {
  static const CountFn fn = CountKernel(DispatchedKind());
  return fn;
}

FusedCountFn DispatchedFusedKernel() {
  static const FusedCountFn fn = FusedKernel(DispatchedKind());
  return fn;
}

}  // namespace gprq::mc::simd
