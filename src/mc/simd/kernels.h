#ifndef GPRQ_MC_SIMD_KERNELS_H_
#define GPRQ_MC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace gprq::mc::simd {

/// Samples per kernel block: the scratch accumulator (16 KB) plus one axis
/// stream (16 KB) stay resident in L1/L2 while the block is swept once per
/// dimension. SamplePool::CountWithin feeds the kernels block-sized slices;
/// a kernel call never sees more than kKernelBlock samples.
inline constexpr uint64_t kKernelBlock = 2048;

/// The explicit kernel implementations. kScalar is the reference: plain
/// loops compiled with -ffp-contract=off (no FMA contraction), so its
/// operation order — subtract, multiply, add, in sample order — is pinned
/// down exactly. Every vector kernel performs the same operations in the
/// same per-sample order, only lane-parallel, and also without FMA; IEEE-754
/// makes each lane's result bit-identical to the scalar kernel's. That
/// bit-compatibility is a tested contract, not an aspiration: Phase-3
/// decisions must not depend on which kernel the CPU dispatched (batch
/// determinism across GPRQ_THREADS and across hosts is a standing contract).
enum class KernelKind {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// Squared-distance-plus-count over one block of a dimension-major SoA
/// sample pool. `data` points at coordinate 0 of the first sample of the
/// block; coordinate a of sample i is data[a * stride + i]. Returns the
/// number of samples i in [0, len) with Σ_a (data[a·stride+i] − object[a])²
/// ≤ delta_sq. len ≤ kKernelBlock.
using CountFn = uint64_t (*)(const double* data, size_t stride, size_t dim,
                             const double* object, double delta_sq,
                             size_t len);

/// Fused Cholesky transform-and-count over one block of *standard-normal*
/// draws: z is dimension-major SoA like CountFn's data, chol_lower is the
/// row-major d×d lower Cholesky factor of the query covariance (upper
/// triangle ignored), mean is the query mean. Each sample is transformed
/// x = mean + L·z in the exact accumulation order of
/// core::GaussianDistribution::Sample (for each coordinate a, add
/// L(a,j)·z_j for j = 0..a in increasing j), then counted against
/// (object, delta_sq) like CountFn. This trades the pool's O(n·d) transformed
/// storage for O(n·d) standard-normal storage reusable across queries of the
/// same dimension; it is benchmarked and tested standalone, not yet wired
/// into SamplePool.
using FusedCountFn = uint64_t (*)(const double* z, size_t stride, size_t dim,
                                  const double* chol_lower, const double* mean,
                                  const double* object, double delta_sq,
                                  size_t len);

/// True when `kind` was compiled in AND the running CPU can execute it.
/// kScalar is always supported.
bool KernelSupported(KernelKind kind);

/// Kernel for `kind`, or nullptr when unsupported (tests iterate kinds and
/// skip nulls).
CountFn CountKernel(KernelKind kind);
FusedCountFn FusedKernel(KernelKind kind);

/// Stable lowercase name ("scalar", "avx2", "avx512", "neon") for logs,
/// bench JSON and the CLI.
const char* KernelName(KernelKind kind);

/// The kind the process dispatches to, resolved once on first use: the
/// widest supported vector kernel, overridable with GPRQ_SIMD_KERNEL=
/// scalar|avx2|avx512|neon (an unsupported request falls back to the
/// detected best — never a crash). A GPRQ_SIMD=OFF build compiles only the
/// scalar kernel and always dispatches it.
KernelKind DispatchedKind();

/// CountKernel(DispatchedKind()) / FusedKernel(DispatchedKind()), cached.
/// Never null.
CountFn DispatchedCountKernel();
FusedCountFn DispatchedFusedKernel();

}  // namespace gprq::mc::simd

#endif  // GPRQ_MC_SIMD_KERNELS_H_
