// AVX2 kernels (4 doubles per lane group). Compiled with -mavx2
// -ffp-contract=off; only dispatch.cc calls in here, after
// __builtin_cpu_supports("avx2") confirmed the ISA.
//
// Bit-compatibility with the scalar kernel is by construction: each lane
// performs the identical subtract, multiply, add sequence on the identical
// operands (vsubpd/vmulpd/vaddpd round exactly like their scalar
// counterparts), and the scalar tail below runs the same three-op sequence.
// No FMA anywhere — vfmadd rounds once where mul+add rounds twice, which
// would break the contract.

#include "mc/simd/kernels_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "mc/simd/kernels.h"

namespace gprq::mc::simd::detail {

uint64_t CountAvx2(const double* data, size_t stride, size_t dim,
                   const double* object, double delta_sq, size_t len) {
  alignas(32) double acc[kKernelBlock];
  {
    const double* x = data;
    const __m256d o0 = _mm256_set1_pd(object[0]);
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const __m256d t = _mm256_sub_pd(_mm256_loadu_pd(x + i), o0);
      _mm256_store_pd(acc + i, _mm256_mul_pd(t, t));
    }
    for (; i < len; ++i) {
      const double t = x[i] - object[0];
      acc[i] = t * t;
    }
  }
  for (size_t a = 1; a < dim; ++a) {
    const double* x = data + a * stride;
    const __m256d oa = _mm256_set1_pd(object[a]);
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const __m256d t = _mm256_sub_pd(_mm256_loadu_pd(x + i), oa);
      const __m256d sq = _mm256_mul_pd(t, t);
      _mm256_store_pd(acc + i, _mm256_add_pd(_mm256_load_pd(acc + i), sq));
    }
    for (; i < len; ++i) {
      const double t = x[i] - object[a];
      acc[i] += t * t;
    }
  }
  uint64_t hits = 0;
  const __m256d threshold = _mm256_set1_pd(delta_sq);
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d le =
        _mm256_cmp_pd(_mm256_load_pd(acc + i), threshold, _CMP_LE_OQ);
    hits += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(le))));
  }
  for (; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

uint64_t FusedCountAvx2(const double* z, size_t stride, size_t dim,
                        const double* chol_lower, const double* mean,
                        const double* object, double delta_sq, size_t len) {
  alignas(32) double acc[kKernelBlock];
  for (size_t a = 0; a < dim; ++a) {
    const double* row = chol_lower + a * dim;
    const __m256d ma = _mm256_set1_pd(mean[a]);
    const __m256d oa = _mm256_set1_pd(object[a]);
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      __m256d y = ma;
      for (size_t j = 0; j <= a; ++j) {
        const __m256d lj = _mm256_set1_pd(row[j]);
        const __m256d zj = _mm256_loadu_pd(z + j * stride + i);
        y = _mm256_add_pd(y, _mm256_mul_pd(lj, zj));
      }
      const __m256d t = _mm256_sub_pd(y, oa);
      const __m256d sq = _mm256_mul_pd(t, t);
      if (a == 0) {
        _mm256_store_pd(acc + i, sq);
      } else {
        _mm256_store_pd(acc + i, _mm256_add_pd(_mm256_load_pd(acc + i), sq));
      }
    }
    for (; i < len; ++i) {
      double y = mean[a];
      for (size_t j = 0; j <= a; ++j) {
        y += row[j] * z[j * stride + i];
      }
      const double t = y - object[a];
      if (a == 0) {
        acc[i] = t * t;
      } else {
        acc[i] += t * t;
      }
    }
  }
  uint64_t hits = 0;
  const __m256d threshold = _mm256_set1_pd(delta_sq);
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d le =
        _mm256_cmp_pd(_mm256_load_pd(acc + i), threshold, _CMP_LE_OQ);
    hits += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(le))));
  }
  for (; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

}  // namespace gprq::mc::simd::detail

#endif  // __AVX2__
