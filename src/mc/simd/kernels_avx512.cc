// AVX-512F kernels (8 doubles per lane group). Compiled with -mavx512f
// -ffp-contract=off; only dispatch.cc calls in here, after
// __builtin_cpu_supports("avx512f"). Same bit-compatibility construction as
// the AVX2 kernel: identical per-lane subtract/multiply/add, no FMA, and the
// comparison count comes from the mask register's popcount.

#include "mc/simd/kernels_internal.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "mc/simd/kernels.h"

namespace gprq::mc::simd::detail {

uint64_t CountAvx512(const double* data, size_t stride, size_t dim,
                     const double* object, double delta_sq, size_t len) {
  alignas(64) double acc[kKernelBlock];
  {
    const double* x = data;
    const __m512d o0 = _mm512_set1_pd(object[0]);
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m512d t = _mm512_sub_pd(_mm512_loadu_pd(x + i), o0);
      _mm512_store_pd(acc + i, _mm512_mul_pd(t, t));
    }
    for (; i < len; ++i) {
      const double t = x[i] - object[0];
      acc[i] = t * t;
    }
  }
  for (size_t a = 1; a < dim; ++a) {
    const double* x = data + a * stride;
    const __m512d oa = _mm512_set1_pd(object[a]);
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m512d t = _mm512_sub_pd(_mm512_loadu_pd(x + i), oa);
      const __m512d sq = _mm512_mul_pd(t, t);
      _mm512_store_pd(acc + i, _mm512_add_pd(_mm512_load_pd(acc + i), sq));
    }
    for (; i < len; ++i) {
      const double t = x[i] - object[a];
      acc[i] += t * t;
    }
  }
  uint64_t hits = 0;
  const __m512d threshold = _mm512_set1_pd(delta_sq);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __mmask8 le =
        _mm512_cmp_pd_mask(_mm512_load_pd(acc + i), threshold, _CMP_LE_OQ);
    hits += static_cast<uint64_t>(__builtin_popcount(le));
  }
  for (; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

uint64_t FusedCountAvx512(const double* z, size_t stride, size_t dim,
                          const double* chol_lower, const double* mean,
                          const double* object, double delta_sq, size_t len) {
  alignas(64) double acc[kKernelBlock];
  for (size_t a = 0; a < dim; ++a) {
    const double* row = chol_lower + a * dim;
    const __m512d ma = _mm512_set1_pd(mean[a]);
    const __m512d oa = _mm512_set1_pd(object[a]);
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      __m512d y = ma;
      for (size_t j = 0; j <= a; ++j) {
        const __m512d lj = _mm512_set1_pd(row[j]);
        const __m512d zj = _mm512_loadu_pd(z + j * stride + i);
        y = _mm512_add_pd(y, _mm512_mul_pd(lj, zj));
      }
      const __m512d t = _mm512_sub_pd(y, oa);
      const __m512d sq = _mm512_mul_pd(t, t);
      if (a == 0) {
        _mm512_store_pd(acc + i, sq);
      } else {
        _mm512_store_pd(acc + i, _mm512_add_pd(_mm512_load_pd(acc + i), sq));
      }
    }
    for (; i < len; ++i) {
      double y = mean[a];
      for (size_t j = 0; j <= a; ++j) {
        y += row[j] * z[j * stride + i];
      }
      const double t = y - object[a];
      if (a == 0) {
        acc[i] = t * t;
      } else {
        acc[i] += t * t;
      }
    }
  }
  uint64_t hits = 0;
  const __m512d threshold = _mm512_set1_pd(delta_sq);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __mmask8 le =
        _mm512_cmp_pd_mask(_mm512_load_pd(acc + i), threshold, _CMP_LE_OQ);
    hits += static_cast<uint64_t>(__builtin_popcount(le));
  }
  for (; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

}  // namespace gprq::mc::simd::detail

#endif  // __AVX512F__
