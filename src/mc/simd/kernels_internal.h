#ifndef GPRQ_MC_SIMD_KERNELS_INTERNAL_H_
#define GPRQ_MC_SIMD_KERNELS_INTERNAL_H_

// Linkage between dispatch.cc and the per-ISA kernel translation units.
// Which of these symbols exist is decided by the build: src/CMakeLists.txt
// adds kernels_avx2.cc / kernels_avx512.cc only on x86-64 with GPRQ_SIMD=ON
// (kernels_neon.cc only on aarch64) and tells dispatch.cc so with
// GPRQ_SIMD_HAVE_AVX / GPRQ_SIMD_HAVE_NEON, so no reference to an
// uncompiled symbol can leak regardless of what the compiler's own target
// macros say.

#include <cstddef>
#include <cstdint>

#include "mc/simd/kernels.h"

namespace gprq::mc::simd::detail {

/// The GPRQ_SIMD_KERNEL override resolution (a null/empty/unknown/
/// unsupported request falls back to the detected best), separated from the
/// getenv so tests can exercise every branch without mutating process
/// environment behind the cached dispatch.
KernelKind ResolveRequest(const char* request);

uint64_t CountScalar(const double* data, size_t stride, size_t dim,
                     const double* object, double delta_sq, size_t len);
uint64_t FusedCountScalar(const double* z, size_t stride, size_t dim,
                          const double* chol_lower, const double* mean,
                          const double* object, double delta_sq, size_t len);

#if defined(GPRQ_SIMD_HAVE_AVX) || defined(__AVX2__) || defined(__AVX512F__)
uint64_t CountAvx2(const double* data, size_t stride, size_t dim,
                   const double* object, double delta_sq, size_t len);
uint64_t FusedCountAvx2(const double* z, size_t stride, size_t dim,
                        const double* chol_lower, const double* mean,
                        const double* object, double delta_sq, size_t len);
uint64_t CountAvx512(const double* data, size_t stride, size_t dim,
                     const double* object, double delta_sq, size_t len);
uint64_t FusedCountAvx512(const double* z, size_t stride, size_t dim,
                          const double* chol_lower, const double* mean,
                          const double* object, double delta_sq, size_t len);
#endif

#if defined(GPRQ_SIMD_HAVE_NEON) || defined(__ARM_NEON)
uint64_t CountNeon(const double* data, size_t stride, size_t dim,
                   const double* object, double delta_sq, size_t len);
uint64_t FusedCountNeon(const double* z, size_t stride, size_t dim,
                        const double* chol_lower, const double* mean,
                        const double* object, double delta_sq, size_t len);
#endif

}  // namespace gprq::mc::simd::detail

#endif  // GPRQ_MC_SIMD_KERNELS_INTERNAL_H_
