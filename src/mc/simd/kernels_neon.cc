// NEON kernels (2 doubles per lane group), the aarch64 fallback. NEON is
// baseline on aarch64 so no extra -m flags, but the TU is still compiled
// with -ffp-contract=off: vsubq/vmulq/vaddq round like scalar ops, and the
// compiler must not re-fuse the explicit mul+add into vfmaq.

#include "mc/simd/kernels_internal.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "mc/simd/kernels.h"

namespace gprq::mc::simd::detail {

namespace {

inline uint64_t CountLanesLe(float64x2_t acc, float64x2_t threshold) {
  // vcleq_f64 yields all-ones per qualifying lane; shifting down to bit 0
  // turns each lane into 0/1 for a horizontal add.
  const uint64x2_t le = vcleq_f64(acc, threshold);
  return vaddvq_u64(vshrq_n_u64(le, 63));
}

}  // namespace

uint64_t CountNeon(const double* data, size_t stride, size_t dim,
                   const double* object, double delta_sq, size_t len) {
  alignas(16) double acc[kKernelBlock];
  {
    const double* x = data;
    const float64x2_t o0 = vdupq_n_f64(object[0]);
    size_t i = 0;
    for (; i + 2 <= len; i += 2) {
      const float64x2_t t = vsubq_f64(vld1q_f64(x + i), o0);
      vst1q_f64(acc + i, vmulq_f64(t, t));
    }
    for (; i < len; ++i) {
      const double t = x[i] - object[0];
      acc[i] = t * t;
    }
  }
  for (size_t a = 1; a < dim; ++a) {
    const double* x = data + a * stride;
    const float64x2_t oa = vdupq_n_f64(object[a]);
    size_t i = 0;
    for (; i + 2 <= len; i += 2) {
      const float64x2_t t = vsubq_f64(vld1q_f64(x + i), oa);
      const float64x2_t sq = vmulq_f64(t, t);
      vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), sq));
    }
    for (; i < len; ++i) {
      const double t = x[i] - object[a];
      acc[i] += t * t;
    }
  }
  uint64_t hits = 0;
  const float64x2_t threshold = vdupq_n_f64(delta_sq);
  size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    hits += CountLanesLe(vld1q_f64(acc + i), threshold);
  }
  for (; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

uint64_t FusedCountNeon(const double* z, size_t stride, size_t dim,
                        const double* chol_lower, const double* mean,
                        const double* object, double delta_sq, size_t len) {
  alignas(16) double acc[kKernelBlock];
  for (size_t a = 0; a < dim; ++a) {
    const double* row = chol_lower + a * dim;
    const float64x2_t ma = vdupq_n_f64(mean[a]);
    const float64x2_t oa = vdupq_n_f64(object[a]);
    size_t i = 0;
    for (; i + 2 <= len; i += 2) {
      float64x2_t y = ma;
      for (size_t j = 0; j <= a; ++j) {
        const float64x2_t lj = vdupq_n_f64(row[j]);
        const float64x2_t zj = vld1q_f64(z + j * stride + i);
        y = vaddq_f64(y, vmulq_f64(lj, zj));
      }
      const float64x2_t t = vsubq_f64(y, oa);
      const float64x2_t sq = vmulq_f64(t, t);
      if (a == 0) {
        vst1q_f64(acc + i, sq);
      } else {
        vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), sq));
      }
    }
    for (; i < len; ++i) {
      double y = mean[a];
      for (size_t j = 0; j <= a; ++j) {
        y += row[j] * z[j * stride + i];
      }
      const double t = y - object[a];
      if (a == 0) {
        acc[i] = t * t;
      } else {
        acc[i] += t * t;
      }
    }
  }
  uint64_t hits = 0;
  const float64x2_t threshold = vdupq_n_f64(delta_sq);
  size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    hits += CountLanesLe(vld1q_f64(acc + i), threshold);
  }
  for (; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

}  // namespace gprq::mc::simd::detail

#endif  // __aarch64__ && __ARM_NEON
