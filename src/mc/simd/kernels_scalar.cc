// Reference kernels. This translation unit is compiled with
// -ffp-contract=off (see src/CMakeLists.txt): the subtract / multiply / add
// sequence below must stay three rounded IEEE-754 operations, never a fused
// multiply-add, because the vector kernels replicate exactly that sequence
// per lane and the bit-compatibility contract is asserted by test.

#include "mc/simd/kernels_internal.h"

#include "mc/simd/kernels.h"

namespace gprq::mc::simd::detail {

uint64_t CountScalar(const double* data, size_t stride, size_t dim,
                     const double* object, double delta_sq, size_t len) {
  double acc[kKernelBlock];
  {
    const double* x = data;  // axis 0 initializes acc
    const double o0 = object[0];
    for (size_t i = 0; i < len; ++i) {
      const double t = x[i] - o0;
      acc[i] = t * t;
    }
  }
  for (size_t a = 1; a < dim; ++a) {
    const double* x = data + a * stride;
    const double oa = object[a];
    for (size_t i = 0; i < len; ++i) {
      const double t = x[i] - oa;
      acc[i] += t * t;
    }
  }
  uint64_t hits = 0;
  for (size_t i = 0; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

uint64_t FusedCountScalar(const double* z, size_t stride, size_t dim,
                          const double* chol_lower, const double* mean,
                          const double* object, double delta_sq, size_t len) {
  double acc[kKernelBlock];
  // Coordinate a of sample i is mean[a] + Σ_{j<=a} L(a,j)·z_j[i], accumulated
  // in increasing j — the exact order of GaussianDistribution::Sample, so a
  // fused count agrees bit-for-bit with counting a pre-transformed pool
  // built from the same standard-normal draws (when neither path contracts
  // to FMA).
  for (size_t a = 0; a < dim; ++a) {
    const double* row = chol_lower + a * dim;
    const double ma = mean[a];
    const double oa = object[a];
    for (size_t i = 0; i < len; ++i) {
      double y = ma;
      for (size_t j = 0; j <= a; ++j) {
        y += row[j] * z[j * stride + i];
      }
      const double t = y - oa;
      if (a == 0) {
        acc[i] = t * t;
      } else {
        acc[i] += t * t;
      }
    }
  }
  uint64_t hits = 0;
  for (size_t i = 0; i < len; ++i) hits += acc[i] <= delta_sq;
  return hits;
}

}  // namespace gprq::mc::simd::detail
