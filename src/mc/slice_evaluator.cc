#include "mc/slice_evaluator.h"

#include <cassert>
#include <cmath>
#include <algorithm>

#include "stats/special.h"

namespace gprq::mc {

namespace {

/// φ(z), the standard normal density.
double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

struct SliceIntegrand {
  double s1, s2;  // axis scales
  double c1, c2;  // object coordinates in the eigen frame
  double delta;

  double operator()(double z1) const {
    const double u = s1 * z1 - c1;
    const double rest = delta * delta - u * u;
    if (rest <= 0.0) return 0.0;
    const double w = std::sqrt(rest);
    const double hi = (c2 + w) / s2;
    const double lo = (c2 - w) / s2;
    return NormalPdf(z1) * (stats::StandardNormalCdf(hi) -
                            stats::StandardNormalCdf(lo));
  }
};

double AdaptiveSimpson(const SliceIntegrand& f, double a, double b,
                       double fa, double fm, double fb, double whole,
                       double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpson(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         AdaptiveSimpson(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double Slice2DEvaluator::QualificationProbability(
    const core::GaussianDistribution& query, const la::Vector& object,
    double delta) {
  assert(query.dim() == 2);
  assert(object.dim() == 2);
  assert(delta >= 0.0);
  if (delta == 0.0) return 0.0;

  SliceIntegrand f;
  f.s1 = query.axis_scales()[0];
  f.s2 = query.axis_scales()[1];
  const la::Vector c = query.ToEigenFrame(object);
  f.c1 = c[0];
  f.c2 = c[1];
  f.delta = delta;

  // Finite support of the outer variable: |s1·z1 − c1| <= δ, further
  // clipped to the standard normal's effective support (φ(12) ~ 2e-32).
  const double a = std::max((f.c1 - delta) / f.s1, -12.0);
  const double b = std::min((f.c1 + delta) / f.s1, 12.0);
  if (a >= b) return 0.0;

  // Pre-partition into panels no wider than 0.5 so a peak concentrated
  // near one edge (elongated covariances put most of the mass in a tiny
  // z1 sliver) cannot slip between the first Simpson samples; adaptive
  // refinement then handles the √-shaped section edges.
  const int panels =
      std::max(4, static_cast<int>(std::ceil((b - a) / 0.5)));
  const double tol = options_.tolerance / panels;
  double integral = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double lo = a + (b - a) * p / panels;
    const double hi = a + (b - a) * (p + 1) / panels;
    const double m = 0.5 * (lo + hi);
    const double flo = f(lo);
    const double fhi = f(hi);
    const double fm = f(m);
    const double whole = (hi - lo) / 6.0 * (flo + 4.0 * fm + fhi);
    integral += AdaptiveSimpson(f, lo, hi, flo, fm, fhi, whole, tol,
                                options_.max_depth);
  }
  return integral;
}

}  // namespace gprq::mc
