#ifndef GPRQ_MC_SLICE_EVALUATOR_H_
#define GPRQ_MC_SLICE_EVALUATOR_H_

#include "mc/probability_evaluator.h"

namespace gprq::mc {

/// Exact 2-D qualification probabilities by one-dimensional slice
/// integration — a third, independent numerical route (besides Monte Carlo
/// and Imhof) used to cross-validate the others and as a very fast Phase-3
/// backend for the planar case.
///
/// Derivation: whiten with z = E diag(1/s) Eᵀ (x − q); the δ-ball around o
/// becomes the ellipse Σ (s_i z_i − c_i)² ≤ δ², and for each z₁ the z₂
/// section is an interval whose standard-normal mass is a Φ difference.
/// The outer integral over z₁ runs through adaptive Simpson on
/// φ(z₁)·[Φ(b(z₁)) − Φ(a(z₁))], with finite support
/// |s₁z₁ − c₁| ≤ δ. Accuracy ~1e-10; cost a few hundred Φ evaluations.
///
/// Only valid for dim == 2 (asserts in debug builds; returns garbage-free
/// exact values only there).
class Slice2DEvaluator final : public ProbabilityEvaluator {
 public:
  struct Options {
    double tolerance;
    int max_depth;
  };

  explicit Slice2DEvaluator(Options options = {1e-10, 40})
      : options_(options) {}

  double QualificationProbability(const core::GaussianDistribution& query,
                                  const la::Vector& object,
                                  double delta) override;

  const char* name() const override { return "slice-2d"; }

 private:
  Options options_;
};

}  // namespace gprq::mc

#endif  // GPRQ_MC_SLICE_EVALUATOR_H_
