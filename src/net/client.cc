#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "rng/random.h"

namespace gprq::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status Timeout(const char* what) {
  return Status::DeadlineExceeded(std::string(what) + " timed out");
}

}  // namespace

Status PollReady(int fd, short events, double timeout_seconds,
                 const char* what) {
  pollfd p{fd, events, 0};
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? 0
          : static_cast<int>(std::min(timeout_seconds * 1e3, 2.0e9));
  const int n = ::poll(&p, 1, timeout_ms);
  if (n < 0) return Errno("poll");
  if (n == 0) return Timeout(what);
  if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
    return Status::IoError(std::string(what) + ": socket error");
  }
  return Status::OK();
}

Result<int> ConnectFd(const std::string& host, uint16_t port,
                      double timeout_seconds) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &resolved) != 0 ||
      resolved == nullptr) {
    return Status::IoError("cannot resolve host '" + host + "'");
  }
  const int fd = ::socket(resolved->ai_family, resolved->ai_socktype,
                          resolved->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(resolved);
    return Errno("socket");
  }
  // Non-blocking connect bounded by timeout_seconds.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  if (rc < 0 && errno != EINPROGRESS) {
    const Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  if (rc < 0) {
    const Status ready = PollReady(fd, POLLOUT, timeout_seconds, "connect");
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      return Status::IoError(std::string("connect: ") +
                             std::strerror(so_error));
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                const ClientOptions& options) {
  // De-correlate reconnect storms: distinct (host, port, seed) triples get
  // distinct jitter streams even when every caller leaves the seed at 0.
  uint64_t seed = options.connect_retry_jitter_seed;
  if (seed == 0) {
    seed = 0x243F6A8885A308D3ULL ^ (static_cast<uint64_t>(port) << 17);
    for (char c : host) seed = seed * 1099511628211ULL + static_cast<uint8_t>(c);
  }
  rng::Random jitter(seed);

  Result<int> fd = Status::Internal("unreachable");
  for (int attempt = 0;; ++attempt) {
    fd = ConnectFd(host, port, options.connect_timeout_seconds);
    if (fd.ok() || attempt >= options.max_connect_retries) break;
    const double backoff =
        std::min(options.connect_retry_cap_seconds,
                 options.connect_retry_base_seconds *
                     static_cast<double>(uint64_t{1} << std::min(attempt, 30)));
    std::this_thread::sleep_for(std::chrono::duration<double>(
        backoff * jitter.NextDouble(0.5, 1.0)));
  }
  if (!fd.ok()) return fd.status();

  std::unique_ptr<Client> client(new Client(*fd, options));
  if (!options.skip_hello) {
    GPRQ_RETURN_NOT_OK(client->SendAll(EncodeHello(HelloFrame{}),
                                       options.connect_timeout_seconds));
    FrameType type;
    std::string payload;
    GPRQ_RETURN_NOT_OK(client->ReadFrame(&type, &payload,
                                         options.connect_timeout_seconds));
    if (type == FrameType::kError) {
      auto error = DecodeErrorPayload(
          reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
      return Status::IoError("server rejected HELLO: " +
                             (error.ok() ? error->message : payload));
    }
    if (type != FrameType::kWelcome) {
      return Status::IoError("expected WELCOME, got another frame");
    }
    auto welcome = DecodeWelcomePayload(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
    if (!welcome.ok()) return welcome.status();
    if (welcome->version != kProtocolVersion) {
      return Status::IoError("server negotiated unsupported version " +
                             std::to_string(welcome->version));
    }
    client->welcome_ = *welcome;
  }
  return client;
}

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendAll(const std::string& frame, double timeout_seconds) {
  if (fd_ < 0) return Status::IoError("client is closed");
  Stopwatch stopwatch;
  size_t sent = 0;
  while (sent < frame.size()) {
    const double left = timeout_seconds - stopwatch.ElapsedSeconds();
    if (left <= 0.0) return Timeout("send");
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      GPRQ_RETURN_NOT_OK(PollReady(fd_, POLLOUT, left, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status Client::ReadFrame(FrameType* type, std::string* payload,
                         double timeout_seconds) {
  if (fd_ < 0) return Status::IoError("client is closed");
  Stopwatch stopwatch;
  uint8_t header[kFrameHeaderBytes];
  size_t have = 0;
  std::string* sink = nullptr;  // switches to payload after the header
  size_t need = kFrameHeaderBytes;
  FrameHeader parsed;

  while (true) {
    const double left = timeout_seconds - stopwatch.ElapsedSeconds();
    if (left <= 0.0) return Timeout("response");
    char buf[64 * 1024];
    const size_t want =
        std::min(sizeof(buf), need - (sink ? sink->size() : have));
    const ssize_t n = ::recv(fd_, buf, want, 0);
    if (n == 0) return Status::IoError("server closed the connection");
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        GPRQ_RETURN_NOT_OK(PollReady(fd_, POLLIN, left, "response"));
        continue;
      }
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (sink == nullptr) {
      std::memcpy(header + have, buf, static_cast<size_t>(n));
      have += static_cast<size_t>(n);
      if (have < kFrameHeaderBytes) continue;
      auto h = ParseFrameHeader(header, options_.max_frame_bytes);
      if (!h.ok()) return h.status();
      parsed = *h;
      payload->clear();
      if (parsed.length == 0) break;
      payload->reserve(parsed.length);
      sink = payload;
      need = parsed.length;
    } else {
      sink->append(buf, static_cast<size_t>(n));
      if (sink->size() == need) break;
    }
  }
  *type = parsed.type;
  return Status::OK();
}

Result<RemoteResult> Client::QueryOnce(const core::PrqQuery& query,
                                       const core::PrqOptions& options,
                                       double deadline_left_seconds) {
  const uint64_t request_id = next_request_id_++;
  QueryFrame frame = QueryFrame::FromQuery(request_id, query, options);
  // Never ship a deadline budget looser than the time this client will
  // actually wait: a backend running past the abandoned request would burn
  // Phase-3 work nobody reads. 0 on the wire means unbounded, so it too is
  // clamped down to the remaining request budget.
  const uint64_t left_micros = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::max(deadline_left_seconds, 0.0) * 1e6));
  if (frame.deadline_micros == 0 || frame.deadline_micros > left_micros) {
    frame.deadline_micros = left_micros;
  }
  GPRQ_RETURN_NOT_OK(SendAll(EncodeQuery(frame), deadline_left_seconds));

  FrameType type;
  std::string payload;
  GPRQ_RETURN_NOT_OK(ReadFrame(&type, &payload, deadline_left_seconds));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());

  RemoteResult remote;
  switch (type) {
    case FrameType::kResponse: {
      auto response =
          DecodeResponsePayload(data, payload.size(), options_.max_frame_bytes);
      if (!response.ok()) return response.status();
      if (response->request_id != request_id) {
        return Status::IoError("response for a different request id");
      }
      remote.result.ids = std::move(response->ids);
      remote.result.undecided = std::move(response->undecided);
      remote.result.status =
          Status(static_cast<StatusCode>(response->status_code),
                 response->message);
      remote.server_micros = response->server_micros;
      remote.integrations = response->integrations;
      return remote;
    }
    case FrameType::kRetryAfter: {
      auto retry = DecodeRetryAfterPayload(data, payload.size());
      if (!retry.ok()) return retry.status();
      if (retry->request_id != request_id) {
        return Status::IoError("retry-after for a different request id");
      }
      remote.shed = true;
      remote.retry_after_ms = retry->retry_after_ms;
      remote.result.status =
          Status::ResourceExhausted(retry->message.empty()
                                        ? "shed by server"
                                        : retry->message);
      return remote;
    }
    case FrameType::kError: {
      auto error = DecodeErrorPayload(data, payload.size());
      if (!error.ok()) return error.status();
      return Status(static_cast<StatusCode>(error->status_code),
                    error->message);
    }
    default:
      return Status::IoError("unexpected frame type in response");
  }
}

Result<RemoteResult> Client::Query(const core::PrqQuery& query,
                                   const core::PrqOptions& options) {
  Stopwatch stopwatch;
  int sheds = 0;
  while (true) {
    const double left =
        options_.request_timeout_seconds - stopwatch.ElapsedSeconds();
    if (left <= 0.0) return Timeout("request");
    auto attempt = QueryOnce(query, options, left);
    if (!attempt.ok()) return attempt.status();
    attempt->shed_retries = sheds;
    attempt->wire_seconds = stopwatch.ElapsedSeconds();
    if (!attempt->shed || sheds >= options_.max_shed_retries) {
      return attempt;
    }
    // Honor the server's backoff hint before re-sending (bounded by the
    // remaining request budget).
    ++sheds;
    const double sleep_seconds =
        std::min(static_cast<double>(attempt->retry_after_ms) * 1e-3,
                 options_.request_timeout_seconds -
                     stopwatch.ElapsedSeconds());
    if (sleep_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_seconds));
    }
  }
}

Result<std::string> Client::Stats(StatsFormat format) {
  StatsRequestFrame request;
  request.request_id = next_request_id_++;
  request.format = format;
  GPRQ_RETURN_NOT_OK(SendAll(EncodeStatsRequest(request),
                             options_.request_timeout_seconds));
  FrameType type;
  std::string payload;
  GPRQ_RETURN_NOT_OK(
      ReadFrame(&type, &payload, options_.request_timeout_seconds));
  const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());
  if (type == FrameType::kError) {
    auto error = DecodeErrorPayload(data, payload.size());
    if (!error.ok()) return error.status();
    return Status(static_cast<StatusCode>(error->status_code),
                  error->message);
  }
  if (type != FrameType::kStats) {
    return Status::IoError("expected STATS frame");
  }
  auto stats = DecodeStatsPayload(data, payload.size(),
                                  options_.max_frame_bytes);
  if (!stats.ok()) return stats.status();
  if (stats->request_id != request.request_id) {
    return Status::IoError("stats for a different request id");
  }
  return std::move(stats->body);
}

}  // namespace gprq::net
