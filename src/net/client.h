#ifndef GPRQ_NET_CLIENT_H_
#define GPRQ_NET_CLIENT_H_

// Blocking GPRQ/1 client: one TCP connection, synchronous request/response
// with connect and per-request timeouts, automatic version negotiation
// (HELLO/WELCOME on connect) and retry-after honoring — a RETRY_AFTER
// frame makes the client sleep the server's hint and resend, up to
// ClientOptions::max_shed_retries, exactly the backoff contract
// exec::RetryAfterSeconds documents for in-process callers.
//
// The remote result mirrors core::PrqResult: decided ids, explicit
// undecided remainder, and the server's status reconstructed code-for-code
// — the differential test (tests/net_e2e_test.cc) asserts wire results are
// set-identical to in-process SubmitBounded.
//
// Thread-compatible: one request at a time per Client (the loadgen
// pipelines by speaking the protocol directly over N connections).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/prq.h"
#include "net/protocol.h"

namespace gprq::net {

struct ClientOptions {
  double connect_timeout_seconds = 5.0;
  double request_timeout_seconds = 30.0;
  /// RETRY_AFTER responses automatically retried (sleeping the server's
  /// retry_after_ms in between). 0 surfaces the shed immediately.
  int max_shed_retries = 3;
  /// Additional connect attempts after the first fails (refused port,
  /// resolve hiccup, connect timeout). Each retry sleeps a jittered
  /// exponential backoff: U(0.5, 1.0) × min(cap, base × 2^attempt), so a
  /// fleet of clients reconnecting to a restarted server does not
  /// synchronize. 0 keeps the historical single-attempt behavior.
  int max_connect_retries = 0;
  double connect_retry_base_seconds = 0.05;
  double connect_retry_cap_seconds = 1.0;
  /// Seed for the backoff jitter stream; 0 derives one from the address so
  /// distinct clients naturally de-correlate.
  uint64_t connect_retry_jitter_seed = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Skip HELLO/WELCOME on connect (raw protocol tests).
  bool skip_hello = false;
};

/// One remote query's outcome.
struct RemoteResult {
  /// ids/undecided/status exactly as the server's PrqResult carried them.
  core::PrqResult result;
  /// True when the final answer (after retries) was a shed; retry_after_ms
  /// then carries the server's last backoff hint.
  bool shed = false;
  uint32_t retry_after_ms = 0;
  /// Sheds answered with RETRY_AFTER before this response (each slept).
  int shed_retries = 0;
  uint64_t server_micros = 0;
  uint64_t integrations = 0;
  /// Round-trip wall time measured by the client, including retries.
  double wire_seconds = 0.0;
};

/// Resolves `host:port` and performs one bounded non-blocking TCP connect
/// (TCP_NODELAY set). Returns the connected fd, still in non-blocking mode.
/// Shared by Client and the remote coordinator's backend channels.
Result<int> ConnectFd(const std::string& host, uint16_t port,
                      double timeout_seconds);

/// Waits for readiness on one fd; OK on ready, DeadlineExceeded on timeout,
/// IoError on socket error. `what` labels the error message.
Status PollReady(int fd, short events, double timeout_seconds,
                 const char* what);

class Client {
 public:
  /// Connects — retrying per max_connect_retries with jittered exponential
  /// backoff — and, unless skip_hello, negotiates the protocol version and
  /// fetches the dataset facts.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port, const ClientOptions& options =
                                                  ClientOptions());

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dataset facts from WELCOME (zeros when skip_hello was set).
  const WelcomeFrame& server_info() const { return welcome_; }

  /// Runs one query. The options' deadline crosses the wire as a budget in
  /// µs, clamped to the remaining request_timeout_seconds so a backend
  /// never burns Phase-3 work on a request this client has already
  /// abandoned; priority, strategy mask, filter-config bits and the
  /// pool-variant flag are carried verbatim. A shed answer is retried per
  /// max_shed_retries; other statuses (including degraded partial results)
  /// return as-is inside RemoteResult. An error Result means the exchange
  /// itself failed (connection, timeout, protocol violation, or a
  /// request-scoped ERROR frame).
  Result<RemoteResult> Query(const core::PrqQuery& query,
                             const core::PrqOptions& options);

  /// Fetches the server's metric-registry export.
  Result<std::string> Stats(StatsFormat format);

  void Close();

 private:
  Client(int fd, ClientOptions options);

  /// Sends one QUERY and reads its reply (no shed retry).
  Result<RemoteResult> QueryOnce(const core::PrqQuery& query,
                                 const core::PrqOptions& options,
                                 double deadline_left_seconds);

  Status SendAll(const std::string& frame, double timeout_seconds);
  /// Reads exactly one frame (header-validated) into *type/*payload.
  Status ReadFrame(FrameType* type, std::string* payload,
                   double timeout_seconds);

  int fd_ = -1;
  const ClientOptions options_;
  WelcomeFrame welcome_;
  uint64_t next_request_id_ = 1;
};

}  // namespace gprq::net

#endif  // GPRQ_NET_CLIENT_H_
