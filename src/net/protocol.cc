#include "net/protocol.h"

#include <cstring>

#include "common/deadline.h"
#include "core/gaussian.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "mc/pool_variant.h"

namespace gprq::net {
namespace {

// -- little-endian primitives ----------------------------------------------
// memcpy through fixed-width integers: the build targets are little-endian
// (x86-64, aarch64), and going through memcpy keeps every access aligned
// and strict-aliasing clean. A big-endian port would byte-swap here.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  char bytes[2];
  std::memcpy(bytes, &v, 2);
  out->append(bytes, 2);
}
void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  out->append(bytes, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out->append(bytes, 8);
}
void PutF64(std::string* out, double v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out->append(bytes, 8);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over a payload. Every Get* returns false (and
/// stays false) on underflow, so a decoder is one linear pass plus a
/// single `ok()` check — no partially-initialized results escape.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  bool GetU8(uint8_t* v) { return Fixed(v); }
  bool GetU16(uint16_t* v) { return Fixed(v); }
  bool GetU32(uint32_t* v) { return Fixed(v); }
  bool GetU64(uint64_t* v) { return Fixed(v); }
  bool GetF64(double* v) { return Fixed(v); }

  bool GetString(std::string* v, size_t max_bytes) {
    uint32_t length = 0;
    if (!GetU32(&length)) return false;
    if (length > max_bytes || length > remaining()) {
      ok_ = false;
      return false;
    }
    v->assign(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return true;
  }

  bool GetF64Array(std::vector<double>* v, size_t count) {
    if (remaining() < count * 8) {
      ok_ = false;
      return false;
    }
    v->resize(count);
    std::memcpy(v->data(), data_ + pos_, count * 8);
    pos_ += count * 8;
    return true;
  }

  bool GetU32Array(std::vector<uint32_t>* v, size_t count) {
    if (remaining() < count * 4) {
      ok_ = false;
      return false;
    }
    v->resize(count);
    std::memcpy(v->data(), data_ + pos_, count * 4);
    pos_ += count * 4;
    return true;
  }

  /// A payload with trailing bytes is malformed — decoders call this last.
  bool AtEnd() {
    if (pos_ != size_) ok_ = false;
    return ok_;
  }

 private:
  template <typename T>
  bool Fixed(T* v) {
    if (!ok_ || size_ - pos_ < sizeof(T)) {
      ok_ = false;
      return false;
    }
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

std::string Frame(FrameType type, std::string payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrameHeader(&frame, type, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

}  // namespace

bool IsClientFrame(FrameType type) {
  switch (type) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kStatsReq:
      return true;
    default:
      return false;
  }
}

Result<FrameHeader> ParseFrameHeader(const uint8_t* data,
                                     size_t max_frame_bytes) {
  if (std::memcmp(data, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint8_t version = data[4];
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  const uint8_t type = data[5];
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kWelcome:
    case FrameType::kQuery:
    case FrameType::kResponse:
    case FrameType::kRetryAfter:
    case FrameType::kError:
    case FrameType::kStatsReq:
    case FrameType::kStats:
      break;
    default:
      return Status::InvalidArgument("unknown frame type " +
                                     std::to_string(type));
  }
  uint16_t reserved = 0;
  std::memcpy(&reserved, data + 6, 2);
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved header bits");
  }
  uint32_t length = 0;
  std::memcpy(&length, data + 8, 4);
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_frame_bytes));
  }
  return FrameHeader{static_cast<FrameType>(type), length};
}

void AppendFrameHeader(std::string* out, FrameType type, uint32_t length) {
  out->append(reinterpret_cast<const char*>(kMagic), 4);
  PutU8(out, kProtocolVersion);
  PutU8(out, static_cast<uint8_t>(type));
  PutU16(out, 0);
  PutU32(out, length);
}

// -- HELLO / WELCOME -------------------------------------------------------

std::string EncodeHello(const HelloFrame& hello) {
  std::string payload;
  PutU8(&payload, hello.min_version);
  PutU8(&payload, hello.max_version);
  return Frame(FrameType::kHello, std::move(payload));
}

Result<HelloFrame> DecodeHelloPayload(const uint8_t* data, size_t size) {
  Reader reader(data, size);
  HelloFrame hello;
  reader.GetU8(&hello.min_version);
  reader.GetU8(&hello.max_version);
  if (!reader.AtEnd()) return Malformed("HELLO");
  if (hello.min_version > hello.max_version) return Malformed("HELLO");
  return hello;
}

std::string EncodeWelcome(const WelcomeFrame& welcome) {
  std::string payload;
  PutU8(&payload, welcome.version);
  PutU32(&payload, welcome.dim);
  PutU64(&payload, welcome.points);
  PutU8(&payload, welcome.sharded);
  PutU32(&payload, welcome.num_shards);
  return Frame(FrameType::kWelcome, std::move(payload));
}

Result<WelcomeFrame> DecodeWelcomePayload(const uint8_t* data, size_t size) {
  Reader reader(data, size);
  WelcomeFrame welcome;
  reader.GetU8(&welcome.version);
  reader.GetU32(&welcome.dim);
  reader.GetU64(&welcome.points);
  reader.GetU8(&welcome.sharded);
  reader.GetU32(&welcome.num_shards);
  if (!reader.AtEnd()) return Malformed("WELCOME");
  return welcome;
}

// -- QUERY -----------------------------------------------------------------

QueryFrame QueryFrame::FromQuery(uint64_t request_id,
                                 const core::PrqQuery& query,
                                 const core::PrqOptions& options) {
  QueryFrame frame;
  frame.request_id = request_id;
  const size_t d = query.query_object.dim();
  frame.mean = query.query_object.mean().values();
  frame.cov_lower.reserve(d * (d + 1) / 2);
  const la::Matrix& cov = query.query_object.covariance();
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) frame.cov_lower.push_back(cov(i, j));
  }
  frame.delta = query.delta;
  frame.theta = query.theta;
  frame.strategies = options.strategies;
  frame.option_flags = 0;
  if (options.use_catalogs) frame.option_flags |= kOptionUseCatalogs;
  if (options.fringe_filter_any_dim) frame.option_flags |= kOptionFringeAnyDim;
  if (options.use_marginal_filter) frame.option_flags |= kOptionMarginalFilter;
  frame.priority = static_cast<uint8_t>(options.priority);
  frame.pool_variant = static_cast<uint8_t>(options.pool_variant);
  const double remaining = options.control.deadline.remaining_seconds();
  if (!options.control.deadline.is_infinite()) {
    frame.deadline_micros =
        remaining <= 0.0 ? 1 : static_cast<uint64_t>(remaining * 1e6);
  }
  return frame;
}

Result<std::pair<core::PrqQuery, core::PrqOptions>> QueryFrame::ToQuery()
    const {
  const size_t d = mean.size();
  if (d == 0 || d > kMaxWireDim) {
    return Status::InvalidArgument("query dimension out of range");
  }
  if (cov_lower.size() != d * (d + 1) / 2) {
    return Status::InvalidArgument("covariance triangle size mismatch");
  }
  la::Matrix cov(d, d);
  size_t k = 0;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      cov(i, j) = cov_lower[k];
      cov(j, i) = cov_lower[k];
      ++k;
    }
  }
  auto gaussian =
      core::GaussianDistribution::Create(la::Vector(mean), std::move(cov));
  if (!gaussian.ok()) return gaussian.status();
  if (priority < core::kPriorityBackground ||
      priority > core::kPriorityCritical) {
    return Status::InvalidArgument("priority out of range");
  }
  if (pool_variant > static_cast<uint8_t>(mc::PoolVariant::kHalton)) {
    return Status::InvalidArgument("unknown pool variant");
  }

  core::PrqQuery query{std::move(*gaussian), delta, theta};
  core::PrqOptions options;
  options.strategies = strategies;
  options.use_catalogs = (option_flags & kOptionUseCatalogs) != 0;
  options.fringe_filter_any_dim = (option_flags & kOptionFringeAnyDim) != 0;
  options.use_marginal_filter = (option_flags & kOptionMarginalFilter) != 0;
  options.priority = priority;
  options.pool_variant = static_cast<mc::PoolVariant>(pool_variant);
  if (deadline_micros != 0) {
    options.control.deadline =
        common::Deadline::After(static_cast<double>(deadline_micros) * 1e-6);
  }
  return std::make_pair(std::move(query), std::move(options));
}

std::string EncodeQuery(const QueryFrame& query) {
  std::string payload;
  PutU64(&payload, query.request_id);
  PutU32(&payload, static_cast<uint32_t>(query.mean.size()));
  for (double v : query.mean) PutF64(&payload, v);
  for (double v : query.cov_lower) PutF64(&payload, v);
  PutF64(&payload, query.delta);
  PutF64(&payload, query.theta);
  PutU32(&payload, query.strategies);
  PutU32(&payload, query.option_flags);
  PutU8(&payload, query.priority);
  PutU8(&payload, query.pool_variant);
  PutU16(&payload, 0);
  PutU64(&payload, query.deadline_micros);
  return Frame(FrameType::kQuery, std::move(payload));
}

Result<QueryFrame> DecodeQueryPayload(const uint8_t* data, size_t size) {
  Reader reader(data, size);
  QueryFrame query;
  uint32_t dim = 0;
  reader.GetU64(&query.request_id);
  reader.GetU32(&dim);
  if (!reader.ok()) return Malformed("QUERY");
  // Bound dim before sizing the reads; the triangle below is what a
  // hostile dim field would otherwise inflate.
  if (dim == 0 || dim > kMaxWireDim) {
    return Status::InvalidArgument("query dimension out of range");
  }
  reader.GetF64Array(&query.mean, dim);
  reader.GetF64Array(&query.cov_lower, static_cast<size_t>(dim) * (dim + 1) /
                                           2);
  reader.GetF64(&query.delta);
  reader.GetF64(&query.theta);
  reader.GetU32(&query.strategies);
  reader.GetU32(&query.option_flags);
  reader.GetU8(&query.priority);
  reader.GetU8(&query.pool_variant);
  uint16_t reserved = 0;
  reader.GetU16(&reserved);
  reader.GetU64(&query.deadline_micros);
  if (!reader.AtEnd() || reserved != 0) return Malformed("QUERY");
  return query;
}

// -- RESPONSE --------------------------------------------------------------

std::string EncodeResponse(const ResponseFrame& response) {
  std::string payload;
  PutU64(&payload, response.request_id);
  PutU8(&payload, response.status_code);
  PutString(&payload, response.message);
  PutU32(&payload, static_cast<uint32_t>(response.ids.size()));
  for (index::ObjectId id : response.ids) PutU32(&payload, id);
  PutU32(&payload, static_cast<uint32_t>(response.undecided.size()));
  for (index::ObjectId id : response.undecided) PutU32(&payload, id);
  PutU64(&payload, response.server_micros);
  PutU64(&payload, response.integrations);
  return Frame(FrameType::kResponse, std::move(payload));
}

Result<ResponseFrame> DecodeResponsePayload(const uint8_t* data, size_t size,
                                            size_t max_frame_bytes) {
  Reader reader(data, size);
  ResponseFrame response;
  reader.GetU64(&response.request_id);
  reader.GetU8(&response.status_code);
  reader.GetString(&response.message, max_frame_bytes);
  uint32_t n = 0;
  if (!reader.GetU32(&n) || !reader.GetU32Array(&response.ids, n)) {
    return Malformed("RESPONSE");
  }
  if (!reader.GetU32(&n) || !reader.GetU32Array(&response.undecided, n)) {
    return Malformed("RESPONSE");
  }
  reader.GetU64(&response.server_micros);
  reader.GetU64(&response.integrations);
  if (!reader.AtEnd()) return Malformed("RESPONSE");
  if (response.status_code >
      static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Malformed("RESPONSE");
  }
  return response;
}

// -- RETRY_AFTER -----------------------------------------------------------

std::string EncodeRetryAfter(const RetryAfterFrame& retry) {
  std::string payload;
  PutU64(&payload, retry.request_id);
  PutU32(&payload, retry.retry_after_ms);
  PutString(&payload, retry.message);
  return Frame(FrameType::kRetryAfter, std::move(payload));
}

Result<RetryAfterFrame> DecodeRetryAfterPayload(const uint8_t* data,
                                                size_t size) {
  Reader reader(data, size);
  RetryAfterFrame retry;
  reader.GetU64(&retry.request_id);
  reader.GetU32(&retry.retry_after_ms);
  reader.GetString(&retry.message, size);
  if (!reader.AtEnd()) return Malformed("RETRY_AFTER");
  return retry;
}

// -- ERROR -----------------------------------------------------------------

std::string EncodeError(const ErrorFrame& error) {
  std::string payload;
  PutU64(&payload, error.request_id);
  PutU8(&payload, error.status_code);
  PutString(&payload, error.message);
  return Frame(FrameType::kError, std::move(payload));
}

Result<ErrorFrame> DecodeErrorPayload(const uint8_t* data, size_t size) {
  Reader reader(data, size);
  ErrorFrame error;
  reader.GetU64(&error.request_id);
  reader.GetU8(&error.status_code);
  reader.GetString(&error.message, size);
  if (!reader.AtEnd()) return Malformed("ERROR");
  if (error.status_code >
      static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Malformed("ERROR");
  }
  return error;
}

// -- STATS -----------------------------------------------------------------

std::string EncodeStatsRequest(const StatsRequestFrame& request) {
  std::string payload;
  PutU64(&payload, request.request_id);
  PutU8(&payload, static_cast<uint8_t>(request.format));
  return Frame(FrameType::kStatsReq, std::move(payload));
}

Result<StatsRequestFrame> DecodeStatsRequestPayload(const uint8_t* data,
                                                    size_t size) {
  Reader reader(data, size);
  StatsRequestFrame request;
  uint8_t format = 0;
  reader.GetU64(&request.request_id);
  reader.GetU8(&format);
  if (!reader.AtEnd()) return Malformed("STATS_REQ");
  if (format > static_cast<uint8_t>(StatsFormat::kPrometheus)) {
    return Malformed("STATS_REQ");
  }
  request.format = static_cast<StatsFormat>(format);
  return request;
}

std::string EncodeStats(const StatsFrame& stats) {
  std::string payload;
  PutU64(&payload, stats.request_id);
  PutU8(&payload, static_cast<uint8_t>(stats.format));
  PutString(&payload, stats.body);
  return Frame(FrameType::kStats, std::move(payload));
}

Result<StatsFrame> DecodeStatsPayload(const uint8_t* data, size_t size,
                                      size_t max_frame_bytes) {
  Reader reader(data, size);
  StatsFrame stats;
  uint8_t format = 0;
  reader.GetU64(&stats.request_id);
  reader.GetU8(&format);
  reader.GetString(&stats.body, max_frame_bytes);
  if (!reader.AtEnd()) return Malformed("STATS");
  if (format > static_cast<uint8_t>(StatsFormat::kPrometheus)) {
    return Malformed("STATS");
  }
  stats.format = static_cast<StatsFormat>(format);
  return stats;
}

}  // namespace gprq::net
