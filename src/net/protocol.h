#ifndef GPRQ_NET_PROTOCOL_H_
#define GPRQ_NET_PROTOCOL_H_

// GPRQ/1 — the length-prefixed binary wire protocol of the network
// front-end. One frame = a fixed 12-byte header followed by a payload of
// exactly `length` bytes; everything is little-endian, doubles are IEEE-754
// binary64. The protocol carries the *existing* query semantics over the
// wire — a QUERY frame maps 1:1 onto BatchExecutor::SubmitBounded's inputs
// (mean, covariance lower triangle, δ, θ, strategy mask, filter-config
// bits, priority, deadline budget, pool variant) and a RESPONSE frame onto
// the graceful-degradation PrqResult contract (decided ids + explicit
// undecided remainder + status), so a remote client observes exactly the
// in-process API, including overload rejections (RETRY_AFTER frames carry
// the retry_after_ms hint of exec::OverloadPolicy).
//
//   header (12 bytes):
//     0  u8[4]  magic     'G' 'P' 'R' 'Q'
//     4  u8     version   1
//     5  u8     type      FrameType
//     6  u16    reserved  must be 0
//     8  u32    length    payload bytes that follow
//
// The header is validated *before* any payload allocation: a frame whose
// length exceeds the configured maximum (ServerOptions::max_frame_bytes /
// ClientOptions::max_frame_bytes) is rejected at the 12-byte mark, so an
// adversarial length field cannot make either side allocate.
//
// Version negotiation: a client MAY open with HELLO carrying the version
// range it speaks; the server answers WELCOME with the version it chose
// (currently always 1) plus dataset facts (dim, point count, sharding).
// A client that skips HELLO and sends version-1 frames directly is also
// valid — HELLO exists so future versions can be introduced without
// breaking either side. Any frame whose header version is not 1 is a
// decode error.
//
// Decode errors are never fatal to the *server*: a malformed header
// (magic/version/reserved/length) poisons the stream framing, so the
// server answers with a connection-level ERROR frame (request_id 0) and
// closes that connection; a malformed *payload* inside a well-framed
// QUERY is request-scoped — the server answers a request-level ERROR and
// keeps the connection. Both paths increment `gprq.net.decode_errors`.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/prq.h"
#include "index/rstar_tree.h"

namespace gprq::net {

inline constexpr uint8_t kMagic[4] = {'G', 'P', 'R', 'Q'};
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;

/// Hard ceiling on the query dimensionality a frame may claim; the engine
/// tops out far below this, and the bound keeps a hostile dim field from
/// driving the d(d+1)/2 covariance read out of range.
inline constexpr uint32_t kMaxWireDim = 64;

/// Default cap on one frame's payload; both ends reject longer frames at
/// the header, before allocating.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint8_t {
  kHello = 0x01,       // client → server: version range
  kWelcome = 0x02,     // server → client: chosen version + dataset facts
  kQuery = 0x10,       // client → server: one PRQ
  kResponse = 0x11,    // server → client: decided/undecided ids + status
  kRetryAfter = 0x12,  // server → client: shed at admission, back off
  kError = 0x13,       // either: request-scoped (id != 0) or connection-
                       // level (id == 0, sender closes after flushing)
  kStatsReq = 0x20,    // client → server: registry export request
  kStats = 0x21,       // server → client: the export body
};

/// True for the frame types a client may send.
bool IsClientFrame(FrameType type);

/// A validated frame header. `length` is the payload size.
struct FrameHeader {
  FrameType type = FrameType::kError;
  uint32_t length = 0;
};

/// Validates 12 header bytes: magic, version, reserved zeros, known type,
/// length <= max_frame_bytes. Never reads past `kFrameHeaderBytes`.
Result<FrameHeader> ParseFrameHeader(const uint8_t* data,
                                     size_t max_frame_bytes);

/// Appends a 12-byte header for a payload of `length` bytes.
void AppendFrameHeader(std::string* out, FrameType type, uint32_t length);

// ---------------------------------------------------------------------------
// Payload codecs. Encode* returns a complete frame (header + payload);
// Decode*Payload parses the payload only (the caller already framed it).

/// HELLO: the version range the client speaks.
struct HelloFrame {
  uint8_t min_version = kProtocolVersion;
  uint8_t max_version = kProtocolVersion;
};
std::string EncodeHello(const HelloFrame& hello);
Result<HelloFrame> DecodeHelloPayload(const uint8_t* data, size_t size);

/// WELCOME: the server's chosen version plus dataset facts, so a client
/// can build well-dimensioned queries without out-of-band configuration.
struct WelcomeFrame {
  uint8_t version = kProtocolVersion;
  uint32_t dim = 0;
  uint64_t points = 0;
  uint8_t sharded = 0;
  uint32_t num_shards = 0;
};
std::string EncodeWelcome(const WelcomeFrame& welcome);
Result<WelcomeFrame> DecodeWelcomePayload(const uint8_t* data, size_t size);

/// Filter-config bits carried by a QUERY frame (PrqOptions booleans).
inline constexpr uint32_t kOptionUseCatalogs = 1u << 0;
inline constexpr uint32_t kOptionFringeAnyDim = 1u << 1;
inline constexpr uint32_t kOptionMarginalFilter = 1u << 2;
/// Set by the remote coordinator on the per-shard QUERY frames it scatters:
/// this request is one shard's slice of a fan-out, not a user query. Purely
/// informational for the backend (counted as gprq.net.server.subqueries so
/// operators can tell coordinator traffic from direct traffic); it does not
/// change execution.
inline constexpr uint32_t kOptionShardSubquery = 1u << 3;

/// QUERY: one probabilistic range query.
///
///   u64 request_id   (client-chosen; echoed by the response)
///   u32 dim
///   f64 mean[dim]
///   f64 cov_lower[dim*(dim+1)/2]   (row-major lower triangle, Σ_ij j<=i)
///   f64 delta, f64 theta
///   u32 strategies   (core::StrategyMask)
///   u32 option_flags (kOption* bits above)
///   u8  priority     (core::kPriorityBackground/Normal/Critical)
///   u8  pool_variant (mc::PoolVariant)
///   u16 reserved = 0
///   u64 deadline_micros  (budget from receipt; 0 = unbounded)
struct QueryFrame {
  uint64_t request_id = 0;
  std::vector<double> mean;
  std::vector<double> cov_lower;
  double delta = 0.0;
  double theta = 0.0;
  uint32_t strategies = core::kStrategyAll;
  uint32_t option_flags = kOptionUseCatalogs | kOptionFringeAnyDim;
  uint8_t priority = core::kPriorityNormal;
  uint8_t pool_variant = 0;
  uint64_t deadline_micros = 0;

  /// Captures a query + options into wire form. The deadline budget is the
  /// control's *remaining* time (0 when infinite); cancellation tokens do
  /// not cross the wire.
  static QueryFrame FromQuery(uint64_t request_id, const core::PrqQuery& query,
                              const core::PrqOptions& options);

  /// Reconstructs the query (covariance re-mirrored from the lower
  /// triangle and SPD-validated) and the options, including the deadline:
  /// a nonzero budget becomes a Deadline::After starting *now* — the
  /// receiving server starts the clock on decode.
  Result<std::pair<core::PrqQuery, core::PrqOptions>> ToQuery() const;
};
std::string EncodeQuery(const QueryFrame& query);
Result<QueryFrame> DecodeQueryPayload(const uint8_t* data, size_t size);

/// RESPONSE: the wire form of core::PrqResult plus a timing/trace summary.
struct ResponseFrame {
  uint64_t request_id = 0;
  uint8_t status_code = 0;  // StatusCode
  std::string message;
  std::vector<index::ObjectId> ids;
  std::vector<index::ObjectId> undecided;
  uint64_t server_micros = 0;  // wall time inside the backend
  uint64_t integrations = 0;   // Phase-3 integration candidates
};
std::string EncodeResponse(const ResponseFrame& response);
Result<ResponseFrame> DecodeResponsePayload(const uint8_t* data, size_t size,
                                            size_t max_frame_bytes);

/// RETRY_AFTER: the query was shed at admission (no work was done). The
/// hint mirrors exec::OverloadPolicy::retry_after_seconds.
struct RetryAfterFrame {
  uint64_t request_id = 0;
  uint32_t retry_after_ms = 0;
  std::string message;
};
std::string EncodeRetryAfter(const RetryAfterFrame& retry);
Result<RetryAfterFrame> DecodeRetryAfterPayload(const uint8_t* data,
                                                size_t size);

/// ERROR: request-scoped (request_id != 0, connection continues) or
/// connection-level (request_id == 0, sender closes after flushing).
struct ErrorFrame {
  uint64_t request_id = 0;
  uint8_t status_code = 0;  // StatusCode
  std::string message;
};
std::string EncodeError(const ErrorFrame& error);
Result<ErrorFrame> DecodeErrorPayload(const uint8_t* data, size_t size);

enum class StatsFormat : uint8_t { kJson = 0, kPrometheus = 1 };

/// STATS_REQ: ask for the obs::MetricRegistry export.
struct StatsRequestFrame {
  uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kJson;
};
std::string EncodeStatsRequest(const StatsRequestFrame& request);
Result<StatsRequestFrame> DecodeStatsRequestPayload(const uint8_t* data,
                                                    size_t size);

/// STATS: the export body (TextExporter::Json / ::Prometheus output).
struct StatsFrame {
  uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kJson;
  std::string body;
};
std::string EncodeStats(const StatsFrame& stats);
Result<StatsFrame> DecodeStatsPayload(const uint8_t* data, size_t size,
                                      size_t max_frame_bytes);

}  // namespace gprq::net

#endif  // GPRQ_NET_PROTOCOL_H_
