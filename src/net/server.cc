#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/stopwatch.h"
#include "exec/overload.h"
#include "fault/failpoint.h"
#include "obs/export.h"

namespace gprq::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Event-loop backends. The abstraction is level-triggered readiness with
// per-fd read/write interest — the least common denominator of epoll and
// poll, which keeps the loop logic identical across both.

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class Server::Poller {
 public:
  virtual ~Poller() = default;
  virtual void Add(int fd, bool read, bool write) = 0;
  virtual void Mod(int fd, bool read, bool write) = 0;
  virtual void Del(int fd) = 0;
  /// Fills `events`; returns the count (0 on timeout, -1 on EINTR).
  virtual int Wait(std::vector<PollerEvent>* events, int timeout_ms) = 0;
};

/// poll(2): portable fallback, also selectable at runtime (force_poll) so
/// both implementations stay covered by the same test battery.
class Server::PollPoller : public Server::Poller {
 public:
  void Add(int fd, bool read, bool write) override {
    interest_[fd] = Events(read, write);
  }
  void Mod(int fd, bool read, bool write) override {
    interest_[fd] = Events(read, write);
  }
  void Del(int fd) override { interest_.erase(fd); }

  int Wait(std::vector<PollerEvent>* events, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, mask] : interest_) {
      fds_.push_back(pollfd{fd, mask, 0});
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return n;
    events->clear();
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollerEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return static_cast<int>(events->size());
  }

 private:
  static short Events(bool read, bool write) {
    short mask = 0;
    if (read) mask |= POLLIN;
    if (write) mask |= POLLOUT;
    return mask;
  }

  std::unordered_map<int, short> interest_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
/// epoll, level-triggered: O(ready) wakeups instead of O(connections)
/// scans — the fan-in this front-end exists for.
class Server::EpollPoller : public Server::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  void Add(int fd, bool read, bool write) override {
    epoll_event event = Event(fd, read, write);
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &event);
  }
  void Mod(int fd, bool read, bool write) override {
    epoll_event event = Event(fd, read, write);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &event);
  }
  void Del(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(std::vector<PollerEvent>* events, int timeout_ms) override {
    const int n = ::epoll_wait(epfd_, raw_, kMaxEvents, timeout_ms);
    if (n <= 0) return n;
    events->clear();
    for (int i = 0; i < n; ++i) {
      PollerEvent event;
      event.fd = raw_[i].data.fd;
      event.readable = (raw_[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      event.writable = (raw_[i].events & EPOLLOUT) != 0;
      event.error = (raw_[i].events & EPOLLERR) != 0;
      events->push_back(event);
    }
    return n;
  }

 private:
  static constexpr int kMaxEvents = 128;

  static epoll_event Event(int fd, bool read, bool write) {
    epoll_event event{};
    event.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    event.data.fd = fd;
    return event;
  }

  int epfd_;
  epoll_event raw_[kMaxEvents];
};
#endif  // __linux__

// ---------------------------------------------------------------------------

Status ServerOptions::Validate() const {
  if (submit_threads == 0) {
    return Status::InvalidArgument("submit_threads must be > 0");
  }
  if (max_inflight_per_conn == 0) {
    return Status::InvalidArgument("max_inflight_per_conn must be > 0");
  }
  if (max_frame_bytes < kFrameHeaderBytes) {
    return Status::InvalidArgument("max_frame_bytes too small");
  }
  if (max_connections == 0) {
    return Status::InvalidArgument("max_connections must be > 0");
  }
  if (drain_retry_after_seconds < 0.0) {
    return Status::InvalidArgument("drain_retry_after_seconds must be >= 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<Server>> Server::Serve(exec::BatchExecutor* executor,
                                              const ServerOptions& options) {
  if (executor == nullptr) {
    return Status::InvalidArgument("executor must not be null");
  }
  if (executor->engine() == nullptr) {
    return Status::InvalidArgument(
        "detached executors serve through ShardedPrqEngine");
  }
  GPRQ_RETURN_NOT_OK(options.Validate());
  BackendInfo info;
  info.dim = static_cast<uint32_t>(executor->engine()->tree().dim());
  info.points = executor->engine()->tree().size();
  ServerOptions effective = options;
  // Without admission control SubmitBounded is single-submitter.
  if (executor->overload() == nullptr) effective.submit_threads = 1;
  std::unique_ptr<Server> server(
      new Server(executor, nullptr, nullptr, info, effective));
  GPRQ_RETURN_NOT_OK(server->Start());
  return server;
}

Result<std::unique_ptr<Server>> Server::Serve(shard::ShardedPrqEngine* engine,
                                              const ServerOptions& options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  GPRQ_RETURN_NOT_OK(options.Validate());
  BackendInfo info;
  info.dim = static_cast<uint32_t>(engine->dim());
  info.points = engine->total_points();
  info.sharded = true;
  info.num_shards = static_cast<uint32_t>(engine->num_shards());
  ServerOptions effective = options;
  effective.submit_threads = 1;  // single-submitter contract
  std::unique_ptr<Server> server(
      new Server(nullptr, engine, nullptr, info, effective));
  GPRQ_RETURN_NOT_OK(server->Start());
  return server;
}

Result<std::unique_ptr<Server>> Server::Serve(QueryBackend* backend,
                                              const ServerOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  GPRQ_RETURN_NOT_OK(options.Validate());
  const BackendInfo info = backend->Describe();
  ServerOptions effective = options;
  if (!backend->concurrent_submitters()) effective.submit_threads = 1;
  std::unique_ptr<Server> server(
      new Server(nullptr, nullptr, backend, info, effective));
  GPRQ_RETURN_NOT_OK(server->Start());
  return server;
}

Server::Server(exec::BatchExecutor* executor, shard::ShardedPrqEngine* sharded,
               QueryBackend* backend, BackendInfo info,
               const ServerOptions& options)
    : options_(options),
      executor_(executor),
      sharded_(sharded),
      backend_(backend),
      info_(info) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  metrics_.connections = registry.GetCounter("gprq.net.connections");
  metrics_.active_connections =
      registry.GetGauge("gprq.net.active_connections");
  metrics_.frames_in = registry.GetCounter("gprq.net.frames_in");
  metrics_.frames_out = registry.GetCounter("gprq.net.frames_out");
  metrics_.bytes_in = registry.GetCounter("gprq.net.bytes_in");
  metrics_.bytes_out = registry.GetCounter("gprq.net.bytes_out");
  metrics_.decode_errors = registry.GetCounter("gprq.net.decode_errors");
  metrics_.queries = registry.GetCounter("gprq.net.queries");
  metrics_.rejects = registry.GetCounter("gprq.net.rejects");
  metrics_.io_faults = registry.GetCounter("gprq.net.io_faults");
  metrics_.subqueries = registry.GetCounter("gprq.net.server.subqueries");
  metrics_.last_deadline_budget =
      registry.GetGauge("gprq.net.server.last_deadline_budget_micros");
  metrics_.request_nanos = registry.GetHistogram("gprq.net.request_nanos");
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparsable listen host '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    const Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  GPRQ_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    const Status status = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  GPRQ_RETURN_NOT_OK(SetNonBlocking(wake_read_fd_));
  GPRQ_RETURN_NOT_OK(SetNonBlocking(wake_write_fd_));

#ifdef __linux__
  if (!options_.force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) poller_ = std::move(epoll);
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();
  poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
  poller_->Add(wake_read_fd_, /*read=*/true, /*write=*/false);

  loop_ = std::thread(&Server::LoopThread, this);
  for (size_t i = 0; i < options_.submit_threads; ++i) {
    submitters_.emplace_back(&Server::SubmitThread, this);
  }
  return Status::OK();
}

void Server::RequestDrain() {
  draining_.store(true, std::memory_order_relaxed);
  // write(2) is async-signal-safe; the loop wakes and notices the flag.
  const char byte = 'd';
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

bool Server::WaitDrained(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(drained_mutex_);
  if (timeout_seconds <= 0.0) {
    drained_cv_.wait(lock, [&] { return drained_; });
    return true;
  }
  return drained_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return drained_; });
}

void Server::Shutdown() {
  if (!stop_.exchange(true)) {
    Wake();
  }
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    work_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : submitters_) {
    if (t.joinable()) t.join();
  }
  submitters_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  if (wake_write_fd_ >= 0) {
    ::close(wake_write_fd_);
    wake_write_fd_ = -1;
  }
}

void Server::Wake() {
  const char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

// ---------------------------------------------------------------------------
// Event loop.

void Server::LoopThread() {
  std::vector<PollerEvent> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Drain entry: close the listener exactly once so new connections are
    // refused while the in-flight ones finish.
    if (draining_.load(std::memory_order_relaxed) && !listener_closed_) {
      poller_->Del(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_closed_ = true;
    }
    if (draining_.load(std::memory_order_relaxed) && DrainComplete()) break;

    const int n = poller_->Wait(&events, /*timeout_ms=*/100);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (n < 0) continue;  // EINTR
    for (const PollerEvent& event : events) {
      if (event.fd == listen_fd_) {
        AcceptNewConnections();
      } else if (event.fd == wake_read_fd_) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
      } else {
        HandleConnEvent(event.fd, event.readable, event.writable,
                        event.error);
      }
    }
    ProcessCompletions();
  }

  // Teardown (drain completed or hard stop): close every connection.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) CloseConn(&conns_[fd]);
  {
    std::lock_guard<std::mutex> lock(drained_mutex_);
    drained_ = true;
  }
  drained_cv_.notify_all();
}

bool Server::DrainComplete() const {
  if (total_inflight_ > 0) return false;
  for (const auto& [fd, conn] : conns_) {
    if (!conn.out.empty()) return false;
  }
  return true;
}

void Server::AcceptNewConnections() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient
    if (conns_.size() >= options_.max_connections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn_fds_[conn.id] = fd;
    conns_[fd] = std::move(conn);
    poller_->Add(fd, /*read=*/true, /*write=*/false);
    metrics_.connections->Add();
    metrics_.active_connections->Set(static_cast<double>(conns_.size()));
  }
}

void Server::HandleConnEvent(int fd, bool readable, bool writable,
                             bool error) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // already closed this iteration
  Conn* conn = &it->second;
  if (error) {
    CloseConn(conn);
    return;
  }
  if (writable) {
    FlushConn(conn);
    it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = &it->second;
  }
  if (readable && conn->want_read) ReadConn(conn);
}

void Server::ReadConn(Conn* conn) {
  const Status injected = GPRQ_FAILPOINT("net.server.read");
  if (!injected.ok()) {
    metrics_.io_faults->Add();
    CloseConn(conn);
    return;
  }
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      metrics_.bytes_in->Add(static_cast<uint64_t>(n));
      conn->in.append(buf, static_cast<size_t>(n));
      if (!ParseFrames(conn)) return;
      if (!conn->want_read) return;  // pipelining cap reached mid-read
      if (static_cast<size_t>(n) < sizeof(buf)) return;
      continue;
    }
    if (n == 0) {
      // Peer closed. Bytes short of a full frame are a mid-frame
      // disconnect — a decode error by contract.
      if (!conn->in.empty()) metrics_.decode_errors->Add();
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    CloseConn(conn);
    return;
  }
}

bool Server::ParseFrames(Conn* conn) {
  // CloseConn erases the map entry `conn` points into; every step that may
  // close the connection is followed by a liveness probe on the captured
  // fd before `conn` is touched again.
  const int fd = conn->fd;
  size_t offset = 0;
  bool alive = true;
  while (!conn->close_after_flush) {
    if (conn->inflight >= options_.max_inflight_per_conn) {
      // Bounded pipelining: stop decoding (and reading) until completions
      // drain; ProcessCompletions re-enters to resume.
      conn->want_read = false;
      UpdateInterest(conn);
      break;
    }
    const size_t available = conn->in.size() - offset;
    if (available < kFrameHeaderBytes) break;
    const uint8_t* base =
        reinterpret_cast<const uint8_t*>(conn->in.data()) + offset;
    auto header = ParseFrameHeader(base, options_.max_frame_bytes);
    if (!header.ok()) {
      // The framing is poisoned: discard the stream, answer a
      // connection-level ERROR, close after flushing.
      metrics_.decode_errors->Add();
      offset = conn->in.size();
      FailConn(conn, header.status());
      alive = conns_.count(fd) != 0;
      break;
    }
    if (available < kFrameHeaderBytes + header->length) break;
    metrics_.frames_in->Add();
    DispatchFrame(conn, header->type, base + kFrameHeaderBytes,
                  header->length);
    alive = conns_.count(fd) != 0;
    if (!alive) break;
    offset += kFrameHeaderBytes + header->length;
  }
  if (alive && offset > 0) conn->in.erase(0, offset);
  return alive;
}

void Server::DispatchFrame(Conn* conn, FrameType type, const uint8_t* payload,
                           size_t size) {
  if (!IsClientFrame(type)) {
    metrics_.decode_errors->Add();
    FailConn(conn, Status::InvalidArgument("unexpected server-side frame"));
    return;
  }
  switch (type) {
    case FrameType::kHello: {
      auto hello = DecodeHelloPayload(payload, size);
      if (!hello.ok()) {
        metrics_.decode_errors->Add();
        FailConn(conn, hello.status());
        return;
      }
      if (hello->min_version > kProtocolVersion) {
        FailConn(conn, Status::InvalidArgument(
                           "no common protocol version (server speaks 1)"));
        return;
      }
      WelcomeFrame welcome;
      welcome.dim = info_.dim;
      welcome.points = info_.points;
      welcome.sharded = info_.sharded ? 1 : 0;
      welcome.num_shards = info_.num_shards;
      SendFrame(conn, EncodeWelcome(welcome));
      return;
    }
    case FrameType::kQuery: {
      auto query = DecodeQueryPayload(payload, size);
      if (!query.ok()) {
        metrics_.decode_errors->Add();
        // The frame itself was well-delimited, so the stream is intact:
        // answer a request-scoped ERROR when the id survived, else fail
        // the connection.
        uint64_t request_id = 0;
        if (size >= 8) std::memcpy(&request_id, payload, 8);
        if (request_id == 0) {
          FailConn(conn, query.status());
          return;
        }
        ErrorFrame error;
        error.request_id = request_id;
        error.status_code =
            static_cast<uint8_t>(query.status().code());
        error.message = query.status().message();
        SendFrame(conn, EncodeError(error));
        return;
      }
      if (draining_.load(std::memory_order_relaxed)) {
        RetryAfterFrame retry;
        retry.request_id = query->request_id;
        retry.retry_after_ms = static_cast<uint32_t>(
            options_.drain_retry_after_seconds * 1e3);
        retry.message = "server draining";
        metrics_.rejects->Add();
        SendFrame(conn, EncodeRetryAfter(retry));
        return;
      }
      metrics_.queries->Add();
      ++conn->inflight;
      ++total_inflight_;
      {
        std::lock_guard<std::mutex> lock(work_mutex_);
        work_queue_.push_back(Work{conn->id, std::move(*query)});
      }
      work_cv_.notify_one();
      return;
    }
    case FrameType::kStatsReq: {
      auto request = DecodeStatsRequestPayload(payload, size);
      if (!request.ok()) {
        metrics_.decode_errors->Add();
        FailConn(conn, request.status());
        return;
      }
      const obs::RegistrySnapshot snapshot =
          obs::MetricRegistry::Global().Snapshot();
      StatsFrame stats;
      stats.request_id = request->request_id;
      stats.format = request->format;
      stats.body = request->format == StatsFormat::kPrometheus
                       ? obs::TextExporter::Prometheus(snapshot)
                       : obs::TextExporter::Json(snapshot);
      SendFrame(conn, EncodeStats(stats));
      return;
    }
    default:
      return;  // unreachable: IsClientFrame filtered
  }
}

void Server::FailConn(Conn* conn, const Status& status) {
  ErrorFrame error;
  error.request_id = 0;  // connection-level
  error.status_code = static_cast<uint8_t>(status.code());
  error.message = status.message();
  conn->close_after_flush = true;
  conn->want_read = false;
  SendFrame(conn, EncodeError(error));
}

void Server::SendFrame(Conn* conn, std::string frame) {
  metrics_.frames_out->Add();
  conn->out.append(frame);
  FlushConn(conn);
}

void Server::FlushConn(Conn* conn) {
  while (!conn->out.empty()) {
    const Status injected = GPRQ_FAILPOINT("net.server.write");
    if (!injected.ok()) {
      metrics_.io_faults->Add();
      CloseConn(conn);
      return;
    }
    const ssize_t n =
        ::send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_.bytes_out->Add(static_cast<uint64_t>(n));
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  if (conn->out.empty() && conn->close_after_flush) {
    CloseConn(conn);
    return;
  }
  conn->want_write = !conn->out.empty();
  UpdateInterest(conn);
}

void Server::UpdateInterest(Conn* conn) {
  poller_->Mod(conn->fd, conn->want_read, conn->want_write);
}

void Server::CloseConn(Conn* conn) {
  const int fd = conn->fd;
  poller_->Del(fd);
  ::close(fd);
  conn_fds_.erase(conn->id);
  conns_.erase(fd);
  metrics_.active_connections->Set(static_cast<double>(conns_.size()));
}

void Server::ProcessCompletions() {
  while (true) {
    Completion completion;
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      if (completions_.empty()) return;
      completion = std::move(completions_.front());
      completions_.pop_front();
    }
    if (total_inflight_ > 0) --total_inflight_;
    auto fd_it = conn_fds_.find(completion.conn_id);
    if (fd_it == conn_fds_.end()) continue;  // connection died meanwhile
    const int fd = fd_it->second;  // CloseConn invalidates fd_it
    Conn* conn = &conns_[fd];
    if (conn->inflight > 0) --conn->inflight;
    const bool was_paused = !conn->want_read && !conn->close_after_flush;
    SendFrame(conn, std::move(completion.frame));
    if (conns_.count(fd) == 0) continue;  // send failed → closed
    if (was_paused && conn->inflight < options_.max_inflight_per_conn) {
      conn->want_read = true;
      UpdateInterest(conn);
      // Frames may already be buffered beyond the pause point; decode them
      // now instead of waiting for new bytes.
      ParseFrames(conn);
    }
  }
}

// ---------------------------------------------------------------------------
// Submitter threads.

void Server::SubmitThread() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [&] { return work_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) {
        if (work_stop_) return;
        continue;
      }
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    std::string frame = ExecuteQuery(work.query);
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(Completion{work.conn_id, std::move(frame)});
    }
    Wake();
  }
}

std::string Server::ExecuteQuery(const QueryFrame& wire) {
  Stopwatch stopwatch;
  const uint64_t request_id = wire.request_id;
  auto error_frame = [&](const Status& status) {
    ErrorFrame error;
    error.request_id = request_id;
    error.status_code = static_cast<uint8_t>(status.code());
    error.message = status.message();
    return EncodeError(error);
  };

  if ((wire.option_flags & kOptionShardSubquery) != 0) {
    metrics_.subqueries->Add();
  }
  metrics_.last_deadline_budget->Set(
      static_cast<double>(wire.deadline_micros));

  auto parsed = wire.ToQuery();
  if (!parsed.ok()) return error_frame(parsed.status());
  const core::PrqQuery& query = parsed->first;
  const core::PrqOptions& options = parsed->second;
  if (query.query_object.dim() != info_.dim) {
    return error_frame(Status::InvalidArgument(
        "query dimension " + std::to_string(query.query_object.dim()) +
        " does not match dataset dimension " + std::to_string(info_.dim)));
  }

  core::PrqStats stats;
  Result<core::PrqResult> outcome = [&]() -> Result<core::PrqResult> {
    if (executor_ != nullptr) {
      return executor_->SubmitBounded(query, options, &stats);
    }
    if (backend_ != nullptr) {
      if (backend_->concurrent_submitters()) {
        return backend_->ExecuteQueryBounded(query, options, &stats);
      }
      std::lock_guard<std::mutex> lock(sharded_mutex_);
      return backend_->ExecuteQueryBounded(query, options, &stats);
    }
    // Sharded engine: single-submitter contract, serialized here.
    std::lock_guard<std::mutex> lock(sharded_mutex_);
    return sharded_->ExecuteBounded(query, options, &stats);
  }();
  if (!outcome.ok()) return error_frame(outcome.status());
  core::PrqResult result = std::move(*outcome);
  metrics_.request_nanos->Record(stopwatch.ElapsedNanos());

  // A shed query did no work and carries the admission controller's
  // retry_after_ms hint — surface it as the dedicated backoff frame so
  // clients never have to parse a status message.
  if (result.status.code() == StatusCode::kResourceExhausted &&
      result.ids.empty() && result.undecided.empty() &&
      exec::RetryAfterSeconds(result.status, /*fallback=*/-1.0) >= 0.0) {
    RetryAfterFrame retry;
    retry.request_id = request_id;
    retry.retry_after_ms = static_cast<uint32_t>(
        exec::RetryAfterSeconds(result.status) * 1e3);
    retry.message = result.status.message();
    metrics_.rejects->Add();
    return EncodeRetryAfter(retry);
  }

  ResponseFrame response;
  response.request_id = request_id;
  response.status_code = static_cast<uint8_t>(result.status.code());
  response.message = result.status.message();
  response.ids = std::move(result.ids);
  response.undecided = std::move(result.undecided);
  response.server_micros = stopwatch.ElapsedNanos() / 1000;
  response.integrations = stats.integration_candidates;
  return EncodeResponse(response);
}

}  // namespace gprq::net
