#ifndef GPRQ_NET_SERVER_H_
#define GPRQ_NET_SERVER_H_

// The GPRQ network front-end: an event-loop TCP server that multiplexes
// many client connections onto one serving backend — a governed
// exec::BatchExecutor (single-tree) or a shard::ShardedPrqEngine — speaking
// the GPRQ/1 protocol of net/protocol.h.
//
// Threading model (see DESIGN.md §11):
//  * One event-loop thread owns every socket: it accepts, reads, frames,
//    decodes, and writes. epoll on Linux, poll(2) elsewhere (or with
//    ServerOptions::force_poll — the fallback is always compiled and
//    testable).
//  * A small pool of submitter threads executes decoded queries against
//    the backend (SubmitBounded / ExecuteBounded are blocking calls; they
//    must never run on the loop thread). Finished responses post to a
//    completion queue and a self-pipe wakes the loop to write them out.
//    With an OverloadPolicy installed SubmitBounded is thread-safe, so
//    several submitters give admission control a concurrent arrival
//    stream; without one — and always for the sharded engine, whose
//    contract is single-submitter — the server forces one submitter.
//  * Per-connection pipelining is bounded: once a connection has
//    max_inflight_per_conn requests executing, the loop stops decoding
//    (and reading) from it until completions drain — TCP backpressure
//    instead of unbounded queues. Responses may interleave across
//    requests; clients match them by request_id.
//
// Graceful drain: RequestDrain() (async-signal-safe — the gprq_server
// binary calls it from the SIGTERM handler) closes the listener, answers
// new QUERY frames with RETRY_AFTER, lets in-flight queries finish,
// flushes every response, then shuts the loop down; WaitDrained() blocks
// until that point.
//
// Observability: gprq.net.* metrics (connections, frames, bytes, decode
// errors, queries, rejects, request latency) plus the STATS frame, which
// returns the whole obs::MetricRegistry export (JSON or Prometheus) over
// the wire.
//
// Fault injection: `net.server.read` / `net.server.write` failpoints wrap
// the socket syscalls; an injected fault degrades exactly one connection
// (it is closed; its in-flight work completes into the void), never the
// server.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/batch_executor.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "shard/sharded_engine.h"

namespace gprq::net {

struct ServerOptions {
  /// Listen address. The default binds loopback; "0.0.0.0" serves a LAN.
  std::string host = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read it back via port().
  uint16_t port = 0;
  /// Submitter threads executing queries against the backend. Forced to 1
  /// when the backend cannot take concurrent submissions (ungoverned
  /// executor, sharded engine).
  size_t submit_threads = 2;
  /// Requests of one connection allowed in execution at once; beyond it
  /// the loop stops reading that connection (TCP backpressure).
  size_t max_inflight_per_conn = 32;
  /// Frames longer than this are rejected at the header, pre-allocation.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 1024;
  /// Use the poll(2) event loop even where epoll is available.
  bool force_poll = false;
  /// retry_after_ms answered to queries arriving while draining.
  double drain_retry_after_seconds = 1.0;

  Status Validate() const;
};

/// What the WELCOME frame advertises about the dataset behind the server.
struct BackendInfo {
  uint32_t dim = 0;
  uint64_t points = 0;
  bool sharded = false;
  uint32_t num_shards = 0;
};

/// Anything that can answer PRQ queries behind a Server, beyond the two
/// built-in backends. The remote coordinator (remote::RemoteShardedEngine)
/// implements this so net/ never depends on remote/ — the dependency arrow
/// stays remote → net.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Dataset facts for the WELCOME frame.
  virtual BackendInfo Describe() const = 0;

  /// Blocking bounded execution; same contract as
  /// ShardedPrqEngine::ExecuteBounded (returned ids exact, cut-off work in
  /// undecided, status reports why). `stats` may be null.
  virtual Result<core::PrqResult> ExecuteQueryBounded(
      const core::PrqQuery& query, const core::PrqOptions& options,
      core::PrqStats* stats) = 0;

  /// True when ExecuteQueryBounded tolerates concurrent callers. When
  /// false the server forces one submitter and serializes besides.
  virtual bool concurrent_submitters() const { return false; }
};

class Server {
 public:
  /// Serves a single-tree executor (created with an engine; with an
  /// OverloadPolicy installed, rejections reach clients as RETRY_AFTER).
  /// Binds, listens and starts the threads before returning; fails with
  /// IoError when the address cannot be bound.
  static Result<std::unique_ptr<Server>> Serve(exec::BatchExecutor* executor,
                                               const ServerOptions& options);

  /// Serves a sharded deployment. The engine's single-submitter contract
  /// forces submit_threads to 1.
  static Result<std::unique_ptr<Server>> Serve(shard::ShardedPrqEngine* engine,
                                               const ServerOptions& options);

  /// Serves a custom backend (e.g. the remote coordinator). submit_threads
  /// is forced to 1 unless backend->concurrent_submitters().
  static Result<std::unique_ptr<Server>> Serve(QueryBackend* backend,
                                               const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  uint16_t port() const { return port_; }

  const BackendInfo& info() const { return info_; }

  /// Begins graceful drain: stop accepting, reject new queries with
  /// RETRY_AFTER, finish in-flight work, flush responses, stop. Safe from
  /// any thread *and* from a signal handler (one atomic store + one
  /// write(2) on the self-pipe).
  void RequestDrain();

  /// Blocks until a drain (or shutdown) completed; false on timeout.
  /// timeout_seconds <= 0 waits forever.
  bool WaitDrained(double timeout_seconds);

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Hard stop: abandons pending work (in-flight queries still finish on
  /// the submitters before their threads join), closes every connection.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  /// One live client connection, owned by the loop thread.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string in;   // received, not yet framed
    std::string out;  // encoded, not yet written
    size_t inflight = 0;
    bool want_read = true;
    bool want_write = false;
    bool close_after_flush = false;
  };

  struct Work {
    uint64_t conn_id = 0;
    QueryFrame query;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;
  };

  struct Metrics {
    obs::Counter* connections;
    obs::Gauge* active_connections;
    obs::Counter* frames_in;
    obs::Counter* frames_out;
    obs::Counter* bytes_in;
    obs::Counter* bytes_out;
    obs::Counter* decode_errors;
    obs::Counter* queries;
    obs::Counter* rejects;
    obs::Counter* io_faults;
    obs::Counter* subqueries;
    /// Deadline budget µs of the most recent QUERY frame, as received on
    /// the wire — the clamp regression test reads this to prove the client
    /// tightened the budget before sending.
    obs::Gauge* last_deadline_budget;
    obs::Histogram* request_nanos;
  };

  class Poller;
  class PollPoller;
#ifdef __linux__
  class EpollPoller;
#endif

  Server(exec::BatchExecutor* executor, shard::ShardedPrqEngine* sharded,
         QueryBackend* backend, BackendInfo info,
         const ServerOptions& options);

  Status Start();
  void LoopThread();
  void SubmitThread();

  // -- loop-thread helpers (own conns_) ------------------------------------
  void AcceptNewConnections();
  void HandleConnEvent(int fd, bool readable, bool writable, bool error);
  void ReadConn(Conn* conn);
  /// Frames and dispatches everything complete in conn->in. Returns false
  /// when the connection was closed.
  bool ParseFrames(Conn* conn);
  void DispatchFrame(Conn* conn, FrameType type, const uint8_t* payload,
                     size_t size);
  void SendFrame(Conn* conn, std::string frame);
  void FlushConn(Conn* conn);
  void CloseConn(Conn* conn);
  /// Connection-level decode error: ERROR frame, then close after flush.
  void FailConn(Conn* conn, const Status& status);
  void UpdateInterest(Conn* conn);
  void ProcessCompletions();
  void Wake();
  /// True once draining and every response has been flushed.
  bool DrainComplete() const;

  // -- submit-thread helpers -----------------------------------------------
  /// Runs one query against the backend and encodes the reply frame.
  std::string ExecuteQuery(const QueryFrame& wire);

  const ServerOptions options_;
  exec::BatchExecutor* const executor_;  // exactly one backend is non-null
  shard::ShardedPrqEngine* const sharded_;
  QueryBackend* const backend_;
  const BackendInfo info_;
  /// Serializes sharded / non-concurrent custom backends
  /// (single-submitter contract). Unused in executor mode.
  std::mutex sharded_mutex_;

  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::unique_ptr<Poller> poller_;

  std::thread loop_;
  std::vector<std::thread> submitters_;

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<Work> work_queue_;
  bool work_stop_ = false;

  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  // Loop-thread state.
  std::unordered_map<int, Conn> conns_;          // by fd
  std::unordered_map<uint64_t, int> conn_fds_;   // id → fd
  uint64_t next_conn_id_ = 1;
  size_t total_inflight_ = 0;
  bool listener_closed_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::mutex drained_mutex_;
  std::condition_variable drained_cv_;
  bool drained_ = false;

  Metrics metrics_;
};

}  // namespace gprq::net

#endif  // GPRQ_NET_SERVER_H_
