#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace gprq::obs {
namespace {

void AppendNumber(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

void AppendUint(std::string* out, uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  *out += buffer;
}

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return out;
}

}  // namespace

std::string TextExporter::Json(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + snapshot.counters[i].first + "\": ";
    AppendUint(&out, snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + snapshot.gauges[i].first + "\": ";
    AppendNumber(&out, snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": ";
    AppendUint(&out, h.count);
    out += ", \"sum\": ";
    AppendUint(&out, h.sum);
    out += ", \"mean\": ";
    AppendNumber(&out, h.mean());
    out += ", \"p50\": ";
    AppendNumber(&out, h.p50);
    out += ", \"p95\": ";
    AppendNumber(&out, h.p95);
    out += ", \"p99\": ";
    AppendNumber(&out, h.p99);
    out += "}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string TextExporter::Prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string id = PrometheusName(name);
    out += "# TYPE " + id + " counter\n" + id + " ";
    AppendUint(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string id = PrometheusName(name);
    out += "# TYPE " + id + " gauge\n" + id + " ";
    AppendNumber(&out, value);
    out += "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string id = PrometheusName(name);
    out += "# TYPE " + id + " summary\n";
    out += id + "{quantile=\"0.5\"} ";
    AppendNumber(&out, h.p50);
    out += "\n" + id + "{quantile=\"0.95\"} ";
    AppendNumber(&out, h.p95);
    out += "\n" + id + "{quantile=\"0.99\"} ";
    AppendNumber(&out, h.p99);
    out += "\n" + id + "_sum ";
    AppendUint(&out, h.sum);
    out += "\n" + id + "_count ";
    AppendUint(&out, h.count);
    out += "\n";
  }
  return out;
}

}  // namespace gprq::obs
