#ifndef GPRQ_OBS_EXPORT_H_
#define GPRQ_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace gprq::obs {

/// Renders a RegistrySnapshot as text for dashboards and scrape endpoints.
/// Two formats:
///  * Json — one nested object: {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count", "sum", "mean", "p50", "p95",
///    "p99"}}}. The same shape bench/bench_util.h embeds into
///    BENCH_serving.json records.
///  * Prometheus — text exposition format: counters and gauges as single
///    samples, histograms as summaries (quantile-labelled samples plus
///    _sum/_count). Metric names are mapped to [a-zA-Z0-9_] by replacing
///    every other character with '_' (`gprq.engine.pruned.rr_fringe` →
///    `gprq_engine_pruned_rr_fringe`).
class TextExporter {
 public:
  static std::string Json(const RegistrySnapshot& snapshot);
  static std::string Prometheus(const RegistrySnapshot& snapshot);
};

}  // namespace gprq::obs

#endif  // GPRQ_OBS_EXPORT_H_
