#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace gprq::obs {

namespace detail {

size_t NextThreadIndex() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

#ifndef GPRQ_OBS_DISABLED

namespace {

/// Quantile q from log2 bucket counts: find the bucket holding the target
/// rank and interpolate linearly inside its value range. Buckets 0 and 1
/// are singletons ({0} and {1} — bit_width maps no other values there), so
/// quantiles landing in them are exact; interpolating bucket 1 over a
/// [2^0, 2^1) span would invent fractional values like 1.5 that were never
/// recorded (and all-zero series would still honestly report 0, but
/// tiny-value series would not).
double BucketQuantile(const uint64_t (&buckets)[Histogram::kBuckets],
                      uint64_t count, double q) {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= target) {
      if (b == 0) return 0.0;
      if (b == 1) return 1.0;
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = 2.0 * lo;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return std::ldexp(1.0, Histogram::kBuckets - 1);
}

}  // namespace

HistogramSnapshot Histogram::Snapshot() const noexcept {
  uint64_t buckets[kBuckets];
  uint64_t count = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    count += buckets[b];
  }
  HistogramSnapshot snapshot;
  snapshot.count = count;
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.p50 = BucketQuantile(buckets, count, 0.50);
  snapshot.p95 = BucketQuantile(buckets, count, 0.95);
  snapshot.p99 = BucketQuantile(buckets, count, 0.99);
  return snapshot;
}

void Histogram::Reset() noexcept {
  for (size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

#endif  // GPRQ_OBS_DISABLED

uint64_t RegistrySnapshot::counter(std::string_view name) const {
  for (const auto& [n, value] : counters) {
    if (n == name) return value;
  }
  return 0;
}

double RegistrySnapshot::gauge(std::string_view name) const {
  for (const auto& [n, value] : gauges) {
    if (n == name) return value;
  }
  return 0.0;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, value] : histograms) {
    if (n == name) return &value;
  }
  return nullptr;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace gprq::obs
