#ifndef GPRQ_OBS_METRICS_H_
#define GPRQ_OBS_METRICS_H_

// Low-overhead serving metrics: a process-wide registry of named counters,
// gauges and latency histograms, instrumenting the whole query path
// (engine filter phases, exec fan-out, Monte-Carlo sampling, paged index
// I/O). The paper's contribution is a cost story — the RR/OR/BF filters
// exist only to cut Phase-3 integrations — and these metrics make that
// story observable per stage on a live query stream instead of only in
// bench printouts.
//
// Overhead contract (the hot path is the point):
//  * Counter::Add is one relaxed fetch_add on a thread-sharded,
//    cache-line-padded slot — uncontended for up to kCounterShards threads,
//    no locks, no syscalls.
//  * Histogram::Record is two relaxed fetch_adds (log2 bucket + sum).
//  * Metric lookup (GetCounter etc.) takes a mutex and is *not* for hot
//    paths: resolve pointers once (static cache or member) and increment
//    through them.
//  * Compiling with GPRQ_OBS_DISABLED turns Add/Set/Record into empty
//    inlines (and drops the counter storage), so an instrumented call site
//    compiles down to nothing; the registry API keeps working and reads 0.
//
// Naming scheme: `gprq.<layer>.<metric>`, lowercase, dot-separated
// (`gprq.engine.pruned.rr_fringe`, `gprq.exec.queue_wait_nanos`). Duration
// histograms end in `_nanos`. The TextExporter maps names to
// Prometheus-safe identifiers by replacing non-alphanumerics with '_'.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gprq::obs {

#ifdef GPRQ_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Shards per counter; a power of two. Threads are assigned shards
/// round-robin at first use, so up to this many concurrent threads
/// increment without sharing a cache line.
inline constexpr size_t kCounterShards = 16;

namespace detail {
/// Process-wide monotonically increasing thread index (defined in
/// metrics.cc; one atomic increment per thread lifetime).
size_t NextThreadIndex();

inline size_t ThreadShard() noexcept {
  static thread_local const size_t shard = NextThreadIndex() % kCounterShards;
  return shard;
}
}  // namespace detail

/// Monotonic event counter. Thread-safe; increments are relaxed, so a
/// concurrent Value() may lag in-flight increments but every increment is
/// eventually counted (reads after the writing threads quiesce are exact).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

#ifdef GPRQ_OBS_DISABLED
  void Add(uint64_t n = 1) noexcept { (void)n; }
  uint64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
#else
  void Add(uint64_t n = 1) noexcept {
    shards_[detail::ThreadShard()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() noexcept {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kCounterShards];
#endif
};

/// Last-written value (queue depth, worker count, pool occupancy). Set is a
/// relaxed store; Add is a CAS loop (gauges are low-frequency, so
/// contention is a non-issue).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

#ifdef GPRQ_OBS_DISABLED
  void Set(double value) noexcept { (void)value; }
  void Add(double delta) noexcept { (void)delta; }
  double Value() const noexcept { return 0.0; }
  void Reset() noexcept {}
#else
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
#endif
};

/// Point-in-time view of one histogram: total count/sum plus quantiles
/// interpolated from the log2 buckets. Bucket 0 holds exactly the value 0
/// and bucket 1 exactly the value 1 (bit_width), so quantiles landing there
/// are exact — 0.0 and 1.0, never a fraction; bucket b ≥ 2 spans
/// [2^(b-1), 2^b), so a quantile there is exact to within a factor of 2 and
/// linearly interpolated inside its bucket — plenty for latency reporting.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // sum of recorded values (nanoseconds for timers)
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Fixed-bucket latency histogram: value v lands in bucket bit_width(v)
/// (65 buckets cover the full uint64 range, no configuration). Record is
/// two relaxed fetch_adds. Thread-safe; snapshots under concurrent writes
/// are approximate the same way Counter::Value is.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(v) for v in [0, 2^64)

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

#ifdef GPRQ_OBS_DISABLED
  void Record(uint64_t value) noexcept { (void)value; }
  HistogramSnapshot Snapshot() const noexcept { return {}; }
  void Reset() noexcept {}
#else
  void Record(uint64_t value) noexcept {
    size_t bucket = 0;
    for (uint64_t v = value; v != 0; v >>= 1) ++bucket;  // bit_width
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const noexcept;
  void Reset() noexcept;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
#endif
};

/// Point-in-time view of a whole registry, sorted by metric name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of a counter, or 0 when absent (absent and never-incremented are
  /// indistinguishable on purpose — both mean "nothing happened").
  uint64_t counter(std::string_view name) const;
  /// Value of a gauge, or 0 when absent.
  double gauge(std::string_view name) const;
  /// The named histogram, or nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Named metric registry. Get* calls create on first use and return stable
/// pointers that live as long as the registry (the global registry is never
/// destroyed, so cached pointers are safe in static storage). Lookup takes
/// a mutex — resolve once, increment forever.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point writes
  /// to. Intentionally leaked: instrumented code may run during static
  /// destruction (worker pools joining at exit).
  static MetricRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric (the metrics stay registered). For benches and
  /// tests that want absolute values instead of deltas; production code
  /// should diff snapshots instead.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace gprq::obs

#endif  // GPRQ_OBS_METRICS_H_
