#include "obs/trace.h"

namespace gprq::obs {
namespace {

// Engine-side metric pointers, resolved once (registry lookup takes a
// mutex; the publish path must not).
struct EngineMetrics {
  Counter* queries;
  Counter* proved_empty;
  Counter* node_reads;
  Counter* index_candidates;
  Counter* pruned_rr_fringe;
  Counter* pruned_bf_outer;
  Counter* pruned_or;
  Counter* pruned_marginal;
  Counter* accepted_bf_inner;
  Counter* phase3_candidates;
  Counter* results;
  Counter* deadline_expired;
  Counter* deadline_undecided;
  Histogram* prep_nanos;
  Histogram* phase1_nanos;
  Histogram* phase2_nanos;
  Histogram* phase3_nanos;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Global();
      EngineMetrics m;
      m.queries = r.GetCounter("gprq.engine.queries");
      m.proved_empty = r.GetCounter("gprq.engine.proved_empty");
      m.node_reads = r.GetCounter("gprq.engine.node_reads");
      m.index_candidates = r.GetCounter("gprq.engine.index_candidates");
      m.pruned_rr_fringe = r.GetCounter("gprq.engine.pruned.rr_fringe");
      m.pruned_bf_outer = r.GetCounter("gprq.engine.pruned.bf_outer");
      m.pruned_or = r.GetCounter("gprq.engine.pruned.or");
      m.pruned_marginal = r.GetCounter("gprq.engine.pruned.marginal");
      m.accepted_bf_inner = r.GetCounter("gprq.engine.accepted.bf_inner");
      m.phase3_candidates = r.GetCounter("gprq.engine.phase3_candidates");
      m.results = r.GetCounter("gprq.engine.results");
      m.deadline_expired = r.GetCounter("gprq.deadline.expired_queries");
      m.deadline_undecided =
          r.GetCounter("gprq.deadline.undecided_candidates");
      m.prep_nanos = r.GetHistogram("gprq.engine.phase.prep_nanos");
      m.phase1_nanos = r.GetHistogram("gprq.engine.phase.phase1_nanos");
      m.phase2_nanos = r.GetHistogram("gprq.engine.phase.phase2_nanos");
      m.phase3_nanos = r.GetHistogram("gprq.engine.phase.phase3_nanos");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

void PublishFilterPhases(const QueryTrace& trace) {
  const EngineMetrics& m = EngineMetrics::Get();
  m.queries->Add(1);
  if (trace.proved_empty) m.proved_empty->Add(1);
  m.node_reads->Add(trace.index_visits);
  m.index_candidates->Add(trace.index_candidates);
  m.pruned_rr_fringe->Add(trace.pruned_rr_fringe);
  m.pruned_bf_outer->Add(trace.pruned_bf_outer);
  m.pruned_or->Add(trace.pruned_or);
  m.pruned_marginal->Add(trace.pruned_marginal);
  m.accepted_bf_inner->Add(trace.accepted_bf_inner);
  m.phase3_candidates->Add(trace.phase3_candidates);
  m.prep_nanos->Record(trace.phase_nanos[QueryTrace::kPrep]);
  if (!trace.proved_empty) {
    m.phase1_nanos->Record(trace.phase_nanos[QueryTrace::kPhase1]);
    m.phase2_nanos->Record(trace.phase_nanos[QueryTrace::kPhase2]);
  }
}

void PublishPhase3(const QueryTrace& trace) {
  const EngineMetrics& m = EngineMetrics::Get();
  m.phase3_nanos->Record(trace.phase_nanos[QueryTrace::kPhase3]);
  m.results->Add(trace.result_size);
  if (trace.deadline_expired) {
    m.deadline_expired->Add(1);
    m.deadline_undecided->Add(trace.deadline_undecided);
  }
}

}  // namespace gprq::obs
