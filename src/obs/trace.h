#ifndef GPRQ_OBS_TRACE_H_
#define GPRQ_OBS_TRACE_H_

// Per-query tracing: one QueryTrace records where a single PRQ spent its
// time and what each filter stage did to the candidate set — the paper's
// per-stage cost story (Tables I-III) as a live, per-query record instead
// of a bench aggregate. The engine fills the filter-phase fields (RAII
// Span timings, Phase-2 prunes broken out per filter); the Phase-3 driver
// (exec::BatchExecutor or PrqEngine::Execute) fills the integration and
// sampling fields. PublishFilterPhases/PublishPhase3 fold a trace into the
// global MetricRegistry so per-query truth and serving aggregates can never
// drift apart — the registry totals are sums of published traces.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace gprq::obs {

struct QueryTrace {
  enum Phase : size_t {
    kPrep = 0,   // filter geometry (θ-region radius, BF radii, catalogs)
    kPhase1,     // index search
    kPhase2,     // analytical filtering
    kPhase3,     // numerical integration
    kPhaseCount,
  };

  /// RAII phase span: adds the scope's duration to trace->phase_nanos.
  /// A null trace makes the span a no-op.
  class Span {
   public:
    Span(QueryTrace* trace, Phase phase) : trace_(trace), phase_(phase) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() {
      if (trace_ != nullptr) {
        trace_->phase_nanos[phase_] += watch_.ElapsedNanos();
      }
    }

   private:
    QueryTrace* trace_;
    Phase phase_;
    Stopwatch watch_;
  };

  uint64_t phase_nanos[kPhaseCount] = {};

  // ---- Phase 1: index search. ----
  uint64_t index_visits = 0;      // R*-tree node reads
  uint64_t index_candidates = 0;  // points returned by the range search

  // ---- Phase 2: analytical filtering, prunes per filter. A candidate is
  // attributed to the *first* filter that dropped it (the engine applies
  // RR-fringe, then BF, then OR, then the marginal extension). ----
  uint64_t pruned_rr_fringe = 0;  // failed the RR Minkowski-fringe test
  uint64_t pruned_bf_outer = 0;   // outside the BF outer radius (BF-reject)
  uint64_t pruned_or = 0;         // outside the oblique region
  uint64_t pruned_marginal = 0;   // failed the marginal-filter extension
  uint64_t accepted_bf_inner = 0; // BF-accept: qualified without integration

  // ---- Phase 3: numerical integration. ----
  uint64_t phase3_candidates = 0;  // survivors handed to the integrator
  uint64_t integrations = 0;       // decisions actually computed
  uint64_t samples_used = 0;       // MC samples consumed by the decisions
  uint64_t early_stops = 0;        // decisions settled before pool end
  uint64_t undecided = 0;          // pool exhausted with θ still inside CI

  uint64_t result_size = 0;
  bool proved_empty = false;  // BF outer lookup proved the result empty

  // ---- Graceful degradation: deadline/cancellation. ----
  // The query's QueryControl fired mid-flight; the result is a sound
  // partial answer (result_size proven qualifiers, deadline_undecided
  // candidates left unresolved). Filled by the Phase-3 driver, published
  // with PublishPhase3 under `gprq.deadline.*`.
  bool deadline_expired = false;
  uint64_t deadline_undecided = 0;

  // ---- Overload protection (set by the governed exec path). ----
  bool shed = false;         // rejected at admission; no work was done
  bool browned_out = false;  // admitted with degraded budgets
  uint64_t admission_wait_nanos = 0;  // time in the bounded admission queue
  double cost_estimate = 0.0;         // final admission cost (post-refine)

  // ---- Sharded scatter-gather (set by shard::ShardedPrqEngine). ----
  // Deliberately NOT folded by PublishFilterPhases/PublishPhase3: the
  // registry's `gprq.engine.*` totals remain sums of single-engine traces
  // (the ledger the trace tests reconcile), and the shard engine publishes
  // its own `gprq.shard.*` series instead.
  uint64_t shards_routed = 0;  // shards whose MBR met the search box
  uint64_t shards_total = 0;   // shards in the deployment (0 = unsharded)

  // ---- Remote scatter-gather (set by remote::RemoteShardedEngine, on top
  // of the shard fields above; same ledger exemption). ----
  /// Routed shards whose backend could not answer within budget — their
  /// candidates were folded into `undecided` (the partial-answer contract).
  uint64_t shards_degraded = 0;
  uint64_t remote_retries = 0;  // RPC attempts beyond the first, all shards
  uint64_t remote_hedges = 0;   // hedged requests issued
  /// (shard, StatusCode) for every routed shard that ended non-OK, in
  /// shard order — the per-shard status record the degradation contract
  /// promises. Codes are the wire encoding (uint8_t of StatusCode).
  std::vector<std::pair<uint32_t, uint8_t>> remote_shard_errors;

  // ---- Semantic result cache (set by the cache-aware exec path). ----
  // Exact hit: the stored complete answer was served verbatim — no filter
  // phases, no Phase 3, so the phase spans above stay zero. Semantic hit:
  // Phases 1-2 ran as a containment re-filter over the cached candidate
  // set (no index visits) and Phase 3 ran normally over the survivors.
  bool cache_hit_exact = false;
  bool cache_hit_semantic = false;

  double phase_seconds(Phase phase) const {
    return static_cast<double>(phase_nanos[phase]) * 1e-9;
  }
  uint64_t pruned_total() const {
    return pruned_rr_fringe + pruned_bf_outer + pruned_or + pruned_marginal;
  }
};

/// Folds a trace's filter-phase fields (prep/phase1/phase2 spans, index
/// visits, per-filter prunes) into the global registry under the
/// `gprq.engine.*` names. Called once per query by PrqEngine after
/// Phases 1-2; the Phase-3 fields are published separately by the driver.
void PublishFilterPhases(const QueryTrace& trace);

/// Folds a trace's Phase-3 fields (span, integrations, result size) into
/// the global registry (`gprq.engine.phase.phase3_nanos`,
/// `gprq.engine.results`). The sampling counters (`gprq.mc.*`) are recorded
/// at the source by mc::SamplePool and the evaluators, not here.
void PublishPhase3(const QueryTrace& trace);

}  // namespace gprq::obs

#endif  // GPRQ_OBS_TRACE_H_
