#include "remote/backend_channel.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "net/client.h"

namespace gprq::remote {
namespace {

// Coordinator-side RPC metrics, resolved once (the obs idiom).
struct ChannelMetrics {
  obs::Counter* rpcs;
  obs::Counter* retries;
  obs::Counter* hedges;
  obs::Counter* hedge_wins;
  obs::Counter* breaker_rejects;
  obs::Histogram* rpc_nanos;

  static const ChannelMetrics& Get() {
    static const ChannelMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return ChannelMetrics{r.GetCounter("gprq.remote.rpcs"),
                            r.GetCounter("gprq.remote.retries"),
                            r.GetCounter("gprq.remote.hedges"),
                            r.GetCounter("gprq.remote.hedge_wins"),
                            r.GetCounter("gprq.remote.breaker_rejects"),
                            r.GetHistogram("gprq.remote.rpc_nanos")};
    }();
    return metrics;
  }
};

/// Evaluates the generic failpoint site, then the per-shard one — chaos
/// tests arm `remote.rpc.send.<k>` to kill exactly one shard's RPCs.
Status EvaluateRpcSite(const char* base, const char* shard_site) {
#ifdef GPRQ_FAULT_DISABLED
  (void)base;
  (void)shard_site;
  return Status::OK();
#else
  GPRQ_RETURN_NOT_OK(GPRQ_FAILPOINT(base));
  return GPRQ_FAILPOINT(shard_site);
#endif
}

/// Sends every byte within the budget; IoError/DeadlineExceeded on failure.
Status SendFrameFd(int fd, const std::string& bytes, double timeout_seconds) {
  Stopwatch watch;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const double left = timeout_seconds - watch.ElapsedSeconds();
    if (left <= 0.0) return Status::DeadlineExceeded("rpc send timed out");
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      GPRQ_RETURN_NOT_OK(net::PollReady(fd, POLLOUT, left, "rpc send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError(std::string("rpc send: ") + std::strerror(errno));
  }
  return Status::OK();
}

/// One non-blocking read, appended to *acc. OK on progress or EAGAIN;
/// IoError on EOF or a socket error.
Status RecvSome(int fd, std::string* acc) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      acc->append(buf, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) return Status::IoError("backend closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IoError(std::string("rpc recv: ") + std::strerror(errno));
  }
}

/// Extracts one complete frame from the front of *acc if present.
Result<bool> TryExtractFrame(std::string* acc, size_t max_frame_bytes,
                             net::FrameType* type, std::string* payload) {
  if (acc->size() < net::kFrameHeaderBytes) return false;
  auto header = net::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(acc->data()), max_frame_bytes);
  if (!header.ok()) return header.status();
  const size_t total = net::kFrameHeaderBytes + header->length;
  if (acc->size() < total) return false;
  *type = header->type;
  payload->assign(*acc, net::kFrameHeaderBytes, header->length);
  acc->erase(0, total);
  return true;
}

bool Retryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<BackendAddress> ParseBackendAddress(const std::string& spec) {
  BackendAddress address;
  const size_t colon = spec.find_last_of(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("backend address wants host:port, got '" +
                                   spec + "'");
  }
  if (colon > 0) address.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = std::strtoul(port.c_str(), &end, 10);
  if (port.empty() || end == nullptr || *end != '\0' || value == 0 ||
      value > 65535) {
    return Status::InvalidArgument("bad backend port in '" + spec + "'");
  }
  address.port = static_cast<uint16_t>(value);
  return address;
}

// ---- LatencyWindow ---------------------------------------------------------

void LatencyWindow::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.size() < kCapacity) {
    window_.push_back(seconds);
  } else {
    window_[next_] = seconds;
  }
  next_ = (next_ + 1) % kCapacity;
}

double LatencyWindow::Quantile(double q, int min_samples) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (min_samples < 1) min_samples = 1;
    if (window_.size() < static_cast<size_t>(min_samples)) return -1.0;
    sorted = window_;
  }
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[rank];
}

size_t LatencyWindow::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_.size();
}

// ---- BackendChannel --------------------------------------------------------

BackendChannel::BackendChannel(size_t shard, BackendAddress address,
                               const RemotePolicy* policy,
                               uint32_t expected_dim, uint64_t expected_points)
    : shard_(shard),
      address_(std::move(address)),
      policy_(policy),
      expected_dim_(expected_dim),
      expected_points_(expected_points),
      send_site_("remote.rpc.send." + std::to_string(shard)),
      recv_site_("remote.rpc.recv." + std::to_string(shard)),
      jitter_(policy->jitter_seed != 0
                  ? policy->jitter_seed + shard
                  : 0x8C5FB7D3A1E94C2FULL + shard * 0x9E3779B97F4A7C15ULL),
      breaker_(policy->breaker, "backend " + std::to_string(shard)),
      breaker_state_gauge_(obs::MetricRegistry::Global().GetGauge(
          "gprq.remote.backend." + std::to_string(shard) + ".breaker_state")) {
}

BackendChannel::~BackendChannel() { ClosePrimary(); }

void BackendChannel::ClosePrimary() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double BackendChannel::HedgeDelaySeconds() const {
  if (!policy_->hedge) return -1.0;
  const double p95 = latency_.Quantile(0.95, policy_->hedge_min_samples);
  if (p95 < 0.0) return -1.0;
  return std::max(policy_->hedge_min_seconds,
                  policy_->hedge_multiplier * p95);
}

Result<int> BackendChannel::OpenConnection(double timeout_seconds,
                                           bool skip_welcome) {
  Stopwatch watch;
  Result<int> fd = net::ConnectFd(address_.host, address_.port,
                                  timeout_seconds);
  if (!fd.ok()) return fd.status();
  if (skip_welcome) return *fd;

  auto fail = [&](const Status& status) -> Result<int> {
    ::close(*fd);
    return status;
  };
  Status sent = SendFrameFd(*fd, net::EncodeHello(net::HelloFrame{}),
                            timeout_seconds - watch.ElapsedSeconds());
  if (!sent.ok()) return fail(sent);

  std::string acc;
  net::FrameType type;
  std::string payload;
  while (true) {
    Result<bool> complete =
        TryExtractFrame(&acc, net::kDefaultMaxFrameBytes, &type, &payload);
    if (!complete.ok()) return fail(complete.status());
    if (*complete) break;
    const double left = timeout_seconds - watch.ElapsedSeconds();
    if (left <= 0.0) {
      return fail(Status::DeadlineExceeded("backend WELCOME timed out"));
    }
    Status ready = net::PollReady(*fd, POLLIN, left, "welcome");
    if (!ready.ok()) return fail(ready);
    Status read = RecvSome(*fd, &acc);
    if (!read.ok()) return fail(read);
  }
  if (type != net::FrameType::kWelcome) {
    return fail(Status::IoError("expected WELCOME from backend"));
  }
  auto welcome = net::DecodeWelcomePayload(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  if (!welcome.ok()) return fail(welcome.status());
  if (welcome->version != net::kProtocolVersion) {
    return fail(Status::IoError("backend negotiated unsupported version " +
                                std::to_string(welcome->version)));
  }
  if (welcome->dim != expected_dim_) {
    return fail(Status::InvalidArgument(
        "backend for shard " + std::to_string(shard_) + " serves dim " +
        std::to_string(welcome->dim) + ", manifest wants " +
        std::to_string(expected_dim_)));
  }
  if (policy_->validate_points && welcome->points != expected_points_) {
    return fail(Status::InvalidArgument(
        "backend for shard " + std::to_string(shard_) + " serves " +
        std::to_string(welcome->points) + " points, manifest lists " +
        std::to_string(expected_points_) +
        " — is it serving the right shard?"));
  }
  return *fd;
}

Status BackendChannel::Probe() {
  Result<int> fd = OpenConnection(policy_->connect_timeout_seconds,
                                  /*skip_welcome=*/false);
  if (!fd.ok()) return fd.status();
  ::close(*fd);
  return Status::OK();
}

Status BackendChannel::AttemptOnce(net::QueryFrame* frame,
                                   double timeout_seconds,
                                   net::ResponseFrame* response,
                                   RpcStats* stats) {
  const ChannelMetrics& metrics = ChannelMetrics::Get();
  Stopwatch watch;

  Status injected = EvaluateRpcSite("remote.rpc.send", send_site_.c_str());
  if (!injected.ok()) {
    ClosePrimary();
    return injected;
  }
  if (fd_ < 0) {
    Result<int> fd = OpenConnection(
        std::min(policy_->connect_timeout_seconds, timeout_seconds),
        /*skip_welcome=*/false);
    if (!fd.ok()) return fd.status();
    fd_ = *fd;
  }

  frame->request_id = next_request_id_++;
  const uint64_t primary_id = frame->request_id;
  Status sent = SendFrameFd(fd_, net::EncodeQuery(*frame),
                            timeout_seconds - watch.ElapsedSeconds());
  if (!sent.ok()) {
    ClosePrimary();
    return sent;
  }
  ++stats->attempts;
  metrics.rpcs->Add();

  // The recv failpoint fires before we start waiting: an error injection
  // poisons the attempt (transport-failure path), a latency-only injection
  // stalls it past the hedge delay (straggler path).
  injected = EvaluateRpcSite("remote.rpc.recv", recv_site_.c_str());
  if (!injected.ok()) {
    ClosePrimary();
    return injected;
  }

  const double hedge_delay = HedgeDelaySeconds();
  bool hedge_tried = false;
  int hedge_fd = -1;
  uint64_t hedge_id = 0;
  std::string primary_acc;
  std::string hedge_acc;
  bool primary_alive = true;

  auto close_hedge = [&] {
    if (hedge_fd >= 0) {
      ::close(hedge_fd);
      hedge_fd = -1;
    }
  };
  // Every return path below either keeps a *clean* primary (a complete
  // frame consumed, nothing pending) or closes it; the hedge connection
  // never survives the attempt.
  auto finish = [&](const Status& status, bool primary_clean) {
    close_hedge();
    if (!primary_clean || !primary_acc.empty()) ClosePrimary();
    return status;
  };

  while (true) {
    const double left = timeout_seconds - watch.ElapsedSeconds();
    if (left <= 0.0) {
      return finish(Status::DeadlineExceeded(
                        "rpc to shard " + std::to_string(shard_) +
                        " backend timed out"),
                    /*primary_clean=*/false);
    }

    // Issue the hedge once the delay elapses (and the primary is still
    // silent). Hedge connects fresh and skips HELLO — the server answers
    // QUERY frames without negotiation.
    double poll_timeout = left;
    if (!hedge_tried && hedge_delay >= 0.0 && primary_alive) {
      const double until_hedge = hedge_delay - watch.ElapsedSeconds();
      if (until_hedge <= 0.0) {
        hedge_tried = true;
        Result<int> fd = OpenConnection(
            std::min(policy_->connect_timeout_seconds, left),
            /*skip_welcome=*/true);
        if (fd.ok()) {
          frame->request_id = next_request_id_++;
          hedge_id = frame->request_id;
          Status hsent = SendFrameFd(*fd, net::EncodeQuery(*frame), left);
          if (hsent.ok()) {
            hedge_fd = *fd;
            ++stats->attempts;
            ++stats->hedges;
            metrics.rpcs->Add();
            metrics.hedges->Add();
          } else {
            ::close(*fd);
          }
        }
        continue;
      }
      poll_timeout = std::min(poll_timeout, until_hedge);
    }
    if (!primary_alive && hedge_fd < 0) {
      return finish(Status::IoError("backend connection lost"),
                    /*primary_clean=*/false);
    }

    pollfd fds[2];
    nfds_t nfds = 0;
    int primary_slot = -1;
    int hedge_slot = -1;
    if (primary_alive && fd_ >= 0) {
      primary_slot = static_cast<int>(nfds);
      fds[nfds++] = pollfd{fd_, POLLIN, 0};
    }
    if (hedge_fd >= 0) {
      hedge_slot = static_cast<int>(nfds);
      fds[nfds++] = pollfd{hedge_fd, POLLIN, 0};
    }
    const int timeout_ms = static_cast<int>(
        std::min(std::max(poll_timeout, 0.0) * 1e3 + 1.0, 2.0e9));
    const int n = ::poll(fds, nfds, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return finish(Status::IoError(std::string("rpc poll: ") +
                                    std::strerror(errno)),
                    /*primary_clean=*/false);
    }
    if (n == 0) continue;  // hedge timer or deadline handled at loop top

    // Drain whichever side is readable; a dead side is dropped, the other
    // may still win.
    if (primary_slot >= 0 &&
        (fds[primary_slot].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      Status read = RecvSome(fd_, &primary_acc);
      if (!read.ok()) {
        ClosePrimary();
        primary_alive = false;
        if (hedge_fd < 0) return finish(read, /*primary_clean=*/false);
      }
    }
    if (hedge_slot >= 0 &&
        (fds[hedge_slot].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      Status read = RecvSome(hedge_fd, &hedge_acc);
      if (!read.ok()) close_hedge();
    }

    // A complete frame on either side resolves the attempt.
    for (int side = 0; side < 2; ++side) {
      const bool is_primary = side == 0;
      if (is_primary && (!primary_alive || fd_ < 0)) continue;
      if (!is_primary && hedge_fd < 0) continue;
      std::string& acc = is_primary ? primary_acc : hedge_acc;
      const uint64_t want_id = is_primary ? primary_id : hedge_id;

      net::FrameType type;
      std::string payload;
      Result<bool> complete =
          TryExtractFrame(&acc, net::kDefaultMaxFrameBytes, &type, &payload);
      if (!complete.ok()) {
        if (is_primary) {
          ClosePrimary();
          primary_alive = false;
          if (hedge_fd < 0) {
            return finish(complete.status(), /*primary_clean=*/false);
          }
        } else {
          close_hedge();
        }
        continue;
      }
      if (!*complete) continue;
      const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());

      switch (type) {
        case net::FrameType::kResponse: {
          auto decoded = net::DecodeResponsePayload(
              data, payload.size(), net::kDefaultMaxFrameBytes);
          if (!decoded.ok() || decoded->request_id != want_id) {
            const Status bad = decoded.ok()
                                   ? Status::IoError(
                                         "response for a different request")
                                   : decoded.status();
            if (is_primary) {
              ClosePrimary();
              primary_alive = false;
              if (hedge_fd < 0) {
                return finish(bad, /*primary_clean=*/false);
              }
            } else {
              close_hedge();
            }
            continue;
          }
          *response = std::move(*decoded);
          if (!is_primary) {
            stats->hedge_won = true;
            metrics.hedge_wins->Add();
            // The primary still owes a response — poisoned, drop it.
            return finish(Status::OK(), /*primary_clean=*/false);
          }
          return finish(Status::OK(), /*primary_clean=*/true);
        }
        case net::FrameType::kRetryAfter: {
          auto retry = net::DecodeRetryAfterPayload(data, payload.size());
          const Status shed = Status::ResourceExhausted(
              retry.ok() && !retry->message.empty() ? retry->message
                                                    : "shed by backend");
          shed_hint_seconds_ =
              retry.ok() ? static_cast<double>(retry->retry_after_ms) * 1e-3
                         : 0.0;
          // The connection is healthy (a complete, well-formed reply);
          // the *request* was shed.
          replied_ = true;
          return finish(shed, /*primary_clean=*/is_primary);
        }
        case net::FrameType::kError: {
          auto error = net::DecodeErrorPayload(data, payload.size());
          if (!error.ok()) {
            return finish(error.status(), /*primary_clean=*/false);
          }
          replied_ = true;
          return finish(Status(static_cast<StatusCode>(error->status_code),
                               error->message),
                        /*primary_clean=*/is_primary);
        }
        default:
          return finish(Status::IoError("unexpected frame from backend"),
                        /*primary_clean=*/false);
      }
    }
  }
}

Status BackendChannel::Call(net::QueryFrame frame, double budget_seconds,
                            net::ResponseFrame* response, RpcStats* stats) {
  const ChannelMetrics& metrics = ChannelMetrics::Get();
  auto publish_state = [&] {
    breaker_state_gauge_->Set(
        static_cast<double>(static_cast<int>(breaker_.state())));
  };

  Status gate = breaker_.Allow();
  publish_state();
  if (!gate.ok()) {
    metrics.breaker_rejects->Add();
    return gate;
  }

  Stopwatch watch;
  Status last = Status::OK();
  replied_ = false;
  for (int attempt = 0;; ++attempt) {
    const double left = budget_seconds - watch.ElapsedSeconds();
    if (left <= 0.0) {
      last = Status::DeadlineExceeded("shard " + std::to_string(shard_) +
                                      " rpc budget exhausted");
      break;
    }
    shed_hint_seconds_ = 0.0;
    Stopwatch attempt_watch;
    last = AttemptOnce(&frame, std::min(policy_->rpc_timeout_seconds, left),
                       response, stats);
    if (last.ok()) {
      latency_.Record(attempt_watch.ElapsedSeconds());
      metrics.rpc_nanos->Record(attempt_watch.ElapsedNanos());
      breaker_.RecordSuccess();
      publish_state();
      return Status::OK();
    }
    if (!Retryable(last) || attempt >= policy_->max_retries) break;
    double backoff =
        std::min(policy_->retry_cap_seconds,
                 policy_->retry_base_seconds *
                     static_cast<double>(uint64_t{1} << std::min(attempt, 30)));
    backoff = std::max(backoff * jitter_.NextDouble(0.5, 1.0),
                       shed_hint_seconds_);
    backoff = std::min(backoff, budget_seconds - watch.ElapsedSeconds());
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    ++stats->retries;
    metrics.retries->Add();
  }
  // A well-formed reply (shed or request-scoped error) proves the backend
  // alive — only transport-level failures feed the breaker.
  if (replied_) {
    breaker_.RecordSuccess();
  } else {
    breaker_.RecordFailure();
  }
  publish_state();
  return last;
}

}  // namespace gprq::remote
