#ifndef GPRQ_REMOTE_BACKEND_CHANNEL_H_
#define GPRQ_REMOTE_BACKEND_CHANNEL_H_

// One shard's RPC channel to its gprq_server backend, wrapping a
// persistent GPRQ/1 connection in the full fault-handling stack:
//
//  * breaker gate — common::CircuitBreaker per backend; while open, Call
//    fails in microseconds with ResourceExhausted (the shard degrades to
//    undecided without waiting on a dead host), and half-open probes
//    detect recovery;
//  * bounded retries — connect/transport errors, RPC timeouts and shed
//    (RETRY_AFTER) replies retry on a *fresh* connection with jittered
//    exponential backoff, capped by RemotePolicy::max_retries and by the
//    caller's budget;
//  * hedging — once enough latency samples exist, an attempt that outlives
//    max(hedge_min, hedge_multiplier × p95) issues one duplicate request
//    on a second connection; the first complete response wins and the
//    loser is closed (a poisoned connection is never reused);
//  * fault injection — `remote.rpc.send` / `remote.rpc.recv` failpoints,
//    evaluated both under the generic site name and a per-shard suffixed
//    one (`remote.rpc.send.<shard>`), so chaos tests can kill exactly one
//    shard's RPCs.
//
// Thread-compatible: the engine's scatter issues at most one Call per
// channel at a time (one task per routed shard); the breaker and latency
// ring are internally locked so health state survives across queries and
// threads.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/status.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "remote/remote_policy.h"
#include "rng/random.h"

namespace gprq::remote {

struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Parses "host:port" (host may be empty → 127.0.0.1).
Result<BackendAddress> ParseBackendAddress(const std::string& spec);

/// What one Call spent; the engine folds these into the query trace.
struct RpcStats {
  int attempts = 0;  // total request transmissions, hedges included
  int retries = 0;   // attempts caused by a failed predecessor
  int hedges = 0;    // hedged duplicates issued
  bool hedge_won = false;
};

/// Sliding window of successful RPC latencies; Quantile powers the hedge
/// delay. Internally locked (written by whichever worker ran the scatter
/// task).
class LatencyWindow {
 public:
  void Record(double seconds);
  /// The q-quantile (0 < q < 1) of the window, or -1 with fewer than
  /// `min_samples` recorded.
  double Quantile(double q, int min_samples) const;
  size_t size() const;

 private:
  static constexpr size_t kCapacity = 128;
  mutable std::mutex mutex_;
  std::vector<double> window_;
  size_t next_ = 0;
};

class BackendChannel {
 public:
  /// `policy` is referenced, not copied; it must outlive the channel.
  /// expected_dim/expected_points validate the backend's WELCOME against
  /// the manifest entry (points only when policy.validate_points).
  BackendChannel(size_t shard, BackendAddress address,
                 const RemotePolicy* policy, uint32_t expected_dim,
                 uint64_t expected_points);
  ~BackendChannel();

  BackendChannel(const BackendChannel&) = delete;
  BackendChannel& operator=(const BackendChannel&) = delete;

  /// One fault-handled exchange: sends `frame` (request_id is overwritten
  /// per attempt) and waits for the matching RESPONSE, retrying and
  /// hedging per policy within `budget_seconds`. OK ⇒ *response holds the
  /// backend's answer (which may itself carry a degraded status — that is
  /// the backend's verdict, not a transport failure). Shed replies that
  /// survive every retry surface as ResourceExhausted; transport failures
  /// as IoError/DeadlineExceeded; an open breaker as ResourceExhausted
  /// without touching the network.
  Status Call(net::QueryFrame frame, double budget_seconds,
              net::ResponseFrame* response, RpcStats* stats);

  /// Best-effort connect + WELCOME validation (used at engine open to
  /// surface misconfiguration early). Does not touch the breaker.
  Status Probe();

  common::CircuitBreaker& breaker() { return breaker_; }
  const BackendAddress& address() const { return address_; }
  size_t shard() const { return shard_; }
  /// Current hedge delay, or -1 while disarmed (hedging off / too few
  /// samples).
  double HedgeDelaySeconds() const;

 private:
  /// Opens a fresh connection and (skip_welcome=false) validates
  /// HELLO/WELCOME. Returns the fd.
  Result<int> OpenConnection(double timeout_seconds, bool skip_welcome);
  /// One attempt: ensure a primary connection, send, await the response,
  /// hedging if armed. Closes whatever failed.
  Status AttemptOnce(net::QueryFrame* frame, double timeout_seconds,
                     net::ResponseFrame* response, RpcStats* stats);
  void ClosePrimary();

  const size_t shard_;
  const BackendAddress address_;
  const RemotePolicy* const policy_;
  const uint32_t expected_dim_;
  const uint64_t expected_points_;
  const std::string send_site_;  // "remote.rpc.send.<shard>"
  const std::string recv_site_;  // "remote.rpc.recv.<shard>"

  int fd_ = -1;  // persistent primary connection (-1 = disconnected)
  uint64_t next_request_id_ = 1;
  rng::Random jitter_;
  // Per-Call scratch (one Call at a time per channel): did any attempt get
  // a well-formed reply (feeds the breaker — a shed backend is alive), and
  // the backend's RETRY_AFTER hint for the next backoff.
  bool replied_ = false;
  double shed_hint_seconds_ = 0.0;

  common::CircuitBreaker breaker_;
  LatencyWindow latency_;
  obs::Gauge* breaker_state_gauge_;
};

}  // namespace gprq::remote

#endif  // GPRQ_REMOTE_BACKEND_CHANNEL_H_
