#include "remote/remote_engine.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "core/engine.h"
#include "obs/metrics.h"

namespace gprq::remote {
namespace {

struct RemoteMetrics {
  obs::Counter* queries;
  obs::Counter* degraded_shards;
  obs::Counter* fallback_candidates;
  obs::Histogram* scatter_nanos;

  static const RemoteMetrics& Get() {
    static const RemoteMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return RemoteMetrics{r.GetCounter("gprq.remote.queries"),
                           r.GetCounter("gprq.remote.degraded_shards"),
                           r.GetCounter("gprq.remote.fallback_candidates"),
                           r.GetHistogram("gprq.remote.scatter_nanos")};
    }();
    return metrics;
  }
};

/// Per-shard scatter state; slot i is written only by routed shard i's
/// task (the sharded-engine idiom — no locking).
struct RemoteSlot {
  Status call_status = Status::OK();  // transport-level RPC outcome
  net::ResponseFrame response;        // valid iff call_status.ok()
  RpcStats rpc;
  bool skipped = false;  // the query control fired before this shard's RPC
  bool fallback_ran = false;
  Status fallback_status = Status::OK();
  std::vector<index::ObjectId> fallback_ids;
};

}  // namespace

RemoteShardedEngine::RemoteShardedEngine(shard::ShardManifest manifest,
                                         std::string manifest_dir,
                                         exec::BatchExecutor* executor,
                                         const RemoteEngineOptions& options)
    : manifest_(std::move(manifest)),
      manifest_dir_(std::move(manifest_dir)),
      executor_(executor),
      options_(options),
      router_(&manifest_) {}

Result<std::unique_ptr<RemoteShardedEngine>> RemoteShardedEngine::Open(
    const std::string& manifest_path, std::vector<BackendAddress> backends,
    exec::BatchExecutor* executor, const RemoteEngineOptions& options) {
  if (executor == nullptr) {
    return Status::InvalidArgument("remote engine needs an executor");
  }
  GPRQ_RETURN_NOT_OK(options.Validate());
  Result<shard::ShardManifest> manifest = shard::ShardManifest::Load(
      manifest_path);
  if (!manifest.ok()) return manifest.status();
  if (backends.size() != manifest->shards.size()) {
    return Status::InvalidArgument(
        "manifest lists " + std::to_string(manifest->shards.size()) +
        " shards but " + std::to_string(backends.size()) +
        " backend addresses were given");
  }

  std::unique_ptr<RemoteShardedEngine> engine(new RemoteShardedEngine(
      std::move(*manifest), shard::ManifestDirectory(manifest_path), executor,
      options));
  const size_t num_shards = engine->manifest_.shards.size();
  engine->channels_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    engine->channels_.push_back(std::make_unique<BackendChannel>(
        k, std::move(backends[k]), &engine->options_.policy,
        static_cast<uint32_t>(engine->manifest_.dim),
        engine->manifest_.shards[k].count));
  }
  engine->fallback_trees_.resize(num_shards);

  if (options.probe_on_open) {
    for (size_t k = 0; k < num_shards; ++k) {
      const Status probed = engine->channels_[k]->Probe();
      // A *mis-wired* backend (wrong dataset dimension, wrong shard) is a
      // configuration error worth failing fast on; an unreachable one is
      // exactly what this engine exists to survive.
      if (!probed.ok() && probed.code() == StatusCode::kInvalidArgument) {
        return probed;
      }
    }
  }
  return engine;
}

Result<std::vector<size_t>> RemoteShardedEngine::Route(
    const core::PrqQuery& query, const core::PrqOptions& options) const {
  Result<shard::RoutingDecision> decision = router_.Route(query, options);
  if (!decision.ok()) return decision.status();
  return std::move(decision->routed);
}

Status RemoteShardedEngine::FallbackEnumerate(
    size_t shard, const geom::Rect& search_box,
    std::vector<index::ObjectId>* out) {
  if (fallback_trees_[shard] == nullptr) {
    index::PagedRStarTree::OpenOptions open;
    open.page_size = options_.fallback_page_size;
    open.buffer_pages = options_.fallback_buffer_pages;
    Result<index::PagedRStarTree> tree = index::PagedRStarTree::Open(
        manifest_dir_ + manifest_.shards[shard].tree_file, open);
    if (!tree.ok()) return tree.status();
    fallback_trees_[shard] =
        std::make_unique<index::PagedRStarTree>(std::move(*tree));
  }
  return fallback_trees_[shard]->RangeQuery(
      search_box, [out](const la::Vector&, index::ObjectId id) {
        out->push_back(id);
      });
}

Result<core::PrqResult> RemoteShardedEngine::ExecuteBounded(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace,
    RemoteQueryReport* report) {
  GPRQ_RETURN_NOT_OK(core::ValidatePrq(query, options, manifest_.dim));
  const RemoteMetrics& metrics = RemoteMetrics::Get();
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();
  if (trace != nullptr) {
    *trace = obs::QueryTrace();
    trace->shards_total = manifest_.shards.size();
  }
  if (report != nullptr) *report = RemoteQueryReport();
  metrics.queries->Add(1);

  const common::QueryControl& control = options.control;
  if (!control.Unbounded() && control.ShouldStop()) {
    core::PrqResult result;
    result.status = control.StopStatus();
    if (trace != nullptr) trace->deadline_expired = true;
    return result;
  }

  // ---- Route: the same decision the in-process engine makes.
  shard::RoutingDecision decision;
  {
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPrep);
    Stopwatch watch;
    Result<shard::RoutingDecision> routed_result = router_.Route(query,
                                                                 options);
    if (!routed_result.ok()) return routed_result.status();
    decision = std::move(*routed_result);
    out_stats.prep_seconds = watch.ElapsedSeconds();
  }
  if (decision.proved_empty) {
    out_stats.proved_empty = true;
    if (trace != nullptr) trace->proved_empty = true;
    return core::PrqResult{};
  }
  const geom::Rect& search_box = decision.search_box;
  const std::vector<size_t>& routed = decision.routed;
  if (trace != nullptr) trace->shards_routed = routed.size();
  if (report != nullptr) report->shards_routed = routed.size();

  // ---- Scatter: one RPC task per routed shard. Tasks never throw (a
  // throw would fail the whole scatter with Internal); every failure lands
  // in the slot.
  net::QueryFrame base_frame = net::QueryFrame::FromQuery(0, query, options);
  base_frame.option_flags |= net::kOptionShardSubquery;
  std::vector<RemoteSlot> slots(routed.size());
  {
    Stopwatch watch;
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPhase1);
    std::vector<exec::WorkerPool::Task> tasks;
    tasks.reserve(routed.size());
    for (size_t i = 0; i < routed.size(); ++i) {
      const size_t shard = routed[i];
      RemoteSlot* slot = &slots[i];
      RemoteShardedEngine* self = this;
      tasks.push_back([self, &base_frame, &control, &search_box, shard,
                       slot](size_t) {
        if (!control.Unbounded() && control.ShouldStop()) {
          // No budget left for this shard's RPC; like the in-process
          // scatter, it degrades without being scanned — and without
          // burning the remaining shards' time on fallback enumeration.
          slot->skipped = true;
          slot->call_status = control.StopStatus();
          return;
        }
        const double remaining = control.deadline.remaining_seconds();
        net::QueryFrame frame = base_frame;
        // The backend-side budget: the query's remaining time, clamped to
        // the per-attempt RPC timeout so a straggling backend degrades
        // *itself* (sound partial answer) rather than being cut off blind.
        const double wire_budget = std::min(
            {remaining, self->options_.policy.rpc_timeout_seconds, 1.0e9});
        frame.deadline_micros =
            std::max<uint64_t>(1, static_cast<uint64_t>(wire_budget * 1e6));
        slot->call_status = self->channels_[shard]->Call(
            frame, remaining, &slot->response, &slot->rpc);
        if (!slot->call_status.ok() && self->options_.local_fallback) {
          // The backend never answered: enumerate the shard's candidates
          // locally so they can be reported as undecided instead of
          // silently missing.
          slot->fallback_ran = true;
          slot->fallback_status = self->FallbackEnumerate(
              shard, search_box, &slot->fallback_ids);
        }
      });
    }
    GPRQ_RETURN_NOT_OK(executor_->RunTasks(std::move(tasks)));
    const uint64_t scatter_nanos = watch.ElapsedNanos();
    metrics.scatter_nanos->Record(scatter_nanos);
    out_stats.phase1_seconds = scatter_nanos * 1e-9;
  }

  // ---- Gather: set union in shard order; per-shard failures become
  // explicit undecided candidates plus a recorded (shard, status) pair.
  core::PrqResult result;
  Status degraded = Status::OK();  // first failed shard's verdict
  Status backend_status = Status::OK();  // first backend-reported non-OK
  bool any_skipped = false;
  for (size_t i = 0; i < routed.size(); ++i) {
    const size_t shard = routed[i];
    RemoteSlot& slot = slots[i];
    if (slot.call_status.ok()) {
      result.ids.insert(result.ids.end(), slot.response.ids.begin(),
                        slot.response.ids.end());
      result.undecided.insert(result.undecided.end(),
                              slot.response.undecided.begin(),
                              slot.response.undecided.end());
      out_stats.integration_candidates += slot.response.integrations;
      if (slot.response.status_code !=
          static_cast<uint8_t>(StatusCode::kOk)) {
        // The backend answered with its own degraded (but sound) partial
        // result — its undecided list is already explicit above.
        if (trace != nullptr) {
          trace->remote_shard_errors.emplace_back(
              static_cast<uint32_t>(shard), slot.response.status_code);
        }
        if (backend_status.ok()) {
          backend_status = Status(
              static_cast<StatusCode>(slot.response.status_code),
              "shard " + std::to_string(shard) + ": " +
                  slot.response.message);
        }
      }
    } else {
      any_skipped = any_skipped || slot.skipped;
      metrics.degraded_shards->Add(1);
      if (trace != nullptr) {
        trace->shards_degraded += 1;
        trace->remote_shard_errors.emplace_back(
            static_cast<uint32_t>(shard),
            static_cast<uint8_t>(slot.call_status.code()));
      }
      if (report != nullptr) report->shards_degraded += 1;
      std::string note = "shard " + std::to_string(shard) +
                         " backend unavailable: " +
                         slot.call_status.message();
      if (slot.fallback_ran && slot.fallback_status.ok()) {
        result.undecided.insert(result.undecided.end(),
                                slot.fallback_ids.begin(),
                                slot.fallback_ids.end());
        metrics.fallback_candidates->Add(slot.fallback_ids.size());
        note += "; its " + std::to_string(slot.fallback_ids.size()) +
                " candidates are reported undecided";
      } else if (!slot.skipped) {
        // No fallback (disabled or itself failed): the shard's candidates
        // are *unknown*, and the status must say so — never a silent gap.
        note += slot.fallback_ran
                    ? "; its candidates could not be enumerated (" +
                          slot.fallback_status.message() + ")"
                    : "; its candidates were not enumerated "
                      "(local fallback disabled)";
      }
      if (degraded.ok()) {
        degraded = Status(slot.call_status.code(), note);
      }
    }
    if (trace != nullptr) {
      trace->remote_retries += static_cast<uint64_t>(slot.rpc.retries);
      trace->remote_hedges += static_cast<uint64_t>(slot.rpc.hedges);
    }
    if (report != nullptr) {
      report->rpc_attempts += slot.rpc.attempts;
      report->rpc_retries += slot.rpc.retries;
      report->rpc_hedges += slot.rpc.hedges;
    }
  }

  // Status priority: a fired control explains every truncation at once;
  // otherwise the first failed shard; otherwise the first backend-reported
  // degradation.
  if (any_skipped || (!control.Unbounded() && control.ShouldStop())) {
    result.status = control.StopStatus();
    if (trace != nullptr) trace->deadline_expired = true;
  } else if (!degraded.ok()) {
    result.status = degraded;
  } else if (!backend_status.ok()) {
    result.status = backend_status;
  }
  if (trace != nullptr) {
    trace->result_size = result.ids.size();
    trace->phase3_candidates = out_stats.integration_candidates;
  }
  return result;
}

Result<std::vector<index::ObjectId>> RemoteShardedEngine::Execute(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  Result<core::PrqResult> bounded =
      ExecuteBounded(query, options, stats, trace);
  if (!bounded.ok()) return bounded.status();
  if (!bounded->status.ok()) return bounded->status;
  return std::move(bounded->ids);
}

net::BackendInfo RemoteShardedEngine::Describe() const {
  net::BackendInfo info;
  info.dim = static_cast<uint32_t>(manifest_.dim);
  info.points = manifest_.total_points();
  info.sharded = true;
  info.num_shards = static_cast<uint32_t>(manifest_.shards.size());
  return info;
}

Result<core::PrqResult> RemoteShardedEngine::ExecuteQueryBounded(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats) {
  return ExecuteBounded(query, options, stats, nullptr, nullptr);
}

}  // namespace gprq::remote
