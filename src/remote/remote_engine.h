#ifndef GPRQ_REMOTE_REMOTE_ENGINE_H_
#define GPRQ_REMOTE_REMOTE_ENGINE_H_

// The remote-shard coordinator: shard::ShardedPrqEngine's scatter-gather,
// with each shard behind a gprq_server process instead of an in-process
// tree. Routing is byte-identical to the in-process engine (the shared
// shard::ShardRouter over the same manifest); the scatter sends one QUERY
// frame per routed shard through that shard's BackendChannel (retries,
// hedging, circuit breaker — see backend_channel.h) and the gather merges
// the per-shard PrqResults by set union in shard order.
//
// The partial-answer contract, extended across processes: every backend
// runs the same deterministic per-query sample pool (seed ^ salt ^
// QueryFingerprint), so a healthy fan-out's decided ids are set-identical
// to the in-process engine over the same manifest. A shard whose backend
// cannot answer within budget contributes NOTHING silently: its routed
// candidate set is enumerated from the shard's tree file (the coordinator
// holds the manifest, so it can read the shard read-only) and folded into
// `undecided`, the per-shard failure is recorded in
// QueryTrace::remote_shard_errors, and the merged status is non-OK. When
// fallback enumeration is disabled or itself fails, the status says the
// candidates could not be enumerated — degradation is always explicit.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/prq.h"
#include "exec/batch_executor.h"
#include "index/paged_tree.h"
#include "net/server.h"
#include "obs/trace.h"
#include "remote/backend_channel.h"
#include "remote/remote_policy.h"
#include "shard/shard_manifest.h"
#include "shard/shard_router.h"

namespace gprq::remote {

struct RemoteEngineOptions {
  RemotePolicy policy;
  /// When a shard's backend fails, enumerate that shard's candidates from
  /// its tree file so they can be reported as undecided (the sound partial
  /// answer). Requires the shard files to be readable where the
  /// coordinator runs; off, a degraded shard's candidates are *unknown*
  /// and the merged status says so.
  bool local_fallback = true;
  /// Buffer-pool size for the lazily opened fallback trees.
  size_t fallback_buffer_pages = 64;
  size_t fallback_page_size = 4096;
  /// Probe every backend at Open (connect + WELCOME validation). A
  /// mis-wired backend (wrong dim / wrong shard) fails Open; an
  /// *unreachable* one is tolerated — surviving backend loss is the point
  /// of this engine, and the breaker handles it at query time.
  bool probe_on_open = false;

  Status Validate() const { return policy.Validate(); }
};

/// Per-query coordinator summary beyond what QueryTrace records; exposed
/// for tests and the chaos bench.
struct RemoteQueryReport {
  size_t shards_routed = 0;
  size_t shards_degraded = 0;
  int rpc_attempts = 0;
  int rpc_retries = 0;
  int rpc_hedges = 0;
};

class RemoteShardedEngine : public net::QueryBackend {
 public:
  /// `backends[k]` serves manifest shard k (one address per shard, same
  /// order); `executor` (non-null, not owned) supplies the scatter worker
  /// pool — size its pool to >= the shard count or scatter RPCs serialize.
  static Result<std::unique_ptr<RemoteShardedEngine>> Open(
      const std::string& manifest_path,
      std::vector<BackendAddress> backends, exec::BatchExecutor* executor,
      const RemoteEngineOptions& options = {});

  /// The same routing decision the in-process engine makes (shared
  /// ShardRouter); exposed for the differential tests.
  Result<std::vector<size_t>> Route(const core::PrqQuery& query,
                                    const core::PrqOptions& options) const;

  /// Scatter-gather over the remote backends; same result contract as
  /// ShardedPrqEngine::ExecuteBounded. Single submitter at a time (the
  /// scatter tasks are the parallelism).
  Result<core::PrqResult> ExecuteBounded(const core::PrqQuery& query,
                                         const core::PrqOptions& options,
                                         core::PrqStats* stats = nullptr,
                                         obs::QueryTrace* trace = nullptr,
                                         RemoteQueryReport* report = nullptr);

  /// Complete-answer wrapper: a degraded run surfaces as its status.
  Result<std::vector<index::ObjectId>> Execute(
      const core::PrqQuery& query, const core::PrqOptions& options,
      core::PrqStats* stats = nullptr, obs::QueryTrace* trace = nullptr);

  // net::QueryBackend — lets gprq_coordinator serve GPRQ/1 directly.
  net::BackendInfo Describe() const override;
  Result<core::PrqResult> ExecuteQueryBounded(const core::PrqQuery& query,
                                              const core::PrqOptions& options,
                                              core::PrqStats* stats) override;

  size_t num_shards() const { return manifest_.shards.size(); }
  size_t dim() const { return manifest_.dim; }
  uint64_t total_points() const { return manifest_.total_points(); }
  const shard::ShardManifest& manifest() const { return manifest_; }
  BackendChannel& channel(size_t shard) { return *channels_[shard]; }

 private:
  RemoteShardedEngine(shard::ShardManifest manifest, std::string manifest_dir,
                      exec::BatchExecutor* executor,
                      const RemoteEngineOptions& options);

  /// Enumerates shard k's candidates in `search_box` from its tree file
  /// (read-only; tree opened lazily and kept). Appends ids to *out.
  Status FallbackEnumerate(size_t shard, const geom::Rect& search_box,
                           std::vector<index::ObjectId>* out);

  shard::ShardManifest manifest_;
  std::string manifest_dir_;
  exec::BatchExecutor* executor_;
  RemoteEngineOptions options_;
  shard::ShardRouter router_;
  std::vector<std::unique_ptr<BackendChannel>> channels_;
  /// Lazily opened fallback trees, slot k touched only by shard k's
  /// scatter task (tasks are per-shard; submissions are serialized).
  std::vector<std::unique_ptr<index::PagedRStarTree>> fallback_trees_;
};

}  // namespace gprq::remote

#endif  // GPRQ_REMOTE_REMOTE_ENGINE_H_
