#include "remote/remote_policy.h"

#include <cctype>
#include <cstdlib>

namespace gprq::remote {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<bool> ParseOnOff(const std::string& value, const std::string& key) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  return Status::InvalidArgument("remote policy " + key +
                                 " wants on/off, got '" + value + "'");
}

}  // namespace

Status RemotePolicy::Validate() const {
  if (rpc_timeout_seconds <= 0.0) {
    return Status::InvalidArgument("rpc_timeout must be > 0");
  }
  if (connect_timeout_seconds <= 0.0) {
    return Status::InvalidArgument("connect_timeout must be > 0");
  }
  if (max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (retry_base_seconds < 0.0 || retry_cap_seconds < 0.0) {
    return Status::InvalidArgument("retry backoff must be >= 0");
  }
  if (hedge_min_seconds < 0.0 || hedge_multiplier < 1.0) {
    return Status::InvalidArgument(
        "hedge_min must be >= 0 and hedge_multiplier >= 1");
  }
  if (hedge_min_samples < 1) {
    return Status::InvalidArgument("hedge_min_samples must be >= 1");
  }
  return breaker.Validate();
}

Result<RemotePolicy> RemotePolicy::FromSpec(const std::string& spec) {
  RemotePolicy policy;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string entry = Trim(spec.substr(pos, sep - pos));
    pos = sep + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("remote policy entry missing '=': " +
                                     entry);
    }
    const std::string key = Trim(entry.substr(0, eq));
    const std::string value = Trim(entry.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("malformed remote policy entry: " +
                                     entry);
    }
    const double number = std::strtod(value.c_str(), nullptr);
    if (key == "rpc_timeout_ms") {
      policy.rpc_timeout_seconds = number * 1e-3;
    } else if (key == "connect_timeout_ms") {
      policy.connect_timeout_seconds = number * 1e-3;
    } else if (key == "max_retries") {
      policy.max_retries = static_cast<int>(number);
    } else if (key == "retry_base_ms") {
      policy.retry_base_seconds = number * 1e-3;
    } else if (key == "retry_cap_ms") {
      policy.retry_cap_seconds = number * 1e-3;
    } else if (key == "jitter_seed") {
      policy.jitter_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "hedge") {
      Result<bool> on = ParseOnOff(value, key);
      if (!on.ok()) return on.status();
      policy.hedge = *on;
    } else if (key == "hedge_min_ms") {
      policy.hedge_min_seconds = number * 1e-3;
    } else if (key == "hedge_multiplier") {
      policy.hedge_multiplier = number;
    } else if (key == "hedge_min_samples") {
      policy.hedge_min_samples = static_cast<int>(number);
    } else if (key == "breaker_failures") {
      policy.breaker.failure_threshold = static_cast<int>(number);
    } else if (key == "breaker_open_ms") {
      policy.breaker.open_seconds = number * 1e-3;
    } else if (key == "breaker_probes") {
      policy.breaker.half_open_probes = static_cast<int>(number);
    } else if (key == "validate_points") {
      Result<bool> on = ParseOnOff(value, key);
      if (!on.ok()) return on.status();
      policy.validate_points = *on;
    } else {
      return Status::InvalidArgument("unknown remote policy key: " + key);
    }
  }
  GPRQ_RETURN_NOT_OK(policy.Validate());
  return policy;
}

}  // namespace gprq::remote
