#ifndef GPRQ_REMOTE_REMOTE_POLICY_H_
#define GPRQ_REMOTE_REMOTE_POLICY_H_

// The coordinator's fault-handling knobs, grouped so one spec string can
// configure a stock gprq_coordinator binary (mirroring
// exec::OverloadPolicy::FromSpec). Three layers, outermost first:
//
//  * Circuit breaker (per backend): after `breaker_failures` consecutive
//    failed RPCs the backend is skipped outright (its shard degrades to
//    undecided in microseconds instead of burning retry budget), until an
//    open interval elapses and a half-open probe proves recovery.
//  * Retries (per RPC): connect/transport errors and shed replies retry
//    with jittered exponential backoff, bounded by `max_retries` and by
//    the query's remaining deadline budget.
//  * Hedging (per attempt): once a backend has `hedge_min_samples`
//    recorded latencies, a response slower than
//    max(hedge_min, hedge_multiplier × p95) triggers one hedged duplicate
//    on a fresh connection; first complete response wins.

#include <string>

#include "common/circuit_breaker.h"
#include "common/status.h"

namespace gprq::remote {

struct RemotePolicy {
  /// Per-attempt cap on one backend RPC, additionally clamped to the
  /// query's remaining deadline budget.
  double rpc_timeout_seconds = 5.0;
  double connect_timeout_seconds = 1.0;
  /// RPC attempts beyond the first (0 disables retries).
  int max_retries = 2;
  double retry_base_seconds = 0.02;
  double retry_cap_seconds = 0.5;
  /// Seed for the backoff jitter stream; 0 derives one per channel from
  /// the shard index so backends never back off in lockstep.
  uint64_t jitter_seed = 0;

  bool hedge = true;
  double hedge_min_seconds = 0.05;
  double hedge_multiplier = 2.0;
  int hedge_min_samples = 16;

  common::CircuitBreakerOptions breaker;

  /// Check the backend's WELCOME point count against the manifest entry
  /// (catches a backend serving the wrong shard). Dimension is always
  /// checked.
  bool validate_points = true;

  Status Validate() const;

  /// Parses `key=value;key=value` (whitespace-tolerant). Keys:
  ///   rpc_timeout_ms, connect_timeout_ms, max_retries, retry_base_ms,
  ///   retry_cap_ms, jitter_seed, hedge (on/off), hedge_min_ms,
  ///   hedge_multiplier, hedge_min_samples, breaker_failures,
  ///   breaker_open_ms, breaker_probes, validate_points (on/off).
  /// Unknown keys fail; an empty spec yields the defaults.
  static Result<RemotePolicy> FromSpec(const std::string& spec);
};

}  // namespace gprq::remote

#endif  // GPRQ_REMOTE_REMOTE_POLICY_H_
