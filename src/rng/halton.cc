#include "rng/halton.h"

#include <cassert>
#include <cmath>

namespace gprq::rng {

namespace {

constexpr uint32_t kPrimes[HaltonSequence::kMaxDim] = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53};

}  // namespace

HaltonSequence::HaltonSequence(size_t dim, uint64_t seed)
    : index_(1), shift_(dim) {
  assert(dim >= 1 && dim <= kMaxDim);
  Random random(seed);
  for (size_t j = 0; j < dim; ++j) {
    shift_[j] = random.NextDouble();
  }
  // Skip ahead a little: the first Halton points are strongly correlated
  // across bases.
  index_ = 20 + (seed % 101);
}

double HaltonSequence::RadicalInverse(uint64_t index, uint32_t base) {
  double result = 0.0;
  double inv_base = 1.0 / static_cast<double>(base);
  double factor = inv_base;
  while (index > 0) {
    result += static_cast<double>(index % base) * factor;
    index /= base;
    factor *= inv_base;
  }
  return result;
}

void HaltonSequence::Next(la::Vector& out) {
  const size_t d = dim();
  if (out.dim() != d) out = la::Vector(d);
  for (size_t j = 0; j < d; ++j) {
    double u = RadicalInverse(index_, kPrimes[j]) + shift_[j];
    if (u >= 1.0) u -= 1.0;
    out[j] = u;
  }
  ++index_;
}

}  // namespace gprq::rng
