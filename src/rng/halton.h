#ifndef GPRQ_RNG_HALTON_H_
#define GPRQ_RNG_HALTON_H_

#include <cstdint>
#include <vector>

#include "la/vector.h"
#include "rng/random.h"

namespace gprq::rng {

/// A randomized Halton low-discrepancy sequence in [0,1)^d. Successive
/// points fill the unit cube far more evenly than iid uniforms, which is
/// what gives quasi-Monte-Carlo integration its ~O(1/n) convergence (vs
/// O(1/√n) for plain MC). The random shift (Cranley-Patterson rotation)
/// makes the estimator unbiased and gives every seed an independent
/// randomization.
///
/// Supports up to 16 dimensions (the first 16 primes as bases) — ample for
/// this library's d <= 15 experiments.
class HaltonSequence {
 public:
  /// Fails via assert if dim exceeds the supported base table.
  HaltonSequence(size_t dim, uint64_t seed);

  size_t dim() const { return static_cast<size_t>(shift_.dim()); }

  /// Writes the next point of the sequence into `out` (resized if needed).
  void Next(la::Vector& out);

  /// Maximum supported dimension.
  static constexpr size_t kMaxDim = 16;

 private:
  /// Radical inverse of `index` in base `base`.
  static double RadicalInverse(uint64_t index, uint32_t base);

  uint64_t index_;
  la::Vector shift_;  // Cranley-Patterson rotation per dimension
};

}  // namespace gprq::rng

#endif  // GPRQ_RNG_HALTON_H_
