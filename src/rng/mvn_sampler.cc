#include "rng/mvn_sampler.h"

#include <cassert>

namespace gprq::rng {

Result<MvnSampler> MvnSampler::Create(la::Vector mean, const la::Matrix& cov) {
  if (cov.rows() != mean.dim() || cov.cols() != mean.dim()) {
    return Status::InvalidArgument("covariance shape must match mean");
  }
  auto chol = la::Cholesky::Factor(cov);
  if (!chol.ok()) return chol.status();
  return MvnSampler(std::move(mean), chol->lower());
}

void MvnSampler::Sample(Random& random, la::Vector& out) const {
  const size_t d = dim();
  if (out.dim() != d) out = la::Vector(d);
  // x = mean + L z, computed without a temporary z: L is lower-triangular so
  // column j of L only feeds entries i >= j.
  for (size_t i = 0; i < d; ++i) out[i] = mean_[i];
  for (size_t j = 0; j < d; ++j) {
    const double z = random.NextGaussian();
    for (size_t i = j; i < d; ++i) out[i] += lower_(i, j) * z;
  }
}

la::Vector MvnSampler::Sample(Random& random) const {
  la::Vector out(dim());
  Sample(random, out);
  return out;
}

}  // namespace gprq::rng
