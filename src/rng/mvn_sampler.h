#ifndef GPRQ_RNG_MVN_SAMPLER_H_
#define GPRQ_RNG_MVN_SAMPLER_H_

#include "common/status.h"
#include "la/cholesky.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "rng/random.h"

namespace gprq::rng {

/// Draws samples from a multivariate Gaussian N(mean, cov) via the Cholesky
/// factor: x = mean + L·z with z iid standard normal. This is the sampling
/// backend of the paper's importance-sampling Monte-Carlo integrator
/// (Section V-A): samples are drawn from the query density itself and the
/// fraction landing in the target sphere estimates the qualification
/// probability.
class MvnSampler {
 public:
  /// Builds a sampler; fails if `cov` is not symmetric positive-definite.
  static Result<MvnSampler> Create(la::Vector mean, const la::Matrix& cov);

  size_t dim() const { return mean_.dim(); }
  const la::Vector& mean() const { return mean_; }

  /// Draws one sample into `out` (resized if needed) using `random`.
  void Sample(Random& random, la::Vector& out) const;

  /// Convenience: draws one sample by value.
  la::Vector Sample(Random& random) const;

 private:
  MvnSampler(la::Vector mean, la::Matrix lower)
      : mean_(std::move(mean)), lower_(std::move(lower)) {}

  la::Vector mean_;
  la::Matrix lower_;  // Cholesky factor of the covariance
};

}  // namespace gprq::rng

#endif  // GPRQ_RNG_MVN_SAMPLER_H_
