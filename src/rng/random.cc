#include "rng/random.h"

#include <cassert>
#include <cmath>

namespace gprq::rng {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Random::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  for (;;) {
    const double u = 2.0 * NextDouble() - 1.0;
    const double v = 2.0 * NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s >= 1.0 || s == 0.0) continue;
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }
}

double Random::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

}  // namespace gprq::rng
