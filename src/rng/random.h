#ifndef GPRQ_RNG_RANDOM_H_
#define GPRQ_RNG_RANDOM_H_

#include <cstdint>

namespace gprq::rng {

/// A small, fast, seedable PRNG (xoshiro256++, Blackman & Vigna). Replaces
/// the RANDLIB generator used in the paper's experiments. Deterministic for
/// a given seed, which makes every experiment in this repository
/// reproducible bit-for-bit.
class Random {
 public:
  /// Seeds the generator; the seed is expanded with splitmix64 so that small
  /// consecutive seeds yield well-separated streams.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64 random bits.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n), n > 0.
  uint64_t NextUint64(uint64_t n);

  /// A standard normal variate (Marsaglia polar method with caching).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace gprq::rng

#endif  // GPRQ_RNG_RANDOM_H_
