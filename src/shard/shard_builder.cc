#include "shard/shard_builder.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "index/paged_tree.h"
#include "index/str_bulk_load.h"

namespace gprq::shard {
namespace {

/// Recursive STR tiling at shard granularity over *row indices*: sorts the
/// index range by the current axis (reading coordinates through the mmap),
/// splits it into slabs, and divides the remaining shard budget among the
/// slabs proportionally. Produces exactly `tiles` contiguous ranges.
void TileIndices(const index::MmapDataset& dataset,
                 std::vector<uint64_t>::iterator begin,
                 std::vector<uint64_t>::iterator end, size_t axis,
                 size_t tiles,
                 std::vector<std::pair<uint64_t, uint64_t>>* ranges,
                 uint64_t base) {
  const uint64_t n = static_cast<uint64_t>(end - begin);
  if (tiles <= 1 || n == 0) {
    ranges->emplace_back(base, base + n);
    return;
  }
  const size_t dim = dataset.dim();
  std::sort(begin, end, [&dataset, axis](uint64_t a, uint64_t b) {
    const double ca = dataset.point(a)[axis];
    const double cb = dataset.point(b)[axis];
    if (ca != cb) return ca < cb;
    return a < b;  // total order: ties broken by row, for reproducible tiles
  });

  // Slab count on this axis: the (d - axis)-th root of the remaining budget
  // (the STR rule), capped by the budget itself.
  const size_t axes_left = dim - std::min(axis, dim - 1);
  size_t slabs = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(tiles),
               1.0 / static_cast<double>(axes_left))));
  slabs = std::max<size_t>(1, std::min(slabs, tiles));

  const size_t next_axis = (axis + 1 < dim) ? axis + 1 : axis;
  uint64_t offset = 0;
  size_t tiles_left = tiles;
  for (size_t s = 0; s < slabs; ++s) {
    const size_t slabs_left = slabs - s;
    const size_t slab_tiles =
        (tiles_left + slabs_left - 1) / slabs_left;  // spread the budget
    const uint64_t take = (n - offset) * slab_tiles / tiles_left;
    TileIndices(dataset, begin + offset, begin + offset + take, next_axis,
                slab_tiles, ranges, base + offset);
    offset += take;
    tiles_left -= slab_tiles;
    if (tiles_left == 0) break;
  }
  if (offset < n) {
    // Budget exhausted with rows left (rounding); fold them into the last
    // tile so every row lands in exactly one shard.
    ranges->back().second = base + n;
  }
}

}  // namespace

Result<ShardManifest> BuildShards(const index::MmapDataset& dataset,
                                  const std::string& dataset_file,
                                  const std::string& out_dir,
                                  const ShardBuildOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (dataset.count() > 0 &&
      dataset.count() < static_cast<uint64_t>(options.num_shards)) {
    return Status::InvalidArgument(
        "dataset has fewer points than requested shards");
  }

  // The only dataset-sized allocation of the build: the row permutation.
  std::vector<uint64_t> order(dataset.count());
  for (uint64_t i = 0; i < dataset.count(); ++i) order[i] = i;

  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ranges.reserve(options.num_shards);
  TileIndices(dataset, order.begin(), order.end(), 0, options.num_shards,
              &ranges, 0);
  while (ranges.size() < options.num_shards) {
    // Degenerate datasets (n == K with extreme rounding) can under-produce;
    // pad with empty shards so the manifest always has num_shards entries.
    ranges.emplace_back(dataset.count(), dataset.count());
  }

  ShardManifest manifest;
  manifest.dim = dataset.dim();
  manifest.dataset_file = dataset_file;
  manifest.shards.resize(options.num_shards);

  // One shard materialized at a time: rows stream out of the mapping into
  // la::Vectors, the tree is bulk-loaded and snapshotted, then freed.
  for (size_t k = 0; k < options.num_shards; ++k) {
    const auto [row_begin, row_end] = ranges[k];
    const size_t count = static_cast<size_t>(row_end - row_begin);
    std::vector<la::Vector> points;
    std::vector<index::ObjectId> ids;
    points.reserve(count);
    ids.reserve(count);
    for (uint64_t r = row_begin; r < row_end; ++r) {
      points.push_back(dataset.PointVector(order[r]));
      ids.push_back(static_cast<index::ObjectId>(order[r]));
    }
    Result<index::RStarTree> tree = index::StrBulkLoader::Load(
        dataset.dim(), points, ids, options.tree_options);
    if (!tree.ok()) return tree.status();

    ShardInfo& shard = manifest.shards[k];
    shard.tree_file = "shard_" + std::to_string(k) + ".tree";
    shard.count = count;
    shard.mbr = count > 0 ? tree->Bounds() : geom::Rect::Empty(dataset.dim());
    GPRQ_RETURN_NOT_OK(index::TreeSnapshot::Write(
        *tree, out_dir + "/" + shard.tree_file, options.page_size));
  }

  GPRQ_RETURN_NOT_OK(manifest.Save(out_dir + "/shards.manifest"));
  return manifest;
}

}  // namespace gprq::shard
