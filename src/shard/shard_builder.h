#ifndef GPRQ_SHARD_SHARD_BUILDER_H_
#define GPRQ_SHARD_SHARD_BUILDER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "index/dataset_file.h"
#include "index/rstar_tree.h"
#include "shard/shard_manifest.h"

namespace gprq::shard {

struct ShardBuildOptions {
  /// Number of shards to partition into (exactly this many are produced).
  size_t num_shards = 4;
  /// Options for each shard's R*-tree (STR bulk-loaded).
  index::RStarTree::Options tree_options;
  /// Page size of the per-shard TreeSnapshot files.
  size_t page_size = 4096;
};

/// Partitions an mmap'd dataset into num_shards spatially-tiled shards and
/// writes one paged tree snapshot per shard plus a manifest
/// (`<out_dir>/shards.manifest`). The partition is the same Sort-Tile-
/// Recursive discipline the in-memory bulk loader uses, applied at shard
/// granularity: recursive coordinate-sorted slabs, so shards have compact,
/// lightly-overlapping MBRs — which is what makes MBR routing selective.
///
/// Out-of-core by construction: the tiling permutes an index array
/// (8 bytes/point) over the memory-mapped rows, and only one shard's points
/// are ever materialized as la::Vectors at a time. A 10M-point build peaks
/// near 80 MB of index plus one shard, not the 10M-vector dataset. Object
/// ids in the shard trees are the global dataset row numbers, so the
/// scatter-gather merge never aliases points across shards.
Result<ShardManifest> BuildShards(const index::MmapDataset& dataset,
                                  const std::string& dataset_file,
                                  const std::string& out_dir,
                                  const ShardBuildOptions& options);

}  // namespace gprq::shard

#endif  // GPRQ_SHARD_SHARD_BUILDER_H_
