#include "shard/shard_manifest.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace gprq::shard {
namespace {

constexpr const char* kMagicLine = "GPRQ-SHARDS";
constexpr int kVersion = 1;

std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

bool ParseHexDouble(const std::string& token, double* value) {
  const char* begin = token.c_str();
  char* end = nullptr;
  *value = std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

}  // namespace

std::string ManifestDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash + 1);
}

Status ShardManifest::Save(const std::string& path) const {
  if (dim == 0) return Status::InvalidArgument("manifest dim must be >= 1");
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write shard manifest: " + path);
  out << kMagicLine << ' ' << kVersion << '\n';
  out << "dim " << dim << '\n';
  out << "dataset " << (dataset_file.empty() ? "-" : dataset_file) << '\n';
  out << "shards " << shards.size() << '\n';
  for (size_t k = 0; k < shards.size(); ++k) {
    const ShardInfo& shard = shards[k];
    if (shard.mbr.dim() != dim && shard.count > 0) {
      return Status::InvalidArgument("shard MBR dimension mismatch");
    }
    out << "shard " << k << ' ' << shard.tree_file << ' ' << shard.count;
    for (size_t a = 0; a < dim; ++a) {
      out << ' '
          << HexDouble(shard.count > 0 ? shard.mbr.lo()[a] : 0.0);
    }
    for (size_t a = 0; a < dim; ++a) {
      out << ' '
          << HexDouble(shard.count > 0 ? shard.mbr.hi()[a] : 0.0);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("short write saving shard manifest");
  return Status::OK();
}

Result<ShardManifest> ShardManifest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open shard manifest: " + path);

  // Content errors are InvalidArgument (the file opened; its bytes are
  // hostile or corrupt), and every cap check precedes the allocation the
  // parsed value would size.
  ShardManifest manifest;
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagicLine) {
    return Status::InvalidArgument("not a shard manifest: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported shard manifest version in " +
                                   path);
  }
  std::string key;
  size_t shard_count = 0;
  if (!(in >> key >> manifest.dim) || key != "dim" || manifest.dim == 0) {
    return Status::InvalidArgument("shard manifest missing dim: " + path);
  }
  if (manifest.dim > kMaxManifestDim) {
    return Status::InvalidArgument("shard manifest dim " +
                                   std::to_string(manifest.dim) +
                                   " exceeds the cap in " + path);
  }
  if (!(in >> key >> manifest.dataset_file) || key != "dataset") {
    return Status::InvalidArgument("shard manifest missing dataset line: " +
                                   path);
  }
  if (manifest.dataset_file == "-") manifest.dataset_file.clear();
  if (!(in >> key >> shard_count) || key != "shards" || shard_count == 0) {
    return Status::InvalidArgument("shard manifest missing shard count: " +
                                   path);
  }
  if (shard_count > kMaxManifestShards) {
    return Status::InvalidArgument("shard manifest shard count " +
                                   std::to_string(shard_count) +
                                   " exceeds the cap in " + path);
  }

  manifest.shards.resize(shard_count);
  for (size_t k = 0; k < shard_count; ++k) {
    size_t index = 0;
    ShardInfo& shard = manifest.shards[k];
    // `index != k` also rejects duplicate and out-of-order shard ids: the
    // file must list exactly 0..K-1 ascending.
    if (!(in >> key >> index >> shard.tree_file >> shard.count) ||
        key != "shard" || index != k) {
      return Status::InvalidArgument("malformed shard line in " + path);
    }
    la::Vector lo(manifest.dim);
    la::Vector hi(manifest.dim);
    std::string token;
    for (size_t a = 0; a < 2 * manifest.dim; ++a) {
      double value = 0.0;
      if (!(in >> token) || !ParseHexDouble(token, &value)) {
        return Status::InvalidArgument("malformed shard MBR in " + path);
      }
      if (a < manifest.dim) {
        lo[a] = value;
      } else {
        hi[a - manifest.dim] = value;
      }
    }
    for (size_t a = 0; a < manifest.dim; ++a) {
      if (!(lo[a] <= hi[a])) {
        return Status::InvalidArgument("shard MBR corrupt in " + path);
      }
    }
    shard.mbr = geom::Rect(std::move(lo), std::move(hi));
  }
  return manifest;
}

}  // namespace gprq::shard
