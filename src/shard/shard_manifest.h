#ifndef GPRQ_SHARD_SHARD_MANIFEST_H_
#define GPRQ_SHARD_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"

namespace gprq::shard {

/// One shard of a partitioned dataset: a paged tree snapshot plus the exact
/// MBR of its points. The MBR is the routing key — a query whose Phase-1
/// search box misses it cannot receive a candidate from this shard.
struct ShardInfo {
  /// Snapshot file name, relative to the manifest's directory (shards move
  /// with their manifest).
  std::string tree_file;
  uint64_t count = 0;
  geom::Rect mbr = geom::Rect::Empty(0);
};

/// The on-disk description of a sharded deployment, written by BuildShards
/// and read by ShardedPrqEngine. Stored as a small text file next to the
/// shard snapshots; doubles are printed as C99 hexfloats so the MBRs
/// round-trip bit-exactly (routing must see the same boxes the builder
/// computed).
/// Sanity caps enforced by ShardManifest::Load *before* any allocation
/// sized by a parsed value — a hostile manifest must fail with
/// InvalidArgument, never drive an attacker-chosen resize. Generous: real
/// deployments are orders of magnitude below both.
inline constexpr size_t kMaxManifestDim = 4096;
inline constexpr size_t kMaxManifestShards = 1u << 20;

struct ShardManifest {
  size_t dim = 0;
  /// The source dataset file ("" when unknown); informational.
  std::string dataset_file;
  std::vector<ShardInfo> shards;

  /// IoError when the file cannot be opened; InvalidArgument for any
  /// malformed *content* — truncated lines, non-numeric MBR tokens,
  /// duplicate or out-of-order shard ids, dim/shard counts beyond the
  /// kMaxManifest* caps, MBRs with lo > hi (NaN included).
  static Result<ShardManifest> Load(const std::string& path);
  Status Save(const std::string& path) const;

  uint64_t total_points() const {
    uint64_t total = 0;
    for (const ShardInfo& shard : shards) total += shard.count;
    return total;
  }
};

/// The directory part of `path` ("" for a bare file name) — shard tree
/// files are resolved relative to their manifest.
std::string ManifestDirectory(const std::string& path);

}  // namespace gprq::shard

#endif  // GPRQ_SHARD_SHARD_MANIFEST_H_
