#include "shard/shard_router.h"

namespace gprq::shard {

const core::RadiusCatalog* ShardRouter::radius_catalog() const {
  if (radius_catalog_ == nullptr) {
    radius_catalog_ = std::make_unique<core::RadiusCatalog>(
        core::RadiusCatalog::Build(manifest_->dim));
  }
  return radius_catalog_.get();
}

const core::AlphaCatalog* ShardRouter::alpha_catalog() const {
  if (alpha_catalog_ == nullptr) {
    alpha_catalog_ = std::make_unique<core::AlphaCatalog>(
        core::AlphaCatalog::Build(manifest_->dim));
  }
  return alpha_catalog_.get();
}

Result<RoutingDecision> ShardRouter::Route(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::QueryGeometry* geometry_out) const {
  const size_t dim = manifest_->dim;
  GPRQ_RETURN_NOT_OK(core::ValidatePrq(query, options, dim));
  core::QueryGeometry geometry = core::PrepareQueryGeometry(
      query, options, dim, options.use_catalogs ? radius_catalog() : nullptr,
      options.use_catalogs ? alpha_catalog() : nullptr);

  RoutingDecision decision;
  decision.search_box = geom::Rect::Empty(dim);
  if (geometry.proved_empty ||
      !core::ComputeSearchBox(geometry, query, dim, &decision.search_box)) {
    decision.proved_empty = true;
    if (geometry_out != nullptr) *geometry_out = std::move(geometry);
    return decision;
  }
  for (size_t k = 0; k < manifest_->shards.size(); ++k) {
    if (manifest_->shards[k].count == 0) continue;
    if (manifest_->shards[k].mbr.Intersects(decision.search_box)) {
      decision.routed.push_back(k);
    }
  }
  if (geometry_out != nullptr) *geometry_out = std::move(geometry);
  return decision;
}

}  // namespace gprq::shard
