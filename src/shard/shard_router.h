#ifndef GPRQ_SHARD_SHARD_ROUTER_H_
#define GPRQ_SHARD_SHARD_ROUTER_H_

// The shard-routing decision, extracted from ShardedPrqEngine so the
// in-process scatter-gather engine and the remote coordinator
// (remote::RemoteShardedEngine) route queries *identically*: validate,
// prepare the query geometry (θ-region radii via the per-dimension
// catalogs), compute the Phase-1 search box, and keep exactly the shards
// whose manifest MBR intersects it (empty shards never route). Identical
// routing is what makes the remote differential tests meaningful — any
// decided-set difference is then a fault-handling bug, not a routing one.

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/filter_pipeline.h"
#include "core/prq.h"
#include "geom/rect.h"
#include "shard/shard_manifest.h"

namespace gprq::shard {

/// One query's routing outcome.
struct RoutingDecision {
  /// The filters proved the answer empty before touching any shard;
  /// search_box and routed are meaningless.
  bool proved_empty = false;
  /// Phase-1 search box (valid iff !proved_empty).
  geom::Rect search_box;
  /// Manifest positions of the shards the query must visit, ascending.
  std::vector<size_t> routed;
};

/// Stateless routing over a manifest, plus the lazily built per-dimension
/// catalogs the geometry preparation wants. The manifest is referenced,
/// not copied — MBR swaps from ShardedPrqEngine::ReloadShard are picked up
/// on the next Route. Thread-compatible (the lazily built catalogs make
/// const Route non-reentrant during first use); both engines call it from
/// their single submitter.
class ShardRouter {
 public:
  /// `manifest` must outlive the router.
  explicit ShardRouter(const ShardManifest* manifest) : manifest_(manifest) {}

  /// Validates the query and routes it. When `geometry_out` is non-null
  /// the prepared geometry is copied out so the caller can reuse it for
  /// Phase 2 without preparing twice.
  Result<RoutingDecision> Route(const core::PrqQuery& query,
                                const core::PrqOptions& options,
                                core::QueryGeometry* geometry_out = nullptr)
      const;

  const core::RadiusCatalog* radius_catalog() const;
  const core::AlphaCatalog* alpha_catalog() const;

 private:
  const ShardManifest* manifest_;
  mutable std::unique_ptr<core::RadiusCatalog> radius_catalog_;
  mutable std::unique_ptr<core::AlphaCatalog> alpha_catalog_;
};

}  // namespace gprq::shard

#endif  // GPRQ_SHARD_SHARD_ROUTER_H_
