#include "shard/sharded_engine.h"

#include <stdexcept>
#include <utility>

#include "common/stopwatch.h"
#include "core/filter_pipeline.h"
#include "obs/metrics.h"

namespace gprq::shard {
namespace {

// Shard-layer metrics, resolved once (the obs resolve-once idiom).
// `gprq.shard.shards_routed / gprq.shard.shards_considered` is the routing
// selectivity the scaling bench asserts on: < 1 means MBR routing is
// actually skipping shards.
struct ShardMetrics {
  obs::Counter* queries;
  obs::Counter* shards_routed;
  obs::Counter* shards_considered;
  obs::Counter* proved_empty;
  obs::Counter* reloads;
  obs::Counter* cache_invalidated;
  obs::Histogram* scatter_nanos;

  static const ShardMetrics& Get() {
    static const ShardMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return ShardMetrics{r.GetCounter("gprq.shard.queries"),
                          r.GetCounter("gprq.shard.shards_routed"),
                          r.GetCounter("gprq.shard.shards_considered"),
                          r.GetCounter("gprq.shard.proved_empty"),
                          r.GetCounter("gprq.shard.reloads"),
                          r.GetCounter("gprq.shard.cache_invalidated"),
                          r.GetHistogram("gprq.shard.scatter_nanos")};
    }();
    return metrics;
  }
};

/// Per-shard scatter state; slot k is written only by shard k's task.
struct ShardSlot {
  core::PrqEngine::FilterOutcome outcome;
  core::Phase2Counts counts;
  uint64_t index_candidates = 0;
  bool expired = false;
};

}  // namespace

ShardedPrqEngine::ShardedPrqEngine(ShardManifest manifest,
                                   std::string manifest_path,
                                   exec::BatchExecutor* executor,
                                   const ShardedEngineOptions& options)
    : manifest_(std::move(manifest)),
      manifest_path_(std::move(manifest_path)),
      manifest_dir_(ManifestDirectory(manifest_path_)),
      executor_(executor),
      options_(options),
      router_(&manifest_) {}

Result<index::PagedRStarTree> ShardedPrqEngine::OpenShardTree(
    size_t shard) const {
  index::PagedRStarTree::OpenOptions open;
  open.page_size = options_.page_size;
  open.buffer_pages = options_.buffer_pages;
  return index::PagedRStarTree::Open(
      manifest_dir_ + manifest_.shards[shard].tree_file, open);
}

Result<std::unique_ptr<ShardedPrqEngine>> ShardedPrqEngine::Open(
    const std::string& manifest_path, exec::BatchExecutor* executor,
    const ShardedEngineOptions& options) {
  if (executor == nullptr) {
    return Status::InvalidArgument("sharded engine needs an executor");
  }
  Result<ShardManifest> manifest = ShardManifest::Load(manifest_path);
  if (!manifest.ok()) return manifest.status();
  if (options.only_shard >= 0) {
    // Single-shard-backend mode: narrow the manifest to that one entry so
    // the rest of the engine — routing, scatter, WELCOME facts — sees a
    // one-shard deployment holding exactly this shard's points.
    const size_t only = static_cast<size_t>(options.only_shard);
    if (only >= manifest->shards.size()) {
      return Status::InvalidArgument(
          "only_shard " + std::to_string(only) + " out of range (manifest has " +
          std::to_string(manifest->shards.size()) + " shards)");
    }
    manifest->shards = {manifest->shards[only]};
  }

  std::unique_ptr<ShardedPrqEngine> engine(new ShardedPrqEngine(
      std::move(*manifest), manifest_path, executor, options));
  const size_t num_shards = engine->manifest_.shards.size();
  engine->shards_.resize(num_shards);

  if (options.numa_first_touch) {
    // Open (and root-probe) each shard from a pool worker: with first-touch
    // NUMA policy the shard's buffer pool lands on the node of a thread
    // that will serve its scatter tasks. Slots are disjoint; no locking.
    std::vector<Status> statuses(num_shards);
    std::vector<exec::WorkerPool::Task> tasks;
    tasks.reserve(num_shards);
    for (size_t k = 0; k < num_shards; ++k) {
      ShardedPrqEngine* raw = engine.get();
      tasks.push_back([raw, &statuses, k](size_t) {
        Result<index::PagedRStarTree> tree = raw->OpenShardTree(k);
        if (!tree.ok()) {
          statuses[k] = tree.status();
          return;
        }
        raw->shards_[k] =
            std::make_unique<index::PagedRStarTree>(std::move(*tree));
        if (raw->manifest_.shards[k].count > 0) {
          // Root-to-leaf warm probe; faults the first pages in.
          const geom::Rect probe(raw->manifest_.shards[k].mbr.lo());
          statuses[k] = raw->shards_[k]->RangeQuery(
              probe, [](const la::Vector&, index::ObjectId) {});
        }
      });
    }
    GPRQ_RETURN_NOT_OK(executor->RunTasks(std::move(tasks)));
    for (const Status& status : statuses) GPRQ_RETURN_NOT_OK(status);
  } else {
    for (size_t k = 0; k < num_shards; ++k) {
      Result<index::PagedRStarTree> tree = engine->OpenShardTree(k);
      if (!tree.ok()) return tree.status();
      engine->shards_[k] =
          std::make_unique<index::PagedRStarTree>(std::move(*tree));
    }
  }

  for (size_t k = 0; k < num_shards; ++k) {
    if (engine->shards_[k]->dim() != engine->manifest_.dim) {
      return Status::IoError("shard tree dimension disagrees with manifest");
    }
  }
  return engine;
}

Result<std::vector<size_t>> ShardedPrqEngine::Route(
    const core::PrqQuery& query, const core::PrqOptions& options) const {
  Result<RoutingDecision> decision = router_.Route(query, options);
  if (!decision.ok()) return decision.status();
  return std::move(decision->routed);
}

Result<core::PrqResult> ShardedPrqEngine::ExecuteBounded(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  GPRQ_RETURN_NOT_OK(core::ValidatePrq(query, options, manifest_.dim));
  const ShardMetrics& metrics = ShardMetrics::Get();
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();
  if (trace != nullptr) {
    *trace = obs::QueryTrace();
    trace->shards_total = shards_.size();
  }
  metrics.queries->Add(1);
  metrics.shards_considered->Add(shards_.size());

  const common::QueryControl& control = options.control;
  if (!control.Unbounded() && control.ShouldStop()) {
    // Stopped on entry: like the single-tree engine, short-circuit before
    // touching any shard. Nothing was scanned, so there is nothing to list
    // as undecided; the status says the answer is not the full one.
    core::PrqResult result;
    result.status = control.StopStatus();
    if (trace != nullptr) trace->deadline_expired = true;
    return result;
  }

  // ---- Prep + route: one geometry for every shard (immutable during the
  // scatter), then the shared MBR routing decision.
  core::QueryGeometry geometry;
  RoutingDecision decision;
  {
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPrep);
    Stopwatch watch;
    Result<RoutingDecision> routed_result =
        router_.Route(query, options, &geometry);
    if (!routed_result.ok()) return routed_result.status();
    decision = std::move(*routed_result);
    out_stats.prep_seconds = watch.ElapsedSeconds();
  }

  if (decision.proved_empty) {
    out_stats.proved_empty = true;
    if (trace != nullptr) trace->proved_empty = true;
    metrics.proved_empty->Add(1);
    return core::PrqResult{};
  }
  const geom::Rect& search_box = decision.search_box;
  const std::vector<size_t>& routed = decision.routed;
  metrics.shards_routed->Add(routed.size());
  if (trace != nullptr) trace->shards_routed = routed.size();

  // ---- Scatter: Phases 1-2 per routed shard, one task per shard so each
  // shard's buffer pool is touched by exactly one thread.
  std::vector<ShardSlot> slots(routed.size());
  {
    Stopwatch watch;
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPhase1);
    std::vector<exec::WorkerPool::Task> tasks;
    tasks.reserve(routed.size());
    for (size_t i = 0; i < routed.size(); ++i) {
      index::PagedRStarTree* tree = shards_[routed[i]].get();
      ShardSlot* slot = &slots[i];
      tasks.push_back([&query, &options, &geometry, &search_box, &control,
                       tree, slot](size_t) {
        if (!control.Unbounded() && control.ShouldStop()) {
          // Fired before this shard was scanned; its candidates stay
          // unknown and the merged result's status reports the truncation.
          slot->expired = true;
          return;
        }
        std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
        const Status scanned = tree->RangeQuery(
            search_box,
            [&candidates](const la::Vector& point, index::ObjectId id) {
              candidates.emplace_back(point, id);
            });
        if (!scanned.ok()) throw std::runtime_error(scanned.ToString());
        slot->index_candidates = candidates.size();
        if (!control.Unbounded() && control.ShouldStop()) {
          // Fired between the phases: skip Phase 2, surface every scanned
          // candidate as a survivor (the engine's expired-filter rule).
          slot->outcome.survivors = std::move(candidates);
          slot->expired = true;
          return;
        }
        core::RunPhase2(query, options, geometry, std::move(candidates),
                        &slot->outcome, &slot->counts);
      });
    }
    GPRQ_RETURN_NOT_OK(executor_->RunTasks(std::move(tasks)));
    const uint64_t scatter_nanos = watch.ElapsedNanos();
    metrics.scatter_nanos->Record(scatter_nanos);
    // The scatter interleaves both phases across shards; attribute its wall
    // time to Phase 1 (the span above) and report the same figure in stats.
    out_stats.phase1_seconds = scatter_nanos * 1e-9;
  }

  // ---- Gather: set union in shard order (deterministic merge).
  core::PrqEngine::FilterOutcome merged;
  merged.search_box = search_box;
  for (ShardSlot& slot : slots) {
    merged.expired = merged.expired || slot.expired;
    merged.accepted.insert(merged.accepted.end(),
                           std::make_move_iterator(slot.outcome.accepted.begin()),
                           std::make_move_iterator(slot.outcome.accepted.end()));
    merged.survivors.insert(
        merged.survivors.end(),
        std::make_move_iterator(slot.outcome.survivors.begin()),
        std::make_move_iterator(slot.outcome.survivors.end()));
    out_stats.index_candidates += slot.index_candidates;
    out_stats.pruned_rr_fringe += slot.counts.pruned_rr_fringe;
    out_stats.pruned_bf_outer += slot.counts.pruned_bf_outer;
    out_stats.pruned_or += slot.counts.pruned_or;
    out_stats.pruned_marginal += slot.counts.pruned_marginal;
  }
  out_stats.accepted_without_integration = merged.accepted.size();
  out_stats.integration_candidates = merged.survivors.size();
  if (trace != nullptr) {
    trace->index_candidates = out_stats.index_candidates;
    trace->pruned_rr_fringe = out_stats.pruned_rr_fringe;
    trace->pruned_bf_outer = out_stats.pruned_bf_outer;
    trace->pruned_or = out_stats.pruned_or;
    trace->pruned_marginal = out_stats.pruned_marginal;
    trace->accepted_bf_inner = merged.accepted.size();
    trace->phase3_candidates = merged.survivors.size();
  }

  // ---- Phase 3: one fan-out over the merged survivors, with the shared
  // per-query pool — decided ids are therefore set-identical to a
  // single-tree engine's, whatever the shard count.
  return executor_->IntegrateOutcomeBounded(query, std::move(merged), control,
                                            stats, trace,
                                            options.pool_variant);
}

Result<std::vector<index::ObjectId>> ShardedPrqEngine::Execute(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  Result<core::PrqResult> bounded =
      ExecuteBounded(query, options, stats, trace);
  if (!bounded.ok()) return bounded.status();
  if (!bounded->status.ok()) return bounded->status;
  return std::move(bounded->ids);
}

Status ShardedPrqEngine::ReloadShard(size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (options_.only_shard >= 0) {
    return Status::InvalidArgument(
        "ReloadShard is unsupported in single-shard (only_shard) mode");
  }
  Result<ShardManifest> reloaded = ShardManifest::Load(manifest_path_);
  if (!reloaded.ok()) return reloaded.status();
  if (reloaded->dim != manifest_.dim ||
      reloaded->shards.size() != manifest_.shards.size()) {
    return Status::InvalidArgument(
        "manifest shape changed; reopen the engine instead of reloading");
  }
  const ShardInfo old_info = manifest_.shards[shard];
  manifest_.shards[shard] = reloaded->shards[shard];
  Result<index::PagedRStarTree> tree = OpenShardTree(shard);
  if (!tree.ok()) {
    manifest_.shards[shard] = old_info;  // keep serving the old shard
    return tree.status();
  }
  shards_[shard] =
      std::make_unique<index::PagedRStarTree>(std::move(*tree));

  const ShardMetrics& metrics = ShardMetrics::Get();
  metrics.reloads->Add(1);
  if (cache_ != nullptr) {
    // Region invalidation: any cached answer whose search box touched the
    // shard's old or new extent may now be stale. Everything else survives.
    size_t dropped = 0;
    if (old_info.count > 0) dropped += cache_->Invalidate(old_info.mbr);
    const ShardInfo& new_info = manifest_.shards[shard];
    if (new_info.count > 0 && !(old_info.count > 0 &&
                                old_info.mbr == new_info.mbr)) {
      dropped += cache_->Invalidate(new_info.mbr);
    }
    metrics.cache_invalidated->Add(dropped);
  }
  return Status::OK();
}

}  // namespace gprq::shard
