#ifndef GPRQ_SHARD_SHARDED_ENGINE_H_
#define GPRQ_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/prq.h"
#include "exec/batch_executor.h"
#include "index/paged_tree.h"
#include "obs/trace.h"
#include "shard/shard_manifest.h"
#include "shard/shard_router.h"

namespace gprq::shard {

struct ShardedEngineOptions {
  /// Buffer-pool capacity per shard, in pages. Shards have disjoint pools,
  /// so the deployment's total cache is num_shards × buffer_pages.
  size_t buffer_pages = 128;
  size_t page_size = 4096;
  /// Open and warm each shard's tree (root-to-leaf probe) from a worker of
  /// the executor's pool instead of the calling thread. On NUMA machines
  /// with first-touch allocation this places each shard's buffer pool on
  /// the node of a worker that will actually serve it; elsewhere it is a
  /// harmless parallel open.
  bool numa_first_touch = false;
  /// >= 0 opens only that manifest position: the single-shard-backend mode
  /// `gprq_server --shard-only` uses so one process serves one shard of a
  /// multi-process deployment. The engine then sees a one-shard manifest
  /// (num_shards() == 1, total_points() == that shard's count); ReloadShard
  /// is unsupported in this mode (the on-disk manifest keeps every shard).
  int64_t only_shard = -1;
};

/// Scatter-gather PRQ execution over a sharded dataset (BuildShards): each
/// shard is an independent paged R*-tree with its own buffer pool, a query
/// is routed to only the shards whose MBR intersects its Phase-1 search
/// box, Phases 1-2 run shard-parallel on the executor's worker pool, and
/// the per-shard outcomes merge by set union — shards partition the points,
/// so no cross-shard coordination or deduplication is needed. Phase 3 runs
/// once over the merged survivors through the executor's normal fan-out
/// with the shared per-query sample pool, so decided ids are set-identical
/// to a single-tree engine over the same points, for any shard count.
///
/// Deadline/brownout semantics compose per shard: a control that fires
/// during the scatter leaves the unfinished shards' candidates undecided
/// (sound — filtering only removes certain non-qualifiers), exactly like
/// the single-tree engine's expired filter pass.
///
/// Threading: one submitter at a time (the workers are the parallelism),
/// matching BatchExecutor's contract. Each scatter task touches exactly
/// one shard, so the per-shard BufferPool needs no locking.
class ShardedPrqEngine {
 public:
  /// Opens every shard listed in the manifest. `executor` (non-null, not
  /// owned, typically BatchExecutor::CreateDetached) supplies the worker
  /// pool and per-worker evaluators; it must outlive the engine.
  static Result<std::unique_ptr<ShardedPrqEngine>> Open(
      const std::string& manifest_path, exec::BatchExecutor* executor,
      const ShardedEngineOptions& options = {});

  /// The shards the query must visit: those whose MBR intersects its
  /// search box. Empty when the filters prove the result empty. This is
  /// the routing decision ExecuteBounded makes, exposed for tests and the
  /// scaling bench.
  Result<std::vector<size_t>> Route(const core::PrqQuery& query,
                                    const core::PrqOptions& options) const;

  /// Scatter-gather PRQ under options.control; same result contract as
  /// PrqEngine::ExecuteBounded / BatchExecutor::SubmitBounded.
  Result<core::PrqResult> ExecuteBounded(const core::PrqQuery& query,
                                         const core::PrqOptions& options,
                                         core::PrqStats* stats = nullptr,
                                         obs::QueryTrace* trace = nullptr);

  /// Complete-answer wrapper: a degraded run surfaces as its stop status.
  Result<std::vector<index::ObjectId>> Execute(
      const core::PrqQuery& query, const core::PrqOptions& options,
      core::PrqStats* stats = nullptr, obs::QueryTrace* trace = nullptr);

  /// Attaches a semantic result cache (not owned; may be null to detach).
  /// The engine does not *serve* from the cache — the single-submitter
  /// serving layer does — but it owns invalidation: ReloadShard drops
  /// every cached answer whose search box touched the shard's old or new
  /// extent. This is the region-invalidation hook for shard reloads.
  void AttachResultCache(cache::ResultCache* cache) { cache_ = cache; }
  cache::ResultCache* result_cache() const { return cache_; }

  /// Re-reads the manifest entry for `shard` and reopens its snapshot —
  /// the shard-replacement path (a rebuilt or re-balanced shard swapped in
  /// under the same manifest). Cached results overlapping the shard's old
  /// or new MBR are invalidated through the attached cache.
  Status ReloadShard(size_t shard);

  size_t num_shards() const { return shards_.size(); }
  size_t dim() const { return manifest_.dim; }
  uint64_t total_points() const { return manifest_.total_points(); }
  const ShardManifest& manifest() const { return manifest_; }
  const index::PagedRStarTree& shard_tree(size_t shard) const {
    return *shards_[shard];
  }

 private:
  ShardedPrqEngine(ShardManifest manifest, std::string manifest_path,
                   exec::BatchExecutor* executor,
                   const ShardedEngineOptions& options);

  /// Opens shard k's snapshot per the current manifest entry.
  Result<index::PagedRStarTree> OpenShardTree(size_t shard) const;

  ShardManifest manifest_;
  std::string manifest_path_;
  std::string manifest_dir_;
  exec::BatchExecutor* executor_;
  ShardedEngineOptions options_;
  /// Validation + geometry prep + MBR routing, shared with the remote
  /// coordinator so both route identically.
  ShardRouter router_;
  /// unique_ptr per shard: scatter tasks and reloads swap whole trees
  /// without moving a tree another task might reference.
  std::vector<std::unique_ptr<index::PagedRStarTree>> shards_;
  cache::ResultCache* cache_ = nullptr;
};

}  // namespace gprq::shard

#endif  // GPRQ_SHARD_SHARDED_ENGINE_H_
