#include "stats/chi_squared.h"

#include <cassert>
#include <cmath>

#include "stats/special.h"

namespace gprq::stats {

double ChiSquaredCdf(size_t dof, double x) {
  assert(dof >= 1);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(static_cast<double>(dof) / 2.0, x / 2.0);
}

double ChiSquaredQuantile(size_t dof, double p) {
  assert(dof >= 1);
  assert(p >= 0.0 && p < 1.0);
  return 2.0 * InverseRegularizedGammaP(static_cast<double>(dof) / 2.0, p);
}

double GaussianBallMass(size_t dim, double r) {
  if (r <= 0.0) return 0.0;
  return ChiSquaredCdf(dim, r * r);
}

double ThetaRegionRadius(size_t dim, double theta) {
  assert(theta > 0.0 && theta < 0.5);
  return std::sqrt(ChiSquaredQuantile(dim, 1.0 - 2.0 * theta));
}

}  // namespace gprq::stats
