#ifndef GPRQ_STATS_CHI_SQUARED_H_
#define GPRQ_STATS_CHI_SQUARED_H_

#include <cstddef>

namespace gprq::stats {

/// CDF of the chi-squared distribution with `dof` degrees of freedom:
/// P(χ²_dof <= x). For a d-dimensional standard Gaussian, the probability
/// mass inside the origin-centered ball of radius r is ChiSquaredCdf(d, r²)
/// — the identity behind the paper's Fig. 17 and the θ-region radius r_θ
/// (Property 1 + Eq. 7).
double ChiSquaredCdf(size_t dof, double x);

/// Inverse CDF: returns x with ChiSquaredCdf(dof, x) = p, p in [0, 1).
double ChiSquaredQuantile(size_t dof, double p);

/// Probability that a d-dimensional standard Gaussian point lies within
/// distance `r` of the origin (the Fig. 17 "probability of existence" curve).
double GaussianBallMass(size_t dim, double r);

/// The θ-region Mahalanobis radius r_θ of Definition 3/5: the radius for
/// which the origin-centered ball holds mass 1−2θ under the normalized
/// Gaussian. Requires 0 < theta < 0.5.
double ThetaRegionRadius(size_t dim, double theta);

}  // namespace gprq::stats

#endif  // GPRQ_STATS_CHI_SQUARED_H_
