#include "stats/imhof.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gprq::stats {

namespace {

/// Integrand state for one CDF evaluation.
class ImhofIntegrand {
 public:
  ImhofIntegrand(const std::vector<QuadraticFormTerm>& terms, double t)
      : terms_(terms), t_(t) {}

  /// sin θ(u) / (u ρ(u)); the u→0 limit is θ'(0) = ½(Σ λ(1+b²) − t).
  double operator()(double u) const {
    if (u <= 0.0) return ThetaPrime(0.0);
    double theta, log_rho;
    Decompose(u, &theta, &log_rho);
    const double log_amp = -std::log(u) - log_rho;
    if (log_amp < -745.0) return 0.0;
    return std::sin(theta) * std::exp(log_amp);
  }

  /// Envelope g(u) = 1/(u ρ(u)) bounding |integrand|.
  double Envelope(double u) const {
    double theta, log_rho;
    Decompose(u, &theta, &log_rho);
    const double log_amp = -std::log(u) - log_rho;
    return (log_amp < -745.0) ? 0.0 : std::exp(log_amp);
  }

  /// θ(u) — the oscillation phase.
  double Theta(double u) const {
    double theta, log_rho;
    Decompose(u, &theta, &log_rho);
    return theta;
  }

  /// θ'(u); tends to −t/2 as u → ∞.
  double ThetaPrime(double u) const {
    double slope = -0.5 * t_;
    for (const auto& term : terms_) {
      const double l = term.weight;
      const double lu2 = (l * u) * (l * u);
      const double denom = 1.0 + lu2;
      slope += 0.5 * (l / denom +
                      term.offset * term.offset * l * (1.0 - lu2) /
                          (denom * denom));
    }
    return slope;
  }

  /// Initial oscillation rate near u = 0 (sets the panel width).
  double PhaseRate() const {
    double rate = std::abs(t_) * 0.5;
    for (const auto& term : terms_) {
      rate += 0.5 * term.weight * (1.0 + term.offset * term.offset);
    }
    return rate;
  }

  double t() const { return t_; }

 private:
  void Decompose(double u, double* theta, double* log_rho) const {
    double th = -0.5 * t_ * u;
    double lr = 0.0;
    for (const auto& term : terms_) {
      const double lu = term.weight * u;
      const double lu2 = lu * lu;
      th += 0.5 * (std::atan(lu) +
                   term.offset * term.offset * lu / (1.0 + lu2));
      lr += 0.25 * std::log1p(lu2) +
            0.5 * (term.offset * lu) * (term.offset * lu) / (1.0 + lu2);
    }
    *theta = th;
    *log_rho = lr;
  }

  const std::vector<QuadraticFormTerm>& terms_;
  double t_;
};

/// Adaptive Simpson on [a, b] with absolute tolerance.
double AdaptiveSimpson(const ImhofIntegrand& f, double a, double b, double fa,
                       double fm, double fb, double whole, double tol,
                       int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpson(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         AdaptiveSimpson(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

double IntegratePanel(const ImhofIntegrand& f, double a, double b, double tol,
                      int depth) {
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return AdaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, depth);
}

}  // namespace

Result<double> ImhofCdf(const std::vector<QuadraticFormTerm>& terms, double t,
                        const ImhofOptions& options) {
  if (terms.empty()) {
    return Status::InvalidArgument("Imhof: at least one term required");
  }
  for (const auto& term : terms) {
    if (!(term.weight > 0.0) || !std::isfinite(term.weight) ||
        !std::isfinite(term.offset)) {
      return Status::InvalidArgument(
          "Imhof: weights must be positive and finite");
    }
  }
  if (t <= 0.0) return 0.0;  // Q = Σ λ(z+b)² >= 0 almost surely

  const ImhofIntegrand f(terms, t);

  // Panel width: a fixed fraction of the fastest oscillation period so each
  // panel sees less than half a period of sin θ(u).
  const double panel = M_PI / (2.0 * std::max(f.PhaseRate(), 1e-8));

  // Truncation: beyond U, one integration by parts gives
  //   ∫_U^∞ sin θ(u)·g(u) du = cos θ(U)·g(U)/θ'(U) + R,
  //   |R| <~ g(U)/θ'(U)² · (1/U + |θ''|/|θ'|) = O(g/(U·θ'²)),
  // so we stop once that residual bound is small, then add the boundary
  // term. This reaches low truncation error orders of magnitude sooner
  // than waiting for g(U) itself to vanish (important for d = 2, where g
  // decays only as u^{-2}).
  const double trunc_tol = options.tolerance * 0.1;

  double integral = 0.0;
  double u = 0.0;
  int panels = 0;
  bool truncated_ok = false;
  while (panels < options.max_panels) {
    const double next = u + panel;
    integral += IntegratePanel(f, u, next, options.tolerance / 64.0,
                               options.max_refinement_depth);
    u = next;
    ++panels;

    const double slope = f.ThetaPrime(u);
    if (slope < -0.25 * t) {  // past any stationary-phase region
      const double g = f.Envelope(u);
      if (g == 0.0) {
        truncated_ok = true;  // integrand already underflowed to zero
        break;
      }
      const double residual_bound =
          4.0 * g / (slope * slope) * (1.0 / u);
      if (residual_bound < trunc_tol) {
        integral += std::cos(f.Theta(u)) * g / slope;
        truncated_ok = true;
        break;
      }
    }
  }
  if (!truncated_ok) {
    return Status::NumericalError("Imhof: panel budget exhausted");
  }

  const double upper_tail = 0.5 + integral / M_PI;  // P(Q > t)
  return std::clamp(1.0 - upper_tail, 0.0, 1.0);
}

}  // namespace gprq::stats
