#ifndef GPRQ_STATS_IMHOF_H_
#define GPRQ_STATS_IMHOF_H_

#include <vector>

#include "common/status.h"

namespace gprq::stats {

/// One component of a noncentral quadratic form in independent standard
/// normals: weight · (z + offset)², z ~ N(0,1).
struct QuadraticFormTerm {
  double weight = 1.0;   // λ_r > 0
  double offset = 0.0;   // noncentrality b_r (the mean of the shifted normal)
};

/// Options controlling the numerical inversion.
struct ImhofOptions {
  double tolerance = 1e-8;        // target absolute error of the CDF
  int max_panels = 200000;        // hard cap on oscillation panels
  int max_refinement_depth = 30;  // adaptive Simpson recursion limit
};

/// Computes P( Σ_r weight_r · (z_r + offset_r)² <= t ) for independent
/// standard normals z_r, by Imhof's (1961) numerical inversion of the
/// characteristic function:
///
///   P(Q > t) = 1/2 + (1/π) ∫₀^∞ sin θ(u) / (u·ρ(u)) du,
///   θ(u) = ½ Σ_r [arctan(λ_r u) + b_r² λ_r u / (1 + λ_r² u²)] − ½ t u,
///   ρ(u) = Π_r (1 + λ_r² u²)^{1/4} · exp(½ Σ_r (b_r λ_r u)² / (1 + λ_r² u²)).
///
/// This gives the exact qualification probability of the paper's query
/// (Section III, Eq. 3) without Monte-Carlo sampling: with Σ = E·diag(s²)·Eᵀ
/// and c = Eᵀ(o − q), Pr(‖x−o‖² ≤ δ²) = P(Σ s_i²(z_i − c_i/s_i)² ≤ δ²).
///
/// Requires all weights > 0 and at least one term. Fails with
/// InvalidArgument on bad input; never fails to converge for positive
/// weights because the integrand decays polynomially-exponentially.
Result<double> ImhofCdf(const std::vector<QuadraticFormTerm>& terms, double t,
                        const ImhofOptions& options = {});

}  // namespace gprq::stats

#endif  // GPRQ_STATS_IMHOF_H_
