#include "stats/noncentral_chi_squared.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/chi_squared.h"
#include "stats/special.h"

namespace gprq::stats {

namespace {

constexpr double kSeriesEpsilon = 1e-14;
constexpr int kMaxTerms = 100000;

/// log of the Poisson(λ/2) weight at j.
double LogPoissonWeight(double half_lambda, int j) {
  if (half_lambda == 0.0) return (j == 0) ? 0.0 : -INFINITY;
  return -half_lambda + j * std::log(half_lambda) - LogGamma(j + 1.0);
}

/// log of g_j = y^{a+j} e^{-y} / Γ(a+j+1), the decrement between successive
/// central chi-squared CDF terms: P(a+j+1, y) = P(a+j, y) − g_j.
double LogGammaStep(double a, double y, int j) {
  return (a + j) * std::log(y) - y - LogGamma(a + j + 1.0);
}

}  // namespace

double NoncentralChiSquaredCdf(size_t dof, double lambda, double x) {
  assert(dof >= 1);
  assert(lambda >= 0.0);
  if (x <= 0.0) return 0.0;
  if (lambda == 0.0) return ChiSquaredCdf(dof, x);

  const double a = static_cast<double>(dof) / 2.0;
  const double y = x / 2.0;
  const double half_lambda = lambda / 2.0;

  // Center the two-sided series at the mode of the Poisson weights so the
  // largest weights are visited first and w_0 = e^{-λ/2} cannot underflow
  // the whole sum for large λ.
  const int j0 = static_cast<int>(std::floor(half_lambda));

  const double w0 = std::exp(LogPoissonWeight(half_lambda, j0));
  const double p0 = RegularizedGammaP(a + j0, y);
  const double g0 = std::exp(LogGammaStep(a, y, j0));

  double sum = w0 * p0;
  double weight_used = w0;

  // Upward pass: j = j0+1, j0+2, ...
  {
    double w = w0;
    double p = p0;
    double g = g0;
    for (int j = j0; j < j0 + kMaxTerms; ++j) {
      w *= half_lambda / (j + 1.0);
      p -= g;                       // P(a+j+1, y) = P(a+j, y) − g_j
      p = std::max(p, 0.0);         // clamp accumulated rounding
      g *= y / (a + j + 1.0);       // g_{j+1} = g_j · y / (a+j+1)
      sum += w * p;
      weight_used += w;
      // Remaining tail contributes at most (1 − weight_used) · p (terms
      // decrease in p as j grows).
      if ((1.0 - weight_used) * p < kSeriesEpsilon || w < 1e-300) break;
    }
  }

  // Downward pass: j = j0−1, ..., 0.
  {
    double w = w0;
    double p = p0;
    double g = g0;
    for (int j = j0; j > 0; --j) {
      w *= j / half_lambda;
      g *= (a + j) / y;             // g_{j-1} = g_j · (a+j) / y
      p += g;                       // P(a+j−1, y) = P(a+j, y) + g_{j−1}
      p = std::min(p, 1.0);
      sum += w * p;
      weight_used += w;
      if ((1.0 - weight_used) < kSeriesEpsilon || w < 1e-300) break;
    }
  }

  return std::clamp(sum, 0.0, 1.0);
}

double OffsetGaussianBallMass(size_t dim, double alpha, double delta) {
  assert(alpha >= 0.0);
  if (delta <= 0.0) return 0.0;
  return NoncentralChiSquaredCdf(dim, alpha * alpha, delta * delta);
}

double SolveBallCenterOffset(size_t dim, double delta, double theta) {
  assert(theta > 0.0 && theta < 1.0);
  if (delta <= 0.0) return -1.0;
  const double centered_mass = GaussianBallMass(dim, delta);
  if (theta > centered_mass) return -1.0;  // unreachable even at the center
  if (theta == centered_mass) return 0.0;

  // Bracket: mass(α) is strictly decreasing in α, mass(0) > θ.
  double lo = 0.0;
  double hi = delta + 2.0;
  while (OffsetGaussianBallMass(dim, hi, delta) > theta) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e6) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (OffsetGaussianBallMass(dim, mid, delta) > theta) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace gprq::stats
