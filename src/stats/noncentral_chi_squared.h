#ifndef GPRQ_STATS_NONCENTRAL_CHI_SQUARED_H_
#define GPRQ_STATS_NONCENTRAL_CHI_SQUARED_H_

#include <cstddef>

namespace gprq::stats {

/// CDF of the noncentral chi-squared distribution with `dof` degrees of
/// freedom and noncentrality `lambda` >= 0:
///
///   P(χ'²_dof(λ) <= x) = Σ_j Pois(j; λ/2) · P(χ²_{dof+2j} <= x)
///
/// For a d-dimensional standard Gaussian and a ball of radius δ centered at
/// distance α from the mean, the ball's probability mass is
/// NoncentralChiSquaredCdf(d, α², δ²) — the identity behind the paper's
/// U-catalog entries (δ, θ, α) for the BF strategy (Eq. 21 / Property 5).
///
/// Evaluated by a two-sided Poisson-mixture series centered at the mode of
/// the Poisson weights, so it remains accurate for large λ.
double NoncentralChiSquaredCdf(size_t dof, double lambda, double x);

/// Probability mass of a ball of radius `delta`, centered at distance
/// `alpha` from the mean, under the d-dimensional normalized Gaussian.
double OffsetGaussianBallMass(size_t dim, double alpha, double delta);

/// Solves for the center offset: returns the α >= 0 such that a ball of
/// radius `delta` at distance α from the mean holds probability mass exactly
/// `theta` under the normalized Gaussian; this is the paper's
/// ucatalog_lookup(δ, θ). The mass is strictly decreasing in α, so the
/// solution is found by bisection.
///
/// Returns a negative value if no solution exists because the centered ball
/// already holds less mass than `theta` (i.e. θ > P(χ²_d <= δ²)); callers
/// treat that as "no object can qualify" (outer bound) or "no free-accept
/// ball" (inner bound).
double SolveBallCenterOffset(size_t dim, double delta, double theta);

}  // namespace gprq::stats

#endif  // GPRQ_STATS_NONCENTRAL_CHI_SQUARED_H_
