#include "stats/ruben.h"

#include <algorithm>
#include <cmath>

#include "stats/chi_squared.h"
#include "stats/special.h"

namespace gprq::stats {

Result<double> RubenCdf(const std::vector<QuadraticFormTerm>& terms, double t,
                        const RubenOptions& options) {
  if (terms.empty()) {
    return Status::InvalidArgument("Ruben: at least one term required");
  }
  for (const auto& term : terms) {
    if (!(term.weight > 0.0) || !std::isfinite(term.weight) ||
        !std::isfinite(term.offset)) {
      return Status::InvalidArgument(
          "Ruben: weights must be positive and finite");
    }
  }
  if (t <= 0.0) return 0.0;

  const size_t d = terms.size();
  double beta = terms.front().weight;
  for (const auto& term : terms) beta = std::min(beta, term.weight);

  // γ_j = 1 − β/λ_j in [0, 1); precompute the noncentral helper terms.
  std::vector<double> gamma(d), nc_over_lambda(d);
  double sum_b_sq = 0.0;
  for (size_t j = 0; j < d; ++j) {
    gamma[j] = 1.0 - beta / terms[j].weight;
    nc_over_lambda[j] = terms[j].offset * terms[j].offset / terms[j].weight;
    sum_b_sq += terms[j].offset * terms[j].offset;
  }

  // c_0 = e^{−½Σb²} Π sqrt(β/λ_j); compute in log space.
  double log_c0 = -0.5 * sum_b_sq;
  for (size_t j = 0; j < d; ++j) {
    log_c0 += 0.5 * std::log(beta / terms[j].weight);
  }
  const double c0 = std::exp(log_c0);
  if (c0 <= 0.0) {
    // Underflow: the series cannot start (extreme spread/offsets).
    return Status::NumericalError("Ruben: leading coefficient underflowed");
  }

  // Chi-squared factors via the stable recurrence
  // F_{d+2(k+1)}(x) = F_{d+2k}(x) − x^{d/2+k} e^{−x/2} / (2^{d/2+k} Γ(d/2+k+1)).
  const double x = t / beta;
  const double a = static_cast<double>(d) / 2.0;
  double chi_cdf = ChiSquaredCdf(d, x);
  // step_k = x^{a+k} e^{−x/2} / (2^{a+k} Γ(a+k+1)), starting at k = 0.
  double log_step = a * std::log(x / 2.0) - x / 2.0 - LogGamma(a + 1.0);
  double step = std::exp(log_step);

  // Running series with the Ruben recursion for c_k.
  std::vector<double> g;     // g_r, r >= 1
  std::vector<double> c = {c0};
  std::vector<double> gamma_pow(d, 1.0);  // γ_j^{r−1} while computing g_r
  double total = c0 * chi_cdf;
  double weight_used = c0;

  for (int k = 1; k < options.max_terms; ++k) {
    // g_k = ½ Σ γ^k + (kβ/2) Σ (b²/λ) γ^{k−1}.
    double g_k = 0.0;
    for (size_t j = 0; j < d; ++j) {
      g_k += 0.5 * gamma_pow[j] * gamma[j] +
             (static_cast<double>(k) * beta / 2.0) * nc_over_lambda[j] *
                 gamma_pow[j];
      gamma_pow[j] *= gamma[j];
    }
    g.push_back(g_k);

    double c_k = 0.0;
    for (int r = 1; r <= k; ++r) {
      c_k += g[r - 1] * c[k - r];
    }
    c_k /= static_cast<double>(k);
    c.push_back(c_k);

    // Advance the chi-squared factor to d + 2k degrees of freedom.
    chi_cdf = std::max(0.0, chi_cdf - step);
    step *= (x / 2.0) / (a + static_cast<double>(k));

    total += c_k * chi_cdf;
    weight_used += c_k;

    // All weights are >= 0 for β = min λ and sum to 1; the unseen tail
    // contributes at most (1 − weight_used) · max CDF <= 1 − weight_used.
    if (1.0 - weight_used < options.tolerance) {
      return std::clamp(total, 0.0, 1.0);
    }
  }
  return Status::NumericalError(
      "Ruben: series did not converge within max_terms");
}

}  // namespace gprq::stats
