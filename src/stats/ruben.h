#ifndef GPRQ_STATS_RUBEN_H_
#define GPRQ_STATS_RUBEN_H_

#include <vector>

#include "common/status.h"
#include "stats/imhof.h"  // QuadraticFormTerm

namespace gprq::stats {

struct RubenOptions {
  double tolerance = 1e-10;  // rigorous absolute truncation bound
  int max_terms = 100000;
};

/// Ruben's (1962) series for the CDF of a positive noncentral quadratic
/// form Q = Σ_j λ_j (z_j + b_j)² in iid standard normals:
///
///   P(Q <= t) = Σ_{k>=0} c_k · P(χ²_{d+2k} <= t/β),
///
/// with mixing weights computed by the Ruben/Kotz recursion
///
///   c_0 = exp(−½ Σ b_j²) · Π sqrt(β/λ_j),
///   g_r = ½ Σ_j γ_j^r + (r β / 2) Σ_j (b_j²/λ_j) γ_j^{r−1},
///   c_k = (1/k) Σ_{r=1}^{k} g_r · c_{k−r},          γ_j = 1 − β/λ_j.
///
/// With β = min_j λ_j all weights are non-negative and sum to 1, which
/// yields a *rigorous* truncation bound: the tail after K terms is at most
/// 1 − Σ_{k<=K} c_k. This gives a second exact evaluator, independent of
/// Imhof's oscillatory integral, with deterministic error control — the
/// two cross-validate each other in the tests. Convergence slows as the
/// weight spread λ_max/λ_min grows (γ → 1); the evaluator falls back to
/// Imhof beyond max_terms.
///
/// Requires all weights > 0 and at least one term.
Result<double> RubenCdf(const std::vector<QuadraticFormTerm>& terms, double t,
                        const RubenOptions& options = {});

}  // namespace gprq::stats

#endif  // GPRQ_STATS_RUBEN_H_
