#include "stats/special.h"

#include <cassert>
#include <cmath>
#include <limits>

#if defined(__GLIBC__)
// Strict -std=c++20 hides the POSIX declaration; the symbol is always
// in libm.
extern "C" double lgamma_r(double, int*);
#endif

namespace gprq::stats {

double LogGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Series representation of P(a, x); converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Continued-fraction representation of Q(a, x); converges fast for
/// x >= a + 1. Modified Lentz's method.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double InverseRegularizedGammaP(double a, double p) {
  assert(a > 0.0);
  assert(p >= 0.0 && p < 1.0);
  if (p == 0.0) return 0.0;

  // Bracket the root: P(a, x) is increasing in x.
  double lo = 0.0;
  double hi = a + 1.0;
  while (RegularizedGammaP(a, hi) < p) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e8) break;  // p extremely close to 1; bisection still works
  }

  // Newton with bisection fallback. The fallback midpoint is geometric when
  // the bracket still touches 0, so tiny roots (p → 0 with a < 1 can put the
  // root at 1e-16 and below) are approached in O(log) steps with full
  // relative precision.
  const auto midpoint = [&]() {
    return (lo > 0.0) ? std::sqrt(lo * hi) : 0.5 * hi;
  };
  double x = midpoint();
  for (int i = 0; i < 500; ++i) {
    const double f = RegularizedGammaP(a, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Derivative of P(a, x) is the gamma density x^{a-1} e^{-x} / Γ(a).
    const double logpdf = (a - 1.0) * std::log(x) - x - LogGamma(a);
    const double pdf = std::exp(logpdf);
    double next;
    if (pdf > 0.0 && std::isfinite(pdf)) {
      next = x - f / pdf;
    } else {
      next = midpoint();
    }
    if (!(next > lo && next < hi)) next = midpoint();
    if (std::abs(next - x) <= 1e-15 * next) {
      return next;
    }
    x = next;
  }
  return x;
}

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double StandardNormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;

  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact CDF.
  const double e = StandardNormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace gprq::stats
