#ifndef GPRQ_STATS_SPECIAL_H_
#define GPRQ_STATS_SPECIAL_H_

#include "common/status.h"

namespace gprq::stats {

/// Regularized lower incomplete gamma function
/// P(a, x) = γ(a, x) / Γ(a), for a > 0, x >= 0.
/// Implemented with the series expansion for x < a+1 and the continued
/// fraction for x >= a+1 (Numerical Recipes style), accurate to ~1e-14.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x).
double RegularizedGammaQ(double a, double x);

/// Inverts P(a, ·): returns x such that P(a, x) = p, for p in [0, 1).
/// Uses a Newton iteration with bisection safeguarding.
double InverseRegularizedGammaP(double a, double p);

/// log Γ(x), thread-safe. glibc's lgamma(3) writes the process-global
/// `signgam`, which is a data race when concurrent threads (e.g. two
/// in-process shard backends lazily building their catalogs) evaluate
/// gamma-family CDFs; this wrapper uses the reentrant lgamma_r where
/// available. All in-tree callers must use this, never std::lgamma.
double LogGamma(double x);

/// CDF of the standard normal distribution.
double StandardNormalCdf(double x);

/// Quantile (inverse CDF) of the standard normal, p in (0, 1).
/// Acklam's rational approximation refined by one Halley step; ~1e-15.
double StandardNormalQuantile(double p);

}  // namespace gprq::stats

#endif  // GPRQ_STATS_SPECIAL_H_
