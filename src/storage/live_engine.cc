#include "storage/live_engine.h"

#include <utility>

#include "common/stopwatch.h"
#include "core/filter_pipeline.h"
#include "obs/metrics.h"

namespace gprq::storage {

namespace {

struct LiveMetrics {
  obs::Counter* queries;
  obs::Counter* proved_empty;

  static const LiveMetrics& Get() {
    static const LiveMetrics metrics = [] {
      obs::MetricRegistry& r = obs::MetricRegistry::Global();
      return LiveMetrics{r.GetCounter("gprq.storage.live.queries"),
                         r.GetCounter("gprq.storage.live.proved_empty")};
    }();
    return metrics;
  }
};

}  // namespace

LivePrqEngine::LivePrqEngine(StorageEngine* storage,
                             exec::BatchExecutor* executor)
    : storage_(storage), executor_(executor) {}

Status LivePrqEngine::EnableResultCache(
    const cache::ResultCacheOptions& options) {
  if (options.max_entries == 0) {
    return Status::InvalidArgument("cache max_entries must be >= 1");
  }
  if (options.max_bytes == 0) {
    return Status::InvalidArgument("cache max_bytes must be >= 1");
  }
  cache_ = std::make_unique<cache::ResultCache>(options);
  storage_->AttachResultCache(cache_.get());
  return Status::OK();
}

const core::RadiusCatalog* LivePrqEngine::radius_catalog() const {
  if (radius_catalog_ == nullptr) {
    radius_catalog_ = std::make_unique<core::RadiusCatalog>(
        core::RadiusCatalog::Build(storage_->dim()));
  }
  return radius_catalog_.get();
}

const core::AlphaCatalog* LivePrqEngine::alpha_catalog() const {
  if (alpha_catalog_ == nullptr) {
    alpha_catalog_ = std::make_unique<core::AlphaCatalog>(
        core::AlphaCatalog::Build(storage_->dim()));
  }
  return alpha_catalog_.get();
}

Result<core::PrqResult> LivePrqEngine::ExecuteBounded(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  const size_t dim = storage_->dim();
  GPRQ_RETURN_NOT_OK(core::ValidatePrq(query, options, dim));
  core::PrqStats local_stats;
  core::PrqStats& out_stats = (stats != nullptr) ? *stats : local_stats;
  out_stats = core::PrqStats();
  if (trace != nullptr) *trace = obs::QueryTrace();
  LiveMetrics::Get().queries->Add(1);

  // Pin the epoch at admission: every later phase — including cache
  // decisions and Phase 3 — answers against this tree version, however
  // many commits land while the query runs.
  const std::shared_ptr<const StorageSnapshot> snapshot =
      storage_->PinSnapshot();

  const common::QueryControl& control = options.control;
  if (!control.Unbounded() && control.ShouldStop()) {
    core::PrqResult result;
    result.status = control.StopStatus();
    if (trace != nullptr) trace->deadline_expired = true;
    return result;
  }

  const uint64_t config_bits =
      (cache_ != nullptr) ? cache::FilterConfigBits(options) : 0;
  if (cache_ != nullptr) {
    // The cache is attached to the storage engine: every commit drops
    // dirtied entries and advances the cache's epoch *before* publishing
    // its snapshot, and the lookup below passes our pinned epoch — so a
    // hit is an entry whose invalidation history matches the pinned tree
    // version exactly (a pin behind the cache's epoch is a miss).
    const cache::ResultCache::Lookup hit =
        cache_->Find(query, config_bits, snapshot->epoch());
    if (hit.kind == cache::ResultCache::HitKind::kExact) {
      core::PrqResult result;
      result.ids = hit.entry->ids;
      out_stats.result_size = result.ids.size();
      if (trace != nullptr) {
        trace->cache_hit_exact = true;
        trace->result_size = result.ids.size();
      }
      return result;
    }
    if (hit.kind == cache::ResultCache::HitKind::kSemantic) {
      // Containment serve: re-filter the cached wider candidate superset
      // at this query's θ — no snapshot scan at all.
      core::QueryGeometry geometry;
      {
        obs::QueryTrace::Span span(trace, obs::QueryTrace::kPrep);
        Stopwatch watch;
        geometry = core::PrepareQueryGeometry(
            query, options, dim,
            options.use_catalogs ? radius_catalog() : nullptr,
            options.use_catalogs ? alpha_catalog() : nullptr);
        out_stats.prep_seconds = watch.ElapsedSeconds();
      }
      geom::Rect search_box = geom::Rect::Empty(dim);
      if (geometry.proved_empty ||
          !core::ComputeSearchBox(geometry, query, dim, &search_box)) {
        out_stats.proved_empty = true;
        if (trace != nullptr) trace->proved_empty = true;
        LiveMetrics::Get().proved_empty->Add(1);
        return core::PrqResult{};
      }
      core::PrqEngine::FilterOutcome outcome;
      outcome.search_box = search_box;
      core::Phase2Counts counts;
      {
        obs::QueryTrace::Span span(trace, obs::QueryTrace::kPhase2);
        Stopwatch watch;
        core::RunPhase2(query, options, geometry,
                        std::vector<std::pair<la::Vector, index::ObjectId>>(
                            hit.entry->candidates),
                        &outcome, &counts);
        out_stats.phase2_seconds = watch.ElapsedSeconds();
      }
      out_stats.index_candidates = hit.entry->candidates.size();
      out_stats.pruned_rr_fringe = counts.pruned_rr_fringe;
      out_stats.pruned_bf_outer = counts.pruned_bf_outer;
      out_stats.pruned_or = counts.pruned_or;
      out_stats.pruned_marginal = counts.pruned_marginal;
      out_stats.accepted_without_integration = outcome.accepted.size();
      out_stats.integration_candidates = outcome.survivors.size();
      if (trace != nullptr) {
        trace->cache_hit_semantic = true;
        trace->index_candidates = out_stats.index_candidates;
        trace->accepted_bf_inner = outcome.accepted.size();
        trace->phase3_candidates = outcome.survivors.size();
      }
      return IntegrateAndPublish(query, options, config_bits,
                                 snapshot->epoch(), std::move(outcome),
                                 &out_stats, trace);
    }
  }

  // ---- Prep.
  core::QueryGeometry geometry;
  {
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPrep);
    Stopwatch watch;
    geometry = core::PrepareQueryGeometry(
        query, options, dim,
        options.use_catalogs ? radius_catalog() : nullptr,
        options.use_catalogs ? alpha_catalog() : nullptr);
    out_stats.prep_seconds = watch.ElapsedSeconds();
  }
  geom::Rect search_box = geom::Rect::Empty(dim);
  if (geometry.proved_empty ||
      !core::ComputeSearchBox(geometry, query, dim, &search_box)) {
    out_stats.proved_empty = true;
    if (trace != nullptr) trace->proved_empty = true;
    LiveMetrics::Get().proved_empty->Add(1);
    return core::PrqResult{};
  }

  // ---- Phase 1: range search over the pinned snapshot.
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  {
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPhase1);
    Stopwatch watch;
    snapshot->RangeQuery(search_box, [&candidates](const la::Vector& point,
                                                   index::ObjectId id) {
      candidates.emplace_back(point, id);
    });
    out_stats.phase1_seconds = watch.ElapsedSeconds();
  }
  out_stats.index_candidates = candidates.size();

  core::PrqEngine::FilterOutcome outcome;
  outcome.search_box = search_box;
  if (!control.Unbounded() && control.ShouldStop()) {
    // Fired between the phases: skip Phase 2, surface every scanned
    // candidate as a survivor (the engine's expired-filter rule); the
    // bounded integration below lists them as undecided.
    outcome.survivors = std::move(candidates);
    outcome.expired = true;
    if (trace != nullptr) trace->deadline_expired = true;
  } else {
    core::Phase2Counts counts;
    obs::QueryTrace::Span span(trace, obs::QueryTrace::kPhase2);
    Stopwatch watch;
    core::RunPhase2(query, options, geometry, std::move(candidates),
                    &outcome, &counts);
    out_stats.phase2_seconds = watch.ElapsedSeconds();
    out_stats.pruned_rr_fringe = counts.pruned_rr_fringe;
    out_stats.pruned_bf_outer = counts.pruned_bf_outer;
    out_stats.pruned_or = counts.pruned_or;
    out_stats.pruned_marginal = counts.pruned_marginal;
  }
  out_stats.accepted_without_integration = outcome.accepted.size();
  out_stats.integration_candidates = outcome.survivors.size();
  if (trace != nullptr) {
    trace->index_candidates = out_stats.index_candidates;
    trace->pruned_rr_fringe = out_stats.pruned_rr_fringe;
    trace->pruned_bf_outer = out_stats.pruned_bf_outer;
    trace->pruned_or = out_stats.pruned_or;
    trace->pruned_marginal = out_stats.pruned_marginal;
    trace->accepted_bf_inner = outcome.accepted.size();
    trace->phase3_candidates = outcome.survivors.size();
  }
  return IntegrateAndPublish(query, options, config_bits, snapshot->epoch(),
                             std::move(outcome), &out_stats, trace);
}

Result<core::PrqResult> LivePrqEngine::IntegrateAndPublish(
    const core::PrqQuery& query, const core::PrqOptions& options,
    uint64_t config_bits, uint64_t pinned_epoch,
    core::PrqEngine::FilterOutcome outcome, core::PrqStats* stats,
    obs::QueryTrace* trace) {
  const bool cacheable = cache_ != nullptr && !outcome.expired;
  std::vector<std::pair<la::Vector, index::ObjectId>> candidates;
  geom::Rect search_box;
  if (cacheable) {
    candidates.reserve(outcome.accepted.size() + outcome.survivors.size());
    candidates.insert(candidates.end(), outcome.accepted.begin(),
                      outcome.accepted.end());
    candidates.insert(candidates.end(), outcome.survivors.begin(),
                      outcome.survivors.end());
    search_box = outcome.search_box;
  }
  Result<core::PrqResult> result = executor_->IntegrateOutcomeBounded(
      query, std::move(outcome), options.control, stats, trace,
      options.pool_variant);
  if (cacheable && result.ok() && result->status.ok() &&
      result->undecided.empty()) {
    // Only complete answers are published. The insert is epoch-validated
    // inside the cache: a commit landing during the query advances the
    // cache's epoch (under the cache's own lock, before its snapshot
    // publishes), so this answer — computed against the pre-commit pin —
    // is rejected there rather than installed stale. An engine-side
    // epoch recheck here could not close that race: a commit between the
    // check and the insert would run its invalidation before the entry
    // exists.
    cache_->Insert(query, config_bits, search_box, std::move(candidates),
                   result->ids, pinned_epoch);
  }
  return result;
}

Result<std::vector<index::ObjectId>> LivePrqEngine::Execute(
    const core::PrqQuery& query, const core::PrqOptions& options,
    core::PrqStats* stats, obs::QueryTrace* trace) {
  Result<core::PrqResult> bounded =
      ExecuteBounded(query, options, stats, trace);
  if (!bounded.ok()) return bounded.status();
  if (!bounded->status.ok()) return bounded->status;
  return std::move(bounded->ids);
}

}  // namespace gprq::storage
