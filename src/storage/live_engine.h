#ifndef GPRQ_STORAGE_LIVE_ENGINE_H_
#define GPRQ_STORAGE_LIVE_ENGINE_H_

// PRQ execution over a *mutable* dataset: the three-phase pipeline of the
// paper run against StorageEngine epochs instead of a frozen index.
//
// A query pins the current epoch at admission (one shared_ptr copy) and
// runs Phase 1 over that snapshot — concurrent writers commit freely and
// are simply not visible to queries already in flight, which is exactly
// the isolation level a consistent range query needs (no phantoms, no
// half-applied batches; tests/storage_snapshot_test.cc proves it under
// TSan). Phases 1-2 reuse core/filter_pipeline — the same geometry and
// filter loop as PrqEngine and the sharded engine, so the differential
// suite can compare the mutable path id-for-id against a freshly
// bulk-loaded R*-tree. Phase 3 fans out through the caller's
// exec::BatchExecutor (a detached executor: this engine owns the filter
// phases, the executor supplies workers, evaluators and per-query sample
// pools).
//
// The semantic result cache composes with updates: EnableResultCache
// attaches the cache to the storage engine, whose commits invalidate
// cached answers by dirtied region — a cached answer survives updates that
// cannot affect it and is dropped the moment one could. Lookups and
// publications carry the query's pinned snapshot epoch, and commits
// advance the cache's epoch (atomically with their region drop, before
// publishing their snapshot), so a commit racing a query can neither
// serve it a not-yet-invalidated entry nor let it install an answer
// computed against the pre-commit tree (see cache::ResultCache).

#include <memory>
#include <vector>

#include "cache/result_cache.h"
#include "common/status.h"
#include "core/alpha_catalog.h"
#include "core/prq.h"
#include "core/radius_catalog.h"
#include "exec/batch_executor.h"
#include "obs/trace.h"
#include "storage/storage_engine.h"

namespace gprq::storage {

class LivePrqEngine {
 public:
  /// Both pointers are borrowed and must outlive the engine. The executor
  /// must be detached (CreateDetached) or otherwise dedicated: this engine
  /// uses only IntegrateOutcomeBounded.
  LivePrqEngine(StorageEngine* storage, exec::BatchExecutor* executor);

  /// Creates the semantic result cache and attaches it to the storage
  /// engine for commit-time region invalidation. A startup knob, not safe
  /// once queries or writes are in flight.
  Status EnableResultCache(const cache::ResultCacheOptions& options);

  cache::ResultCache* result_cache() const { return cache_.get(); }

  /// Deadline/cancellation-aware PRQ against the epoch current at
  /// admission. Result-set semantics identical to PrqEngine::Execute over
  /// an R*-tree holding the same points (compare as sets).
  ///
  /// Thread-compatible like BatchExecutor: one submitting thread at a time
  /// (writers and snapshot readers are unrestricted).
  Result<core::PrqResult> ExecuteBounded(const core::PrqQuery& query,
                                         const core::PrqOptions& options,
                                         core::PrqStats* stats = nullptr,
                                         obs::QueryTrace* trace = nullptr);

  /// Complete-answer convenience: ExecuteBounded, surfacing a degraded
  /// run's stop status as the error.
  Result<std::vector<index::ObjectId>> Execute(
      const core::PrqQuery& query, const core::PrqOptions& options,
      core::PrqStats* stats = nullptr, obs::QueryTrace* trace = nullptr);

 private:
  const core::RadiusCatalog* radius_catalog() const;
  const core::AlphaCatalog* alpha_catalog() const;

  /// Phase 3 + cache publication (mirrors BatchExecutor's miss path): fans
  /// the outcome's survivors out under options.control and, when the cache
  /// is on and the answer complete, publishes it for future exact and
  /// containment serves. `pinned_epoch` is the epoch the answer was
  /// computed against; publication is skipped when a commit superseded it
  /// mid-query (the answer is correct for its epoch but possibly stale for
  /// the current one, and commit-time invalidation already ran).
  Result<core::PrqResult> IntegrateAndPublish(
      const core::PrqQuery& query, const core::PrqOptions& options,
      uint64_t config_bits, uint64_t pinned_epoch,
      core::PrqEngine::FilterOutcome outcome, core::PrqStats* stats,
      obs::QueryTrace* trace);

  StorageEngine* storage_;
  exec::BatchExecutor* executor_;
  std::unique_ptr<cache::ResultCache> cache_;
  // Lazy per-dimension catalogs (the sharded engine's idiom); touched only
  // by the submitting thread.
  mutable std::unique_ptr<core::RadiusCatalog> radius_catalog_;
  mutable std::unique_ptr<core::AlphaCatalog> alpha_catalog_;
};

}  // namespace gprq::storage

#endif  // GPRQ_STORAGE_LIVE_ENGINE_H_
