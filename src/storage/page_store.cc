#include "storage/page_store.h"

namespace gprq::storage {

PageStore::PageStore(size_t page_size) : page_size_(page_size) {}

PageStore::~PageStore() {
  for (size_t c = 0; c < kMaxChunks; ++c) {
    uint8_t* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) break;  // chunks are installed densely
    delete[] chunk;
  }
}

Result<StorePageId> PageStore::Allocate() {
  const size_t id = count_;
  const size_t chunk_index = id / kPagesPerChunk;
  if (chunk_index >= kMaxChunks) {
    return Status::ResourceExhausted("page store is full (" +
                                     std::to_string(id) + " pages)");
  }
  if (chunk_index >= chunk_count_) {
    // Fresh chunk: allocate, then install with a release store so a reader
    // whose snapshot already covers an earlier page of this chunk (only
    // possible after a publish that follows this call) sees initialised
    // memory through its acquire load.
    uint8_t* chunk = new uint8_t[chunk_bytes()]();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
    chunk_count_ = chunk_index + 1;
  } else {
    // Reused slot after RollbackTo: zero the page, matching Allocate's
    // fresh-page contract.
    uint8_t* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    std::memset(chunk + (id % kPagesPerChunk) * page_size_, 0, page_size_);
  }
  ++count_;
  return static_cast<StorePageId>(id);
}

uint8_t* PageStore::MutableData(StorePageId id) {
  uint8_t* chunk =
      chunks_[id / kPagesPerChunk].load(std::memory_order_relaxed);
  return chunk + (id % kPagesPerChunk) * page_size_;
}

const uint8_t* PageStore::Data(StorePageId id) const {
  const uint8_t* chunk =
      chunks_[id / kPagesPerChunk].load(std::memory_order_acquire);
  return chunk + (id % kPagesPerChunk) * page_size_;
}

void PageStore::RollbackTo(size_t frontier) {
  if (frontier <= count_) count_ = frontier;
}

}  // namespace gprq::storage
