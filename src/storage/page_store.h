#ifndef GPRQ_STORAGE_PAGE_STORE_H_
#define GPRQ_STORAGE_PAGE_STORE_H_

// In-memory page arena for the mutable storage engine: the working copies
// of the tree's node pages, allocated append-only, mutated only while
// *private* (not yet reachable from a published epoch) and immutable ever
// after — the copy-on-write discipline that makes epoch snapshot reads
// lock-free (see storage_engine.h).
//
// Concurrency contract:
//  * One writer thread allocates (Allocate) and mutates (MutableData of a
//    private page). Serialised externally by the engine's writer mutex.
//  * Any number of reader threads call Data(i) concurrently for pages
//    below their pinned snapshot's frontier. Safety comes from the
//    publication protocol, not from locks here: the writer finishes every
//    byte of a page before publishing the snapshot that makes it
//    reachable, and publication/pinning is a mutex-ordered handoff
//    (happens-before), so readers only ever observe fully-written,
//    never-again-mutated bytes.
//  * Chunk installation uses a release store on an atomic slot; Data's
//    acquire load pairs with it so a reader racing into a just-grown chunk
//    table still sees initialised chunk memory. The fixed-size top-level
//    table means the table itself never reallocates under readers.
//
// RollbackTo supports failed commits: pages allocated for a batch whose
// WAL sync failed are unreachable from any snapshot, so the frontier can
// be rewound and their slots reused.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/status.h"

namespace gprq::storage {

/// Index of a page within a PageStore (also the node "pointer" stored in
/// tree pages — 32-bit, like index::PageId).
using StorePageId = uint32_t;

class PageStore {
 public:
  /// Pages per chunk (single allocation) and the fixed number of chunk
  /// slots. 512 pages × 65536 chunks = 32M pages; at the default 4 KiB
  /// page that is a 128 GiB addressing ceiling — far beyond what one
  /// process serves, and small enough that the slot table is 512 KiB.
  static constexpr size_t kPagesPerChunk = 512;
  static constexpr size_t kMaxChunks = 1 << 16;

  explicit PageStore(size_t page_size);
  ~PageStore();

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  size_t page_size() const { return page_size_; }

  /// Pages allocated (the append frontier). Writer-side view; readers use
  /// their snapshot's recorded frontier instead.
  size_t page_count() const { return count_; }

  /// Appends a zeroed page and returns its id. Writer only. Fails with
  /// ResourceExhausted at the addressing ceiling.
  Result<StorePageId> Allocate();

  /// Mutable bytes of page `id`. Writer only, and only for pages the
  /// engine knows to be private (allocated after the last publish).
  uint8_t* MutableData(StorePageId id);

  /// Read-only bytes of page `id`. Safe from any thread for pages covered
  /// by a pinned snapshot (see the concurrency contract above).
  const uint8_t* Data(StorePageId id) const;

  /// Rewinds the append frontier to `frontier` pages — only valid when
  /// every discarded page is unpublished (a failed commit batch). Chunk
  /// memory is retained for reuse; the zeroing happens on re-Allocate.
  void RollbackTo(size_t frontier);

  /// Approximate resident bytes (chunk allocations).
  size_t resident_bytes() const { return chunk_count_ * chunk_bytes(); }

 private:
  size_t chunk_bytes() const { return kPagesPerChunk * page_size_; }

  const size_t page_size_;
  size_t count_ = 0;        // writer-side frontier
  size_t chunk_count_ = 0;  // chunks installed (writer-side)
  std::atomic<uint8_t*> chunks_[kMaxChunks] = {};
};

}  // namespace gprq::storage

#endif  // GPRQ_STORAGE_PAGE_STORE_H_
